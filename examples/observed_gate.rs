//! The network gate with its instruments on: one shared telemetry bundle
//! wired through the validator, the streaming engine, and the serving edge,
//! then scraped back out of the gate's own `GET /metrics` endpoint.
//!
//! The flow mirrors a real deployment: build the bundle from the
//! `telemetry` block of [`DquagConfig`], hand one `Arc` to every subsystem,
//! POST CSV batches at the listener, and let Prometheus (here: a loopback
//! HTTP client) scrape the same port the data arrives on. At the end the
//! flight recorder replays the run's lifecycle and one structured log line
//! shows what the periodic emitter would ship to stderr.
//!
//! ```bash
//! cargo run --release --example observed_gate
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::sources::{NetListenerSource, SourceRuntime};
use dquag::stream::StreamEngine;
use dquag::tabular::csv;
use dquag::tabular::DataFrame;
use dquag::validate::{DquagBackend, Validator};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const N_BATCHES: usize = 5;

/// The simulated upstream feed: the middle batch is corrupted.
fn feed(kind: DatasetKind) -> Vec<DataFrame> {
    let columns = kind.default_ordinary_error_columns();
    (0..N_BATCHES)
        .map(|i| {
            let mut batch = kind.generate_clean(120, 700 + i as u64);
            if i == N_BATCHES / 2 {
                let mut rng = dquag::datagen::rng(800 + i as u64);
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::NumericAnomalies,
                    &columns,
                    0.3,
                    &mut rng,
                );
            }
            batch
        })
        .collect()
}

/// One blocking HTTP exchange over loopback; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to the gate");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: gate\r\n\r\n").as_bytes())
        .expect("HTTP request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("HTTP response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn main() {
    let kind = DatasetKind::HotelBooking;
    let clean = kind.generate_clean(1_000, 52);

    // One config block describes the whole deployment, observability
    // included: a 64-event flight recorder and a periodic structured-log
    // emitter alongside the model and serving knobs.
    let config = DquagConfig::builder()
        .epochs(8)
        .hidden_dim(12)
        .n_layers(2)
        .source_bind_addr("127.0.0.1:0")
        .source_poll_interval(Duration::from_millis(25))
        .flight_recorder_capacity(64)
        .telemetry_log_interval(Duration::from_millis(400))
        .build()
        .expect("configuration in range");
    let telemetry = config
        .telemetry
        .build()
        .expect("telemetry enabled by default");
    let _emitter = config
        .telemetry
        .log_interval
        .map(|interval| telemetry.start_log_emitter(interval));

    // The same Arc goes to all three layers: the validator times its
    // graph-build/forward/verdict stages, the engine counts batches and
    // queue depth, the listener counts connections and decode errors.
    let mut backend = DquagBackend::new(config.clone()).with_telemetry(Arc::clone(&telemetry));
    let fit = backend.fit(&clean).expect("training");
    println!("fitted {} on {} rows", fit.validator, fit.n_rows);

    let (engine, ingest, verdicts) = StreamEngine::builder()
        .stream_config(&config.stream)
        .telemetry(Arc::clone(&telemetry))
        .start(Box::new(backend))
        .expect("stream configuration in range");
    let listener = NetListenerSource::from_config(&config.source, kind.schema())
        .expect("loopback bind")
        .with_telemetry(Arc::clone(&telemetry));
    let addr = listener.local_addr();
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(listener))
        .telemetry(Arc::clone(&telemetry))
        .start(ingest)
        .expect("runtime starts");
    println!("observed gate listening on {addr}\n");

    // Producer: each batch arrives over HTTP, like a collector would POST.
    for batch in feed(kind) {
        let body = csv::to_csv_string(&batch);
        let mut stream = TcpStream::connect(addr).expect("connect for HTTP");
        stream
            .write_all(
                format!(
                    "POST /ingest HTTP/1.1\r\nHost: gate\r\nContent-Type: text/csv\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("HTTP POST");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("HTTP response");
        assert!(
            response.starts_with("HTTP/1.1 202"),
            "batch accepted, got: {}",
            response.lines().next().unwrap_or("")
        );
    }

    let mut dirty = 0usize;
    for item in verdicts.take(N_BATCHES) {
        if item.outcome.verdict().is_some_and(|v| v.is_dirty) {
            dirty += 1;
        }
        println!("{item}");
    }
    println!("\ngate quarantined {dirty}/{N_BATCHES} batches");

    // The scrape: Prometheus text format from the same port the data uses.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK", "metrics endpoint answers");
    let series: Vec<&str> = metrics
        .lines()
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .collect();
    assert!(
        series.len() >= 12,
        "a full pipeline exposes at least 12 series, got {}",
        series.len()
    );
    println!("scraped {} series from GET /metrics, e.g.:", series.len());
    for line in series.iter().filter(|l| {
        l.starts_with("dquag_stream_batches_")
            || l.starts_with("dquag_gnn_")
            || l.contains("stage=\"forward\"} ") && l.contains("_count")
    }) {
        println!("  {line}");
    }

    // The black box: every lifecycle event of the run, oldest first.
    runtime.shutdown().expect("runtime drains");
    let final_stats = engine.shutdown();
    println!("\n{}", telemetry.recorder().render());
    println!("one structured log line:\n{}", telemetry.structured_line());
    assert_eq!(final_stats.emitted, N_BATCHES as u64, "nothing lost");
}
