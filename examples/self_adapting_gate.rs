//! The full deployment loop: train once, persist the fitted model, restart
//! from disk with zero refit, and when drift arrives let a background
//! supervisor refit on recent clean traffic and hot-swap the new model into
//! the live engine — all without dropping or reordering a batch.
//!
//! Traffic arrives the way it would in production: framed CSV batches over
//! a loopback TCP listener from `dquag-sources`.
//!
//! ```bash
//! cargo run --release --example self_adapting_gate
//! ```

use dquag::core::spec::{ValidatorSpec, Voting};
use dquag::core::DquagConfig;
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::persist::{
    registry_with_persistence, save_validator, RefitOutcome, RefitSupervisor, SupervisorConfig,
    PERSISTED_DQUAG,
};
use dquag::sources::{NetListenerSource, SourceRuntime};
use dquag::stream::StreamEngine;
use dquag::tabular::csv;
use dquag::tabular::DataFrame;
use dquag::validate::build_spec;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const KIND: DatasetKind = DatasetKind::HotelBooking;
const BATCH_ROWS: usize = 250;
const N_WARM: usize = 4; // clean batches that stock the refit reservoir
const N_DRIFTED: usize = 3; // sustained drift that triggers the refit
const N_AFTER: usize = 2; // clean traffic served by the swapped-in model

fn clean_batch(seed: u64) -> DataFrame {
    KIND.generate_clean(BATCH_ROWS, seed)
}

fn drifted_batch(seed: u64) -> DataFrame {
    let mut batch = clean_batch(seed);
    let mut rng = dquag::datagen::rng(9000 + seed);
    inject_ordinary(
        &mut batch,
        OrdinaryError::NumericAnomalies,
        &KIND.default_ordinary_error_columns(),
        0.35,
        &mut rng,
    );
    batch
}

fn send_batches(addr: std::net::SocketAddr, batches: &[DataFrame]) {
    let mut stream = TcpStream::connect(addr).expect("connect to the gate");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut reply = String::new();
    for batch in batches {
        let payload = csv::to_csv_string(batch);
        stream
            .write_all(format!("BATCH csv {}\n{payload}", payload.len()).as_bytes())
            .expect("frame");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        assert!(reply.starts_with("ACK "), "{reply}");
    }
    stream.write_all(b"QUIT\n").ok();
}

fn main() {
    let work_dir = std::env::temp_dir().join(format!("dquag_self_adapting_{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");
    let model_path = work_dir.join("model.json");

    // The serving validator: the paper's GNN model plus a drift detector,
    // dirty when either flags. A lighter-than-paper model keeps the example
    // fast; the decision rules are the paper's.
    let spec = ValidatorSpec::ensemble(
        vec![ValidatorSpec::backend("dquag"), ValidatorSpec::drift()],
        Voting::Any,
    );
    let config = DquagConfig::builder()
        .epochs(8)
        .hidden_dim(12)
        .n_layers(2)
        // The small model's clean error rate hovers near the paper's n=1.2
        // gate; a wider factor keeps the example's clean/drifted split crisp.
        .dataset_flag_factor(2.5)
        .source_bind_addr("127.0.0.1:0")
        .source_poll_interval(Duration::from_millis(25))
        .build()
        .expect("configuration in range");

    // ── Act 1: train once, persist the fitted model ─────────────────────
    let clean = KIND.generate_clean(1_500, 51);
    let start = Instant::now();
    let mut validator = build_spec(&spec, &config).expect("spec is valid");
    validator.fit(&clean).expect("training succeeds");
    println!(
        "trained {} on {} rows in {:.1}s",
        validator.name(),
        clean.n_rows(),
        start.elapsed().as_secs_f64()
    );
    save_validator(&model_path, validator.as_ref()).expect("model persists");
    println!("persisted fitted model -> {}", model_path.display());
    drop(validator); // "kill" the process: nothing survives but the file

    // ── Act 2: restart from disk — zero refit ───────────────────────────
    let start = Instant::now();
    let restore = ValidatorSpec::backend_with_options(
        PERSISTED_DQUAG,
        [("path".to_string(), model_path.display().to_string())],
    );
    let restored = registry_with_persistence()
        .build(&restore, &config)
        .expect("model loads");
    println!(
        "restarted from disk in {:.0} ms (no refit — the checksummed file *is* the model)\n",
        start.elapsed().as_secs_f64() * 1e3
    );

    let (engine, ingest, verdicts) =
        StreamEngine::from_config(&config, restored).expect("stream configuration in range");
    let listener =
        NetListenerSource::from_config(&config.source, KIND.schema()).expect("loopback bind");
    let addr = listener.local_addr();
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(listener))
        .start(ingest)
        .expect("runtime starts");
    println!("gate listening on {addr}");

    // ── Act 3: drift triggers a background refit + hot swap ─────────────
    let factory_spec = spec.clone();
    let factory_config = config.clone();
    let mut supervisor = RefitSupervisor::new(
        engine.swap_handle(),
        SupervisorConfig {
            reservoir_capacity: N_WARM,
            patience: 2,
            min_fit_rows: 2 * BATCH_ROWS,
            model_path: Some(model_path.clone()),
        },
        move || build_spec(&factory_spec, &factory_config).expect("spec is valid"),
    );

    // Upstream traffic: clean batches, then a sustained distribution shift.
    let mut sent: Vec<DataFrame> = (0..N_WARM).map(|i| clean_batch(300 + i as u64)).collect();
    sent.extend((0..N_DRIFTED).map(|i| drifted_batch(400 + i as u64)));
    send_batches(addr, &sent);

    let mut verdicts = verdicts.into_iter();
    for item in verdicts.by_ref().take(sent.len()) {
        println!("{item}");
        let batch = &sent[item.seq as usize];
        let verdict = item.outcome.verdict().expect("a verdict per batch");
        if supervisor.observe(batch, verdict) {
            println!(
                "  drift persisted for {} batches -> background refit launched on {} banked clean rows",
                2,
                supervisor.reservoir_rows()
            );
        }
    }

    // Block until the refit lands (fit -> persist -> hot swap).
    let outcomes = supervisor.wait_idle();
    match outcomes.as_slice() {
        [RefitOutcome::Swapped {
            generation,
            fit_rows,
            fit_batches,
            persisted_to,
            ..
        }] => println!(
            "\nhot swap complete: generation {generation} (refit on {fit_rows} rows / \
             {fit_batches} batches, persisted to {})\n",
            persisted_to.as_deref().expect("configured path").display()
        ),
        other => panic!("expected exactly one swapped refit, got {other:?}"),
    }
    assert_eq!(engine.generation(), 1, "the engine serves the new model");

    // Post-swap traffic is judged by the refitted model, nothing lost.
    let after: Vec<DataFrame> = (0..N_AFTER).map(|i| clean_batch(500 + i as u64)).collect();
    send_batches(addr, &after);
    for item in verdicts.by_ref().take(after.len()) {
        println!("{item}");
    }

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    let stats = engine.shutdown();
    println!("\nfinal: {stats}");
    let expected = (N_WARM + N_DRIFTED + N_AFTER) as u64;
    assert_eq!(stats.emitted, expected, "nothing lost across the swap");
    assert_eq!(stats.dropped + stats.rejected + stats.failed, 0);

    std::fs::remove_dir_all(&work_dir).ok();
}
