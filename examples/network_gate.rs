//! A deployable data-quality gate: the streaming engine behind real source
//! adapters.
//!
//! Where `streaming_gate` feeds the engine from an in-process producer,
//! this example runs the full serving edge from `dquag-sources`: a TCP
//! listener on loopback receives framed CSV batches (one of them over
//! HTTP), a directory watcher replays a CSV file drop, and the runtime
//! checkpoints offsets + statistics so a restart would resume where this
//! process left off.
//!
//! ```bash
//! cargo run --release --example network_gate
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::sources::{Checkpoint, DirWatcherSource, NetListenerSource, SourceRuntime};
use dquag::stream::StreamEngine;
use dquag::tabular::csv;
use dquag::tabular::DataFrame;
use dquag::validate::{build_validator, ValidatorKind};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const N_TCP_BATCHES: usize = 6;

/// The simulated upstream feed: every third batch is corrupted.
fn feed(kind: DatasetKind, n: usize) -> Vec<DataFrame> {
    let columns = kind.default_ordinary_error_columns();
    (0..n)
        .map(|i| {
            let mut batch = kind.generate_clean(120, 300 + i as u64);
            if i % 3 == 2 {
                let mut rng = dquag::datagen::rng(400 + i as u64);
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::NumericAnomalies,
                    &columns,
                    0.3,
                    &mut rng,
                );
            }
            batch
        })
        .collect()
}

fn main() {
    let kind = DatasetKind::HotelBooking;
    let clean = kind.generate_clean(1_000, 51);
    let work_dir = std::env::temp_dir().join(format!("dquag_network_gate_{}", std::process::id()));
    let inbox = work_dir.join("inbox");
    let checkpoint_path = work_dir.join("dquag.ckpt.json");

    // A lighter-than-paper model keeps the example fast; the decision rules
    // are the paper's.
    let config = DquagConfig::builder()
        .epochs(8)
        .hidden_dim(12)
        .n_layers(2)
        .stream_replicas(
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
        )
        .source_bind_addr("127.0.0.1:0")
        .source_poll_interval(Duration::from_millis(25))
        .checkpoint_path(&checkpoint_path)
        .checkpoint_interval(Duration::from_millis(500))
        .build()
        .expect("configuration in range");

    let mut validator = build_validator(ValidatorKind::Dquag, &config);
    let fit = validator.fit(&clean).expect("training succeeds");
    println!("fitted {} on {} rows", fit.validator, fit.n_rows);

    let (engine, ingest, verdicts) =
        StreamEngine::from_config(&config, validator).expect("stream configuration in range");

    // The serving edge: one TCP/HTTP listener + one directory watcher,
    // supervised by a checkpointing runtime.
    let listener =
        NetListenerSource::from_config(&config.source, kind.schema()).expect("loopback bind");
    let addr = listener.local_addr();
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(listener))
        .source(Box::new(DirWatcherSource::new(&inbox, kind.schema())))
        .start(ingest)
        .expect("runtime starts");
    println!("listening on {addr}, watching {}\n", inbox.display());

    // Client 1: a TCP producer sending framed CSV batches and asking for
    // live stats at the end.
    let tcp_feed = feed(kind, N_TCP_BATCHES);
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect to the gate");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut reply = String::new();
        for batch in &tcp_feed {
            let payload = csv::to_csv_string(batch);
            stream
                .write_all(format!("BATCH csv {}\n", payload.len()).as_bytes())
                .expect("frame header");
            stream.write_all(payload.as_bytes()).expect("frame payload");
            reply.clear();
            reader.read_line(&mut reply).expect("reply");
            println!(
                "tcp client: sent {} rows -> {}",
                batch.n_rows(),
                reply.trim()
            );
        }
        stream.write_all(b"STATS\n").expect("stats request");
        reply.clear();
        reader.read_line(&mut reply).expect("stats reply");
        println!(
            "tcp client: live stats reply, {} bytes of JSON",
            reply.trim().len()
        );
        stream.write_all(b"QUIT\n").expect("quit");
    });

    // Client 2: one batch over HTTP.
    let http_batch = feed(kind, 1).remove(0);
    let http = std::thread::spawn(move || {
        let body = csv::to_csv_string(&http_batch);
        let mut stream = TcpStream::connect(addr).expect("connect for HTTP");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .write_all(
                format!(
                    "POST /ingest HTTP/1.1\r\nHost: gate\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("HTTP request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("HTTP response");
        let status = response.lines().next().unwrap_or("");
        println!("http client: {status}");
    });

    // Client 3: a CSV file drop into the watched inbox.
    std::fs::create_dir_all(&inbox).expect("inbox exists");
    let drop_batch = feed(kind, 3).remove(2); // a corrupted one
    let tmp = inbox.join("drop_000.csv.writing");
    csv::write_csv(&drop_batch, &tmp).expect("write drop");
    std::fs::rename(&tmp, inbox.join("drop_000.csv")).expect("atomic drop");

    // Consumer: outcomes arrive re-sequenced; stop once every submitted
    // batch (TCP + HTTP + file drop) has been judged.
    let expected = N_TCP_BATCHES + 2;
    let mut dirty = 0usize;
    let mut seen = 0usize;
    for item in verdicts {
        if item
            .outcome
            .verdict()
            .is_some_and(|verdict| verdict.is_dirty)
        {
            dirty += 1;
        }
        println!("{item}");
        seen += 1;
        if seen == expected {
            break;
        }
    }
    client.join().expect("tcp client finishes");
    http.join().expect("http client finishes");

    // Drain the serving edge; the final checkpoint is written on shutdown.
    let checkpoint = runtime.shutdown().expect("runtime drains");
    println!(
        "\ncheckpointed: offsets {:?} -> {}",
        checkpoint.offsets,
        checkpoint_path.display()
    );
    let reloaded = Checkpoint::load(&checkpoint_path).expect("checkpoint readable");
    assert_eq!(
        reloaded, checkpoint,
        "what we wrote is what a restart reads"
    );

    let stats = engine.shutdown();
    println!("final: {stats}");
    assert_eq!(stats.emitted, expected as u64, "nothing lost on the way");
    println!(
        "gate quarantined {dirty}/{expected} batches ({} over TCP, 1 over HTTP, 1 file drop)",
        N_TCP_BATCHES
    );

    std::fs::remove_dir_all(&work_dir).ok();
}
