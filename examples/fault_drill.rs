//! The fault drill: a seeded bit flip corrupts the live replica's fitted
//! weights mid-stream; the armed self-check catches it before a verdict
//! escapes; the engine quarantines the replica, rebuilds it from the
//! persisted model on disk and retries the batch — and the verdict stream
//! comes out identical to a deployment that was never hit.
//!
//! Traffic arrives the way it would in production: framed CSV batches over
//! a loopback TCP listener from `dquag-sources`.
//!
//! ```bash
//! cargo run --release --example fault_drill
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::faults::{FaultHandle, FaultKind, FaultSite, FaultedValidator};
use dquag::persist::{load_validator, save_validator};
use dquag::sources::{NetListenerSource, SourceRuntime};
use dquag::stream::{StreamEngine, StreamOutcome};
use dquag::tabular::csv;
use dquag::tabular::DataFrame;
use dquag::telemetry::{Telemetry, TelemetryOptions};
use dquag::validate::{DquagBackend, Validator, Verdict};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

const KIND: DatasetKind = DatasetKind::HotelBooking;
const BATCH_ROWS: usize = 250;
const N_BATCHES: usize = 6;

fn traffic() -> Vec<DataFrame> {
    (0..N_BATCHES as u64)
        .map(|i| {
            let mut batch = KIND.generate_clean(BATCH_ROWS, 300 + i);
            if i % 2 == 1 {
                let mut rng = dquag::datagen::rng(9000 + i);
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::NumericAnomalies,
                    &KIND.default_ordinary_error_columns(),
                    0.35,
                    &mut rng,
                );
            }
            batch
        })
        .collect()
}

fn send_batches(addr: std::net::SocketAddr, batches: &[DataFrame]) {
    let mut stream = TcpStream::connect(addr).expect("connect to the gate");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut reply = String::new();
    for batch in batches {
        let payload = csv::to_csv_string(batch);
        stream
            .write_all(format!("BATCH csv {}\n{payload}", payload.len()).as_bytes())
            .expect("frame");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        assert!(reply.starts_with("ACK "), "{reply}");
    }
    stream.write_all(b"QUIT\n").ok();
}

/// Serve the whole traffic over loopback TCP. When `fault` is set, it is
/// scheduled right after the first verdict lands — a bit flip striking a
/// replica that is mid-stream. Returns the verdicts and the quarantine
/// count.
fn serve(
    config: &DquagConfig,
    validator: Box<dyn Validator>,
    rebuild_from: Option<std::path::PathBuf>,
    fault: Option<(FaultHandle, FaultKind)>,
    batches: &[DataFrame],
) -> (Vec<Verdict>, u64) {
    let telemetry = Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 64,
        ..TelemetryOptions::default()
    });
    let mut builder = StreamEngine::builder()
        .replicas(1)
        .queue_capacity(batches.len())
        .telemetry(Arc::clone(&telemetry));
    if let Some(path) = rebuild_from {
        builder = builder.rebuild_source(move || load_validator(&path).ok());
    }
    let (engine, ingest, mut verdicts) = builder.start(validator).expect("engine starts");
    let listener =
        NetListenerSource::from_config(&config.source, KIND.schema()).expect("loopback bind");
    let addr = listener.local_addr();
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(listener))
        .start(ingest)
        .expect("runtime starts");

    // The first batch is judged by a healthy replica; then the fault hits.
    send_batches(addr, &batches[..1]);
    let first = verdicts.recv().expect("first outcome");
    let mut collected = vec![match first.outcome {
        StreamOutcome::Verdict(v) => v,
        other => panic!("expected a verdict, got {other:?}"),
    }];
    if let Some((handle, kind)) = fault {
        println!("  !! injecting {kind:?} into the live replica");
        handle.schedule(kind);
    }
    send_batches(addr, &batches[1..]);
    while collected.len() < batches.len() {
        let item = verdicts.recv().expect("an outcome per batch");
        match item.outcome {
            StreamOutcome::Verdict(v) => {
                println!(
                    "  seq {:>2}: {} dirty={}",
                    item.seq, v.validator, v.is_dirty
                );
                collected.push(v);
            }
            other => panic!("expected a verdict, got {other:?}"),
        }
    }
    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
    let quarantines = telemetry
        .registry()
        .counter("dquag_replica_quarantines_total", "")
        .get();
    for event in telemetry.recorder().dump() {
        if event.kind.label() == "replica_quarantined" {
            println!("  flight recorder: {}", event.kind);
        }
    }
    (collected, quarantines)
}

fn main() {
    let work_dir = std::env::temp_dir().join(format!("dquag_fault_drill_{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("work dir");
    let model_path = work_dir.join("model.json");

    let config = DquagConfig::builder()
        .epochs(8)
        .hidden_dim(12)
        .n_layers(2)
        .dataset_flag_factor(2.5)
        .source_bind_addr("127.0.0.1:0")
        .build()
        .expect("configuration in range");

    // Train once, persist: the file on disk is what the engine heals from.
    let clean = KIND.generate_clean(1_500, 51);
    let start = Instant::now();
    let mut backend = DquagBackend::new(config.clone());
    backend.fit(&clean).expect("training succeeds");
    println!(
        "trained on {} rows in {:.1}s; persisting -> {}",
        clean.n_rows(),
        start.elapsed().as_secs_f64(),
        model_path.display()
    );
    save_validator(&model_path, &backend).expect("model persists");
    let batches = traffic();

    // Control: the persisted model, never faulted.
    println!("\ncontrol run (never faulted):");
    let (expected, control_quarantines) = serve(
        &config,
        load_validator(&model_path).expect("model loads"),
        None,
        None,
        &batches,
    );
    assert_eq!(control_quarantines, 0);

    // Drill: exponent bit flips strike the live replica after batch 0. The
    // self-check refuses to score, the engine quarantines the replica,
    // rebuilds from disk and retries — no batch is lost, none is judged by
    // a corrupt model.
    println!("\ndrill run (bit flip after the first verdict):");
    let handle = FaultHandle::new();
    let faulted = Box::new(FaultedValidator::new(backend, handle.clone(), 0xFA17));
    let (drilled, quarantines) = serve(
        &config,
        faulted,
        Some(model_path.clone()),
        Some((
            handle,
            FaultKind::BitFlips {
                site: FaultSite::Exponent,
                count: 4,
            },
        )),
        &batches,
    );

    assert_eq!(quarantines, 1, "exactly one replica was retired");
    assert_eq!(
        drilled, expected,
        "post-rebuild verdicts match the never-faulted control verdict-for-verdict"
    );
    println!(
        "\ndrill passed: 1 quarantine, {} verdicts, parity with the never-faulted control",
        drilled.len()
    );

    std::fs::remove_dir_all(&work_dir).ok();
}
