//! Hidden-error detection: the motivating scenario of the paper.
//!
//! Rule-based validators catch out-of-range ages and unknown categories, but
//! miss *logically impossible combinations* — a credit-card applicant whose
//! employment started before their birth, or an elite education/occupation
//! pair with an implausibly low income. This example shows DQuaG flagging
//! both hidden conflicts while a Deequ-style expert constraint suite passes
//! them.
//!
//! ```bash
//! cargo run --release --example hidden_errors
//! ```

use dquag::baselines::{deequ::Deequ, BatchValidator};
use dquag::core::{DquagConfig, DquagValidator};
use dquag::datagen::{inject_hidden, DatasetKind, HiddenError};
use dquag::gnn::ModelConfig;

fn main() {
    let clean = DatasetKind::CreditCard.generate_clean(4_000, 21);

    // Two batches, each corrupted with one of the paper's hidden conflicts.
    let mut rng = dquag::datagen::rng(22);
    let mut conflict1 = DatasetKind::CreditCard.generate_clean(600, 23);
    inject_hidden(&mut conflict1, HiddenError::CreditEmploymentBeforeBirth, 0.2, &mut rng);
    let mut conflict2 = DatasetKind::CreditCard.generate_clean(600, 24);
    inject_hidden(&mut conflict2, HiddenError::CreditIncomeEducationMismatch, 0.2, &mut rng);

    // Expert-tuned Deequ suite: the strongest rule-based comparison.
    let mut deequ = Deequ::expert();
    deequ.fit(&clean);

    // DQuaG.
    let config = DquagConfig {
        epochs: 15,
        model: ModelConfig {
            hidden_dim: 24,
            ..ModelConfig::default()
        },
        validation_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..DquagConfig::default()
    };
    let dquag = DquagValidator::train(&clean, &[], &config).expect("training");

    for (name, batch) in [
        ("Conflicts-1 (employment before birth)", &conflict1),
        ("Conflicts-2 (elite education, tiny income)", &conflict2),
    ] {
        let deequ_verdict = deequ.validate(batch);
        let dquag_report = dquag.validate(batch).expect("same schema");
        println!("{name}");
        println!(
            "  Deequ expert : {}",
            if deequ_verdict.is_dirty {
                "flagged"
            } else {
                "PASSED (conflict missed)"
            }
        );
        println!(
            "  DQuaG        : {} ({:.1}% of instances above threshold)",
            if dquag_report.dataset_is_dirty {
                "flagged"
            } else {
                "passed"
            },
            dquag_report.error_rate * 100.0
        );
        // Show which features DQuaG blames for the first flagged instance.
        if let Some(&row) = dquag_report.flagged_instances.first() {
            let blamed: Vec<&str> = dquag_report
                .cell_flags
                .iter()
                .filter(|c| c.row == row)
                .map(|c| clean.schema().fields()[c.column].name.as_str())
                .collect();
            println!("  first flagged instance #{row}, suspicious features: {blamed:?}");
        }
        println!();
    }
}
