//! Hidden-error detection: the motivating scenario of the paper.
//!
//! Rule-based validators catch out-of-range ages and unknown categories, but
//! struggle with *logically impossible combinations* — a credit-card
//! applicant whose employment started before their birth, or an elite
//! education/occupation pair with an implausibly low income. The second
//! conflict keeps every value inside its clean per-column range, so the
//! expert-tuned Deequ suite passes it while DQuaG flags both. Because every
//! system now sits behind the unified `Validator` trait, this example runs
//! the strongest rule-based baseline and DQuaG through the *same* loop and
//! only the verdicts differ.
//!
//! ```bash
//! cargo run --release --example hidden_errors
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_hidden, DatasetKind, HiddenError};
use dquag::validate::{build_validator, ValidatorKind};

fn main() {
    let clean = DatasetKind::CreditCard.generate_clean(4_000, 21);

    // Two batches, each corrupted with one of the paper's hidden conflicts.
    let mut rng = dquag::datagen::rng(22);
    let mut conflict1 = DatasetKind::CreditCard.generate_clean(600, 23);
    inject_hidden(
        &mut conflict1,
        HiddenError::CreditEmploymentBeforeBirth,
        0.2,
        &mut rng,
    );
    let mut conflict2 = DatasetKind::CreditCard.generate_clean(600, 24);
    inject_hidden(
        &mut conflict2,
        HiddenError::CreditIncomeEducationMismatch,
        0.2,
        &mut rng,
    );

    let config = DquagConfig::builder()
        .epochs(15)
        .hidden_dim(24)
        .validation_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .build()
        .expect("configuration in range");

    // Expert-tuned Deequ (the strongest rule-based comparison) and DQuaG,
    // built and fitted through the same factory.
    let mut validators = Vec::new();
    for kind in [ValidatorKind::DeequExpert, ValidatorKind::Dquag] {
        let mut validator = build_validator(kind, &config);
        validator.fit(&clean).expect("fit succeeds");
        validators.push(validator);
    }

    for (name, batch) in [
        ("Conflicts-1 (employment before birth)", &conflict1),
        ("Conflicts-2 (elite education, tiny income)", &conflict2),
    ] {
        println!("{name}");
        for validator in &validators {
            let verdict = validator.validate(batch).expect("same schema");
            let outcome = match (verdict.is_dirty, validator.capabilities().cell_flags) {
                (true, _) => "flagged".to_string(),
                (false, false) => "PASSED (conflict missed)".to_string(),
                (false, true) => "passed".to_string(),
            };
            println!(
                "  {:<13}: {outcome} (score {:.4})",
                verdict.validator, verdict.score
            );
            // Graded detail: DQuaG names the features it blames.
            if let (Some(flagged), Some(cells)) = (&verdict.flagged_instances, &verdict.cell_flags)
            {
                if let Some(&row) = flagged.first() {
                    let blamed: Vec<&str> = cells
                        .iter()
                        .filter(|c| c.row == row)
                        .map(|c| clean.schema().fields()[c.column].name.as_str())
                        .collect();
                    println!("                 first flagged instance #{row}, suspicious features: {blamed:?}");
                }
            }
        }
        println!();
    }
}
