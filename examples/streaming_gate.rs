//! A continuous data-quality gate: the streaming engine in front of a live
//! batch feed.
//!
//! The paper frames DQuaG as a service judging batches as they arrive; this
//! example wires that up end to end. A producer thread plays an upstream
//! pipeline emitting batches (some clean, some corrupted), the engine shards
//! validation across fitted DQuaG replicas, and the consumer reads verdicts
//! back in submission order — with live stats mid-stream and a graceful
//! drain at the end.
//!
//! ```bash
//! cargo run --release --example streaming_gate
//! ```

use dquag::core::{BackpressurePolicy, DquagConfig};
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::stream::StreamEngine;
use dquag::tabular::DataFrame;
use dquag::validate::{build_validator, ValidatorKind};
use std::time::Duration;

const N_BATCHES: usize = 10;

/// The simulated upstream feed: every third batch is corrupted.
fn feed(kind: DatasetKind) -> Vec<DataFrame> {
    let columns = kind.default_ordinary_error_columns();
    (0..N_BATCHES)
        .map(|i| {
            let mut batch = kind.generate_clean(150, 300 + i as u64);
            if i % 3 == 2 {
                let mut rng = dquag::datagen::rng(400 + i as u64);
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::NumericAnomalies,
                    &columns,
                    0.3,
                    &mut rng,
                );
            }
            batch
        })
        .collect()
}

fn main() {
    let kind = DatasetKind::HotelBooking;
    let clean = kind.generate_clean(1_000, 51);

    // A lighter-than-paper model keeps the example fast; the decision rules
    // are the paper's.
    let config = DquagConfig::builder()
        .epochs(8)
        .hidden_dim(12)
        .n_layers(2)
        .stream_replicas(
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
        )
        .stream_queue_capacity(4)
        .stream_backpressure(BackpressurePolicy::Block)
        .stream_batch_deadline(Duration::from_secs(30))
        .build()
        .expect("configuration in range");

    let mut validator = build_validator(ValidatorKind::Dquag, &config);
    let fit = validator.fit(&clean).expect("training succeeds");
    println!(
        "fitted {} on {} rows ({})",
        fit.validator,
        fit.n_rows,
        fit.notes.join("; ")
    );

    let (engine, ingest, verdicts) =
        StreamEngine::from_config(&config, validator).expect("stream configuration in range");
    println!(
        "engine up: {} replicas, queue capacity {}, {:?} backpressure\n",
        engine.replicas(),
        config.stream.queue_capacity,
        config.stream.backpressure
    );

    // Producer: a thread feeding batches as the queue admits them (the
    // `Block` policy makes it run at the validators' pace — lossless).
    let producer = std::thread::spawn(move || {
        for batch in feed(kind) {
            ingest
                .submit(batch)
                .expect("engine open while the producer runs");
        }
        // Last handle drops here: ingestion closes, the engine drains.
    });

    // Consumer: outcomes come back re-sequenced into submission order, so
    // the gate's audit log reads like the feed itself.
    let mut dirty = 0usize;
    for item in verdicts {
        if item
            .outcome
            .verdict()
            .is_some_and(|verdict| verdict.is_dirty)
        {
            dirty += 1;
        }
        println!("{item}");
        if item.seq + 1 == N_BATCHES as u64 / 2 {
            println!("  … live stats: {}\n", engine.stats());
        }
    }
    producer.join().expect("producer finishes");

    let stats = engine.shutdown();
    println!("\nfinal: {}", stats);
    assert_eq!(stats.emitted, N_BATCHES as u64, "nothing lost on the way");
    println!(
        "gate quarantined {dirty}/{N_BATCHES} batches at {:.0} rows/s end to end",
        stats.rows_per_sec
    );
}
