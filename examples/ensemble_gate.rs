//! A composed data-quality gate: DQuaG, a KS/PSI drift detector and Deequ
//! under majority voting, assembled from one declarative JSON spec.
//!
//! The spec tree is the deployment's whole validator description — it
//! round-trips through `serde_json`, builds through the open registry, and
//! the resulting ensemble fits/validates/replicates like any single
//! backend. The feed contains one batch with *erroneous values* (numeric
//! anomalies the value-level members catch) and one batch with *distribution
//! drift* (every value individually plausible — the drift member's home
//! turf), so the example shows why heterogeneous members make a better gate
//! than any one of them — including on the clean batch, where a
//! trigger-happy member is simply outvoted.
//!
//! ```bash
//! cargo run --release --example ensemble_gate
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::tabular::{DataFrame, Value};
use dquag::validate::{build_spec, ValidationSession, ValidatorSpec};

/// The deployment spec, exactly as it would live in a config file.
const SPEC_JSON: &str = r#"{"Ensemble": {"members": [
    {"Backend": {"name": "dquag", "params": {"epochs": 12, "hidden_dim": 16, "n_layers": 2}}},
    {"Drift": {"tests": ["Ks", "Psi"],
               "ks_threshold": 0.15, "psi_threshold": 0.25, "bins": 10}},
    {"Backend": {"name": "deequ-auto", "params": {}}}
], "voting": "Majority"}}"#;

/// Scale every numeric value: distribution drift without a single
/// individually-implausible cell.
fn drifted(kind: DatasetKind, seed: u64, factor: f64) -> DataFrame {
    let mut batch = kind.generate_clean(300, seed);
    let numeric = batch.schema().numeric_indices();
    for row in 0..batch.n_rows() {
        for &col in &numeric {
            if let Ok(Value::Number(v)) = batch.value(row, col) {
                batch
                    .set_value(row, col, Value::Number(v * factor))
                    .expect("in-bounds write");
            }
        }
    }
    batch
}

fn main() {
    let kind = DatasetKind::CreditCard;
    let clean = kind.generate_clean(900, 81);

    let spec: ValidatorSpec = serde_json::from_str(SPEC_JSON).expect("spec JSON parses");
    println!("deployment spec: {spec}\n");

    let validator = build_spec(&spec, &DquagConfig::default()).expect("spec builds");
    println!(
        "fitting `{}` on {} clean rows …",
        validator.name(),
        clean.n_rows()
    );
    let mut session = ValidationSession::fit(validator, &clean).expect("fitting succeeds");

    // The feed: a clean batch, a batch with injected value errors, and a
    // mean-shifted batch only the drift member can see.
    let clean_batch = kind.generate_clean(300, 82);
    let mut dirty_batch = kind.generate_clean(300, 83);
    let mut rng = dquag::datagen::rng(84);
    inject_ordinary(
        &mut dirty_batch,
        OrdinaryError::NumericAnomalies,
        &kind.default_ordinary_error_columns(),
        0.3,
        &mut rng,
    );
    let drifted_batch = drifted(kind, 85, 1.6);

    for (label, batch) in [
        ("clean", &clean_batch),
        ("value errors", &dirty_batch),
        ("distribution drift", &drifted_batch),
    ] {
        let verdict = session.push_batch(batch).expect("same schema");
        println!("[{label}] {verdict}\n");
    }

    let summary = session.summary();
    println!("{summary}");
    assert!(
        !session.history()[0].is_dirty,
        "the clean batch must pass the majority vote"
    );
    assert!(
        session.history()[1].is_dirty,
        "the value-error batch must be flagged"
    );
    assert!(
        session.history()[2].is_dirty,
        "the drifted batch must be flagged"
    );
}
