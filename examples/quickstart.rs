//! Quickstart: the unified validator API end to end.
//!
//! Builds a DQuaG validator through the [`dquag::validate`] registry, fits it
//! on clean data inside a streaming [`ValidationSession`], pushes an incoming
//! batch, inspects the graded `Verdict`, and repairs the cells DQuaG flags.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::validate::{build_validator, ValidationSession, ValidatorKind};

fn main() {
    // 1. A clean reference dataset (stand-in for your curated training data).
    let clean = DatasetKind::CreditCard.generate_clean(4_000, 7);
    println!(
        "clean reference data: {} rows × {} columns",
        clean.n_rows(),
        clean.n_cols()
    );

    // 2. An incoming batch with real problems: 20% numeric anomalies and
    //    missing values in three attributes.
    let mut incoming = DatasetKind::CreditCard.generate_clean(800, 8);
    let mut rng = dquag::datagen::rng(9);
    let columns = DatasetKind::CreditCard.default_ordinary_error_columns();
    inject_ordinary(
        &mut incoming,
        OrdinaryError::NumericAnomalies,
        &columns,
        0.2,
        &mut rng,
    );
    inject_ordinary(
        &mut incoming,
        OrdinaryError::MissingValues,
        &columns,
        0.2,
        &mut rng,
    );

    // 3. Configure the pipeline through the validated builder (a
    //    lighter-than-paper setting keeps the example fast) and train DQuaG
    //    behind the unified `Validator` API. Swapping `ValidatorKind::Dquag`
    //    for any baseline changes nothing else in this program.
    let config = DquagConfig::builder()
        .epochs(15)
        .hidden_dim(24)
        .validation_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .build()
        .expect("configuration in range");
    let validator = build_validator(ValidatorKind::Dquag, &config);
    let mut session = ValidationSession::fit(validator, &clean)
        .expect("training succeeds")
        .with_threads(config.validation_threads);
    let fit = session
        .fit_report()
        .expect("session fitted the validator")
        .clone();
    println!(
        "trained: {} weights, threshold = {:.5} ({})",
        fit.n_parameters.unwrap_or(0),
        fit.threshold.unwrap_or(0.0),
        fit.notes.join("; ")
    );

    // 4. Stream the incoming batch through the session. `Verdict` implements
    //    `Display`: headline plus violation messages, no hand-formatting.
    let verdict = session.push_batch(&incoming).expect("same schema").clone();
    println!("{verdict}");

    // 5. Repair the flagged cells (a DQuaG capability) and re-validate.
    assert!(session.validator().capabilities().repair);
    let repaired = session
        .validator()
        .repair(&incoming, &verdict)
        .expect("repair succeeds")
        .expect("DQuaG supports repair");
    let after = session.push_batch(&repaired).expect("same schema");
    println!("after repair: {after}");
    println!("session: {}", session.summary());
}
