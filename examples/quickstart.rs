//! Quickstart: train DQuaG on clean data, validate an incoming batch, and
//! repair the cells it flags.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dquag::core::{DquagConfig, DquagValidator};
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::gnn::ModelConfig;

fn main() {
    // 1. A clean reference dataset (stand-in for your curated training data).
    let clean = DatasetKind::CreditCard.generate_clean(4_000, 7);
    println!(
        "clean reference data: {} rows × {} columns",
        clean.n_rows(),
        clean.n_cols()
    );

    // 2. An incoming batch with real problems: 20% numeric anomalies and
    //    missing values in three attributes.
    let mut incoming = DatasetKind::CreditCard.generate_clean(800, 8);
    let mut rng = dquag::datagen::rng(9);
    let columns = DatasetKind::CreditCard.default_ordinary_error_columns();
    inject_ordinary(&mut incoming, OrdinaryError::NumericAnomalies, &columns, 0.2, &mut rng);
    inject_ordinary(&mut incoming, OrdinaryError::MissingValues, &columns, 0.2, &mut rng);

    // 3. Train DQuaG: feature-graph inference + GAT/GIN encoder + dual decoder.
    //    (A lighter-than-paper configuration keeps the example fast.)
    let config = DquagConfig {
        epochs: 15,
        model: ModelConfig {
            hidden_dim: 24,
            ..ModelConfig::default()
        },
        validation_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..DquagConfig::default()
    };
    let validator = DquagValidator::train(&clean, &[&incoming], &config).expect("training");
    println!(
        "trained: {} weights, threshold = {:.5}, feature graph has {} edges",
        validator.training_summary().n_weights,
        validator.threshold(),
        validator.feature_graph().n_edges()
    );

    // 4. Validate the incoming batch.
    let report = validator.validate(&incoming).expect("same schema");
    println!(
        "incoming batch: {:.1}% of instances flagged → dataset is {}",
        report.error_rate * 100.0,
        if report.dataset_is_dirty { "PROBLEMATIC" } else { "clean" }
    );
    println!(
        "flagged {} instances, {} individual cells",
        report.flagged_instances.len(),
        report.cell_flags.len()
    );

    // 5. Repair the flagged cells and re-validate.
    let repaired = validator.repair(&incoming, &report).expect("repair");
    let after = validator.validate(&repaired).expect("same schema");
    println!(
        "after repair: {:.1}% flagged → dataset is {}",
        after.error_rate * 100.0,
        if after.dataset_is_dirty { "still problematic" } else { "clean" }
    );
}
