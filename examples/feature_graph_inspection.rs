//! Inspect the knowledge-based feature graph DQuaG builds for a dataset, and
//! regenerate the paper's ChatGPT-4 prompt for users who want to plug a real
//! LLM response back in.
//!
//! ```bash
//! cargo run --release --example feature_graph_inspection
//! ```

use dquag::datagen::DatasetKind;
use dquag::graph::knowledge::{build_feature_graph, build_prompt, sample_rows, StatisticalOracle};
use dquag::graph::FeatureGraph;

fn main() {
    for kind in [DatasetKind::CreditCard, DatasetKind::HotelBooking] {
        let clean = kind.generate_clean(2_000, 55);
        let oracle = StatisticalOracle::default();
        let graph: FeatureGraph =
            build_feature_graph(&clean, &oracle, 100).expect("graph construction");

        println!("=== {} ===", kind.name());
        println!(
            "{} features, {} inferred relationships, connected: {}",
            graph.n_nodes(),
            graph.n_edges(),
            graph.is_connected()
        );
        for (i, j) in graph.edges() {
            println!("  {} ↔ {}", graph.node_names()[i], graph.node_names()[j]);
        }

        // The relationships in the paper's JSON exchange format.
        println!(
            "\nrelationship JSON:\n{}",
            graph.to_relationships().to_json()
        );

        // The exact prompt of §3.1.1, ready to paste into an LLM. (Truncated
        // here; the sample rows make it long.)
        let prompt = build_prompt(clean.schema(), &sample_rows(&clean, 5));
        let preview: String = prompt.lines().take(12).collect::<Vec<_>>().join("\n");
        println!("prompt preview:\n{preview}\n…\n");
    }
}
