//! The drift observatory: per-column drift gauges and the ranked
//! scoreboard on a wide table where only two of sixteen columns drift.
//!
//! The cardinality policy is the point of this example. The table has 16
//! numeric columns, but the bundle's data layer is budgeted at 4 gauge
//! slots (`telemetry_data_top_k(4)`), so a Prometheus scrape stays small
//! no matter how wide the schema grows — while the in-memory scoreboard
//! served by `GET /drift` still ranks every column. Two columns (`price`
//! and `latency`) are pushed off-profile mid-run; the gauges, the
//! scoreboard, the raw `DRIFT` command and the flight recorder's
//! drift-crossing events all name them.
//!
//! ```bash
//! cargo run --release --example drift_observatory
//! ```

use dquag::core::DquagConfig;
use dquag::sources::{NetListenerSource, SourceRuntime};
use dquag::stream::StreamEngine;
use dquag::tabular::{csv, DataFrame, Field, Schema, Value};
use dquag::validate::{DriftSpec, DriftValidator, Validator};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const N_COLUMNS: usize = 16;
const DRIFTERS: [&str; 2] = ["price", "latency"];
const CLEAN_BATCHES: usize = 2;
const DRIFTED_BATCHES: usize = 3;

fn wide_schema() -> Schema {
    let fields = (0..N_COLUMNS)
        .map(|i| match i {
            3 => Field::numeric("price", "unit price"),
            7 => Field::numeric("latency", "request latency"),
            _ => {
                let name = format!("col_{i:02}");
                Field::numeric(&name, "")
            }
        })
        .collect();
    Schema::new(fields)
}

/// One batch of the wide table; `drifted` shoves the two drifter columns
/// far off the fitted profile while the other fourteen stay put.
fn batch(seed: u64, rows: usize, drifted: bool) -> DataFrame {
    let schema = wide_schema();
    let mut df = DataFrame::new(schema.clone());
    for row in 0..rows {
        let values = (0..N_COLUMNS)
            .map(|col| {
                let base = ((row as u64 * 31 + col as u64 * 17 + seed * 7) % 23) as f64;
                let name = &schema.fields()[col].name;
                if drifted && DRIFTERS.contains(&name.as_str()) {
                    Value::Number(400.0 + 3.0 * base)
                } else {
                    Value::Number(base)
                }
            })
            .collect();
        df.push_row(values).expect("row matches schema");
    }
    df
}

fn post_csv(addr: SocketAddr, frame: &DataFrame) {
    let body = csv::to_csv_string(frame);
    let mut stream = TcpStream::connect(addr).expect("connect for HTTP");
    stream
        .write_all(
            format!(
                "POST /ingest HTTP/1.1\r\nHost: gate\r\nContent-Type: text/csv\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("HTTP POST");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("HTTP response");
    assert!(
        response.starts_with("HTTP/1.1 202"),
        "batch accepted, got: {}",
        response.lines().next().unwrap_or("")
    );
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to the gate");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: gate\r\n\r\n").as_bytes())
        .expect("HTTP request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("HTTP response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn main() {
    // The data layer is off by default; one config block turns it on and
    // budgets the gauges at 4 slots for a 16-column table.
    let config = DquagConfig::builder()
        .source_bind_addr("127.0.0.1:0")
        .source_poll_interval(Duration::from_millis(20))
        .flight_recorder_capacity(64)
        .telemetry_data_enabled(true)
        .telemetry_data_top_k(4)
        .build()
        .expect("configuration in range");
    let telemetry = config
        .telemetry
        .build()
        .expect("telemetry enabled by default");

    // A KS/PSI drift detector fitted on the clean profile; the engine
    // attaches the bundle, so every validated batch feeds the data layer.
    let mut validator = DriftValidator::new(DriftSpec::default());
    validator
        .fit(&batch(1, 400, false))
        .expect("fitting on clean data");
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .stream_config(&config.stream)
        .telemetry(Arc::clone(&telemetry))
        .start(Box::new(validator))
        .expect("engine starts");
    let listener = NetListenerSource::from_config(&config.source, wide_schema())
        .expect("loopback bind")
        .with_telemetry(Arc::clone(&telemetry));
    let addr = listener.local_addr();
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(listener))
        .telemetry(Arc::clone(&telemetry))
        .start(ingest)
        .expect("runtime starts");
    println!("drift observatory listening on {addr}\n");

    // Clean traffic first, then `price` and `latency` walk off-profile.
    for i in 0..CLEAN_BATCHES {
        post_csv(addr, &batch(100 + i as u64, 80, false));
    }
    for i in 0..DRIFTED_BATCHES {
        post_csv(addr, &batch(200 + i as u64, 80, true));
    }
    let mut dirty = 0usize;
    for item in verdicts.take(CLEAN_BATCHES + DRIFTED_BATCHES) {
        if item.outcome.verdict().is_some_and(|v| v.is_dirty) {
            dirty += 1;
        }
        println!("{item}");
    }
    println!(
        "\ngate flagged {dirty}/{} batches as drifted",
        CLEAN_BATCHES + DRIFTED_BATCHES
    );

    // Scrape 1: the bounded gauge family. 16 columns, at most 4 slots.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK", "metrics endpoint answers");
    let drift_series: Vec<&str> = metrics
        .lines()
        .filter(|l| l.starts_with("dquag_column_drift") && !l.starts_with('#'))
        .collect();
    let ratio_series = drift_series
        .iter()
        .filter(|l| l.starts_with("dquag_column_drift_threshold_ratio{"))
        .count();
    assert!(
        (1..=4).contains(&ratio_series),
        "gauge slots must respect the top-K budget, got {ratio_series}"
    );
    for name in DRIFTERS {
        assert!(
            drift_series
                .iter()
                .any(|l| l.contains(&format!("column=\"{name}\""))),
            "drifted column `{name}` should hold a gauge slot"
        );
    }
    println!("\nper-column series from GET /metrics ({ratio_series} slots in use):");
    for line in &drift_series {
        println!("  {line}");
    }

    // Scrape 2: the ranked scoreboard covers all 16 columns.
    let (status, scoreboard) = http_get(addr, "/drift");
    assert_eq!(status, "HTTP/1.1 200 OK", "drift endpoint answers");
    for name in DRIFTERS {
        assert!(scoreboard.contains(name), "scoreboard should rank `{name}`");
    }
    println!("\nGET /drift scoreboard:\n{scoreboard}");

    // Scrape 3: the same scoreboard over the raw protocol, one line.
    let stream = TcpStream::connect(addr).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(b"DRIFT\n").expect("DRIFT command");
    let mut line = String::new();
    reader.read_line(&mut line).expect("DRIFT reply");
    assert!(line.starts_with("DRIFT {"), "raw reply: {line}");
    println!("raw DRIFT reply: {} bytes", line.trim_end().len());

    // The flight recorder journaled the moment each column crossed its
    // threshold, alongside the usual lifecycle events.
    runtime.shutdown().expect("runtime drains");
    engine.shutdown();
    let crossings: Vec<String> = telemetry
        .recorder()
        .dump()
        .iter()
        .filter(|e| e.kind.label() == "drift_crossing")
        .map(|e| e.kind.to_string())
        .collect();
    assert!(
        crossings.iter().any(|c| c.contains("price"))
            && crossings.iter().any(|c| c.contains("latency")),
        "both drifters cross their thresholds: {crossings:?}"
    );
    println!("\nflight-recorder drift crossings:");
    for crossing in &crossings {
        println!("  {crossing}");
    }
    println!(
        "\none structured log line:\n{}",
        telemetry.structured_line()
    );
}
