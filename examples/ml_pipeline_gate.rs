//! Using DQuaG as a data-quality gate in front of an ML pipeline.
//!
//! The scenario the paper's introduction motivates: a model is retrained on
//! data batches arriving daily; before a batch is admitted into the training
//! set it must pass validation. This example streams a week of hotel-booking
//! batches — some clean, some corrupted — through the trained validator,
//! admits the clean ones, repairs-and-admits the mildly corrupted ones, and
//! quarantines the rest.
//!
//! ```bash
//! cargo run --release --example ml_pipeline_gate
//! ```

use dquag::core::{DquagConfig, DquagValidator};
use dquag::datagen::{inject_hidden, inject_ordinary, DatasetKind, HiddenError, OrdinaryError};
use dquag::gnn::ModelConfig;
use dquag::tabular::DataFrame;

enum GateDecision {
    Admit,
    RepairAndAdmit,
    Quarantine,
}

fn decide(error_rate: f64, threshold: f64) -> GateDecision {
    if error_rate <= threshold {
        GateDecision::Admit
    } else if error_rate <= 3.0 * threshold {
        GateDecision::RepairAndAdmit
    } else {
        GateDecision::Quarantine
    }
}

fn main() {
    let kind = DatasetKind::HotelBooking;
    let clean = kind.generate_clean(4_000, 31);
    let config = DquagConfig {
        epochs: 15,
        model: ModelConfig {
            hidden_dim: 24,
            ..ModelConfig::default()
        },
        validation_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..DquagConfig::default()
    };
    let validator = DquagValidator::train(&clean, &[], &config).expect("training");
    let gate_threshold = validator.config().dataset_error_rate_threshold();

    // Seven "daily" batches with different quality problems.
    let mut rng = dquag::datagen::rng(33);
    let columns = kind.default_ordinary_error_columns();
    let mut week: Vec<(String, DataFrame)> = Vec::new();
    for day in 0..7 {
        let mut batch = kind.generate_clean(500, 100 + day);
        let label = match day {
            1 => {
                inject_ordinary(&mut batch, OrdinaryError::MissingValues, &columns, 0.1, &mut rng);
                "10% missing values"
            }
            3 => {
                inject_ordinary(&mut batch, OrdinaryError::NumericAnomalies, &columns, 0.3, &mut rng);
                inject_ordinary(&mut batch, OrdinaryError::StringTypos, &columns, 0.3, &mut rng);
                "heavily corrupted export"
            }
            5 => {
                inject_hidden(&mut batch, HiddenError::HotelGroupWithoutAdults, 0.2, &mut rng);
                "group bookings without adults"
            }
            _ => "clean",
        };
        week.push((format!("day {day} ({label})"), batch));
    }

    let mut training_pool = clean.clone();
    for (label, batch) in &week {
        let report = validator.validate(batch).expect("same schema");
        match decide(report.error_rate, gate_threshold) {
            GateDecision::Admit => {
                training_pool.append(batch).expect("same schema");
                println!("{label:<42} ADMIT          ({:.1}% flagged)", report.error_rate * 100.0);
            }
            GateDecision::RepairAndAdmit => {
                let repaired = validator.repair(batch, &report).expect("repair");
                training_pool.append(&repaired).expect("same schema");
                println!(
                    "{label:<42} REPAIR + ADMIT ({:.1}% flagged, {} cells repaired)",
                    report.error_rate * 100.0,
                    report.cell_flags.len()
                );
            }
            GateDecision::Quarantine => {
                println!("{label:<42} QUARANTINE     ({:.1}% flagged)", report.error_rate * 100.0);
            }
        }
    }
    println!(
        "\ntraining pool grew from {} to {} rows",
        clean.n_rows(),
        training_pool.n_rows()
    );
}
