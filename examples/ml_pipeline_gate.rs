//! Using DQuaG as a data-quality gate in front of an ML pipeline.
//!
//! The scenario the paper's introduction motivates: a model is retrained on
//! data batches arriving daily; before a batch is admitted into the training
//! set it must pass validation. This example streams a week of credit-card-application
//! batches — some clean, some corrupted — through a [`ValidationSession`],
//! admits the clean ones, repairs-and-admits the mildly corrupted ones, and
//! quarantines the rest.
//!
//! ```bash
//! cargo run --release --example ml_pipeline_gate
//! ```

use dquag::core::DquagConfig;
use dquag::datagen::{inject_hidden, inject_ordinary, DatasetKind, HiddenError, OrdinaryError};
use dquag::tabular::DataFrame;
use dquag::validate::{ValidationSession, ValidatorKind};

enum GateDecision {
    Admit,
    RepairAndAdmit,
    Quarantine,
}

fn decide(error_rate: f64, threshold: f64) -> GateDecision {
    if error_rate <= threshold {
        GateDecision::Admit
    } else if error_rate <= 3.0 * threshold {
        GateDecision::RepairAndAdmit
    } else {
        GateDecision::Quarantine
    }
}

fn main() {
    let kind = DatasetKind::CreditCard;
    let clean = kind.generate_clean(4_000, 31);
    let config = DquagConfig::builder()
        .epochs(15)
        .hidden_dim(24)
        .validation_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .build()
        .expect("configuration in range");
    let gate_threshold = config.dataset_error_rate_threshold();

    // One session owns the fitted validator for the whole week; its history
    // doubles as the gate's audit log.
    let mut session =
        ValidationSession::train(ValidatorKind::Dquag, &config, &clean).expect("training");

    // Seven "daily" batches with different quality problems.
    let mut rng = dquag::datagen::rng(33);
    let columns = kind.default_ordinary_error_columns();
    let mut week: Vec<(String, DataFrame)> = Vec::new();
    for day in 0..7 {
        let mut batch = kind.generate_clean(500, 100 + day);
        let label = match day {
            1 => {
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::MissingValues,
                    &columns,
                    0.05,
                    &mut rng,
                );
                "5% missing values"
            }
            3 => {
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::NumericAnomalies,
                    &columns,
                    0.3,
                    &mut rng,
                );
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::StringTypos,
                    &columns,
                    0.3,
                    &mut rng,
                );
                "heavily corrupted export"
            }
            5 => {
                inject_hidden(
                    &mut batch,
                    HiddenError::CreditEmploymentBeforeBirth,
                    0.2,
                    &mut rng,
                );
                "applicants employed before their birth"
            }
            _ => "clean",
        };
        week.push((format!("day {day} ({label})"), batch));
    }

    let mut training_pool = clean.clone();
    for (label, batch) in &week {
        let verdict = session.push_batch(batch).expect("same schema").clone();
        match decide(verdict.error_rate(), gate_threshold) {
            GateDecision::Admit => {
                training_pool.append(batch).expect("same schema");
                println!(
                    "{label:<42} ADMIT          ({:.1}% flagged)",
                    verdict.error_rate() * 100.0
                );
            }
            GateDecision::RepairAndAdmit => {
                let repaired = session
                    .validator()
                    .repair(batch, &verdict)
                    .expect("repair succeeds")
                    .expect("DQuaG supports repair");
                training_pool.append(&repaired).expect("same schema");
                println!(
                    "{label:<42} REPAIR + ADMIT ({:.1}% flagged, {} cells repaired)",
                    verdict.error_rate() * 100.0,
                    verdict.cell_flags.as_ref().map_or(0, Vec::len)
                );
            }
            GateDecision::Quarantine => {
                println!(
                    "{label:<42} QUARANTINE     ({:.1}% flagged)",
                    verdict.error_rate() * 100.0
                );
            }
        }
    }
    println!("\nweek summary — {}", session.summary());
    println!(
        "training pool grew from {} to {} rows",
        clean.n_rows(),
        training_pool.n_rows()
    );
}
