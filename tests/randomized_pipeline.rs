//! Randomized integration tests over the full pipeline.
//!
//! These replace the original proptest properties (the build environment has
//! no crates.io access, see `vendor/README.md`): each test draws random
//! seeds/corruption levels from a seeded RNG and asserts the same invariants
//! over the same number of cases.

use dquag::core::{DquagConfig, DquagValidator};
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::gnn::ModelConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 4;

fn tiny_config(seed: u64) -> DquagConfig {
    DquagConfig {
        epochs: 5,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 8,
            n_layers: 2,
            ..ModelConfig::default()
        },
        seed,
        ..DquagConfig::default()
    }
}

#[test]
fn validation_reports_are_internally_consistent() {
    let mut meta_rng = StdRng::seed_from_u64(0xDA7A);
    for case in 0..CASES {
        let seed = meta_rng.gen_range(0u64..1000);
        let corruption = meta_rng.gen_range(0.0f64..0.4);

        let clean = DatasetKind::HotelBooking.generate_clean(400, seed);
        let mut batch = DatasetKind::HotelBooking.generate_clean(150, seed + 1);
        let mut rng = dquag::datagen::rng(seed + 2);
        let cols = DatasetKind::HotelBooking.default_ordinary_error_columns();
        inject_ordinary(
            &mut batch,
            OrdinaryError::NumericAnomalies,
            &cols,
            corruption,
            &mut rng,
        );

        let validator = DquagValidator::train(&clean, &[], &tiny_config(seed)).unwrap();
        let report = validator.validate(&batch).unwrap();

        // error list covers every instance and every error is finite and non-negative
        assert_eq!(report.instance_errors.len(), batch.n_rows(), "case {case}");
        assert!(report
            .instance_errors
            .iter()
            .all(|e| e.is_finite() && *e >= 0.0));
        // flagged instances are exactly those above the threshold
        for (i, &e) in report.instance_errors.iter().enumerate() {
            assert_eq!(
                report.is_flagged(i),
                e > report.threshold,
                "case {case} row {i}"
            );
        }
        // the error rate matches the flagged count
        let expected_rate = report.flagged_instances.len() as f64 / batch.n_rows() as f64;
        assert!((report.error_rate - expected_rate).abs() < 1e-9);
        // every flagged cell belongs to a flagged instance
        for cell in &report.cell_flags {
            assert!(report.is_flagged(cell.row));
            assert!(cell.column < batch.n_cols());
        }
        // the dataset verdict follows the documented rule
        let threshold = validator.config().dataset_error_rate_threshold();
        assert_eq!(report.dataset_is_dirty, report.error_rate > threshold);
    }
}

#[test]
fn repair_preserves_shape_and_untouched_cells() {
    let mut meta_rng = StdRng::seed_from_u64(0x4E9A12);
    for case in 0..CASES {
        let seed = meta_rng.gen_range(0u64..1000);
        let clean = DatasetKind::CreditCard.generate_clean(400, seed);
        let dirty = DatasetKind::CreditCard.generate_dirty(120, seed + 1);
        let validator = DquagValidator::train(&clean, &[&dirty], &tiny_config(seed)).unwrap();
        let report = validator.validate(&dirty).unwrap();
        let repaired = validator.repair(&dirty, &report).unwrap();

        assert_eq!(repaired.n_rows(), dirty.n_rows(), "case {case}");
        assert_eq!(repaired.schema(), dirty.schema());
        let flagged: std::collections::HashSet<(usize, usize)> = report
            .cell_flags
            .iter()
            .map(|c| (c.row, c.column))
            .collect();
        for row in 0..dirty.n_rows() {
            for col in 0..dirty.n_cols() {
                if !flagged.contains(&(row, col)) {
                    assert_eq!(
                        dirty.value(row, col).unwrap(),
                        repaired.value(row, col).unwrap(),
                        "case {case} cell ({row},{col})"
                    );
                }
            }
        }
        // repaired values are valid for their column types (push_row would have
        // rejected them otherwise; validate again to be sure nothing broke)
        let re_report = validator.validate(&repaired).unwrap();
        assert_eq!(re_report.n_instances(), repaired.n_rows());
    }
}
