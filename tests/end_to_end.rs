//! Cross-crate integration tests: the full DQuaG pipeline against the
//! generated evaluation datasets and the baseline validators.

use dquag::core::metrics::DetectionMetrics;
use dquag::core::{DquagConfig, DquagValidator};
use dquag::datagen::{
    inject_hidden, inject_ordinary, make_test_batches, BatchProtocol, DatasetKind, HiddenError,
    OrdinaryError,
};
use dquag::gnn::ModelConfig;
use dquag::validate::{build_validator, ValidationSession, ValidatorKind};

/// A small-but-real pipeline configuration used across these tests.
fn test_config() -> DquagConfig {
    DquagConfig {
        epochs: 20,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 16,
            n_layers: 2,
            ..ModelConfig::default()
        },
        validation_threads: 2,
        ..DquagConfig::default()
    }
}

#[test]
fn every_dataset_supports_train_validate_repair() {
    for kind in DatasetKind::ALL {
        let clean = kind.generate_clean(700, 11);
        let dirty = kind.generate_dirty(250, 12);
        let validator =
            DquagValidator::train(&clean, &[&dirty], &test_config()).expect("training succeeds");
        let report = validator.validate(&dirty).expect("same schema");
        assert_eq!(report.n_instances(), dirty.n_rows(), "{kind:?}");
        let repaired = validator.repair(&dirty, &report).expect("repair succeeds");
        assert_eq!(repaired.n_rows(), dirty.n_rows());
        assert_eq!(repaired.schema(), dirty.schema());
    }
}

#[test]
fn dquag_separates_clean_from_corrupted_batches_on_credit_card() {
    let kind = DatasetKind::CreditCard;
    let clean = kind.generate_clean(1_200, 21);
    let mut dirty = kind.generate_clean(1_200, 22);
    let mut rng = dquag::datagen::rng(23);
    let cols = kind.default_ordinary_error_columns();
    inject_ordinary(
        &mut dirty,
        OrdinaryError::NumericAnomalies,
        &cols,
        0.2,
        &mut rng,
    );
    inject_ordinary(
        &mut dirty,
        OrdinaryError::MissingValues,
        &cols,
        0.2,
        &mut rng,
    );
    inject_hidden(
        &mut dirty,
        HiddenError::CreditEmploymentBeforeBirth,
        0.2,
        &mut rng,
    );

    // At this corruption level the corrupted batches flag >60% of their
    // instances while clean batches hover around the 5% the threshold
    // percentile implies; a flag factor of 2 (10% cutoff) decides with a wide
    // margin on both sides instead of sitting inside the clean noise band.
    let config = DquagConfig {
        dataset_flag_factor: 2.0,
        ..test_config()
    };
    let validator = DquagValidator::train(&clean, &[], &config).expect("training");
    let protocol = BatchProtocol {
        n_clean: 6,
        n_dirty: 6,
        fraction: 0.25,
        max_rows: None,
    };
    let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
    let labels: Vec<bool> = batches.iter().map(|b| b.is_dirty).collect();
    let predictions: Vec<bool> = batches
        .iter()
        .map(|b| {
            validator
                .validate(&b.data)
                .expect("schema")
                .dataset_is_dirty
        })
        .collect();
    let metrics = DetectionMetrics::from_predictions(&predictions, &labels);
    assert!(
        metrics.recall() >= 0.99,
        "all corrupted batches must be flagged, recall = {}",
        metrics.recall()
    );
    assert!(
        metrics.accuracy() >= 0.75,
        "overall accuracy should be high, got {}",
        metrics.accuracy()
    );
}

#[test]
fn dquag_beats_expert_rules_on_hidden_conflicts() {
    // The Hotel Booking conflict (a `Group` booking with zero adults but
    // babies) keeps every individual value inside its clean per-column range,
    // so range/domain-based expert suites cannot see it — only a model of the
    // joint feature behaviour can.
    let kind = DatasetKind::HotelBooking;
    let clean = kind.generate_clean(2_000, 31);
    let mut conflicted = kind.generate_clean(800, 32);
    let mut rng = dquag::datagen::rng(33);
    inject_hidden(
        &mut conflicted,
        HiddenError::HotelGroupWithoutAdults,
        0.2,
        &mut rng,
    );

    // Expert-tuned Deequ and TFDV pass the conflicted batch…
    for kind in [ValidatorKind::DeequExpert, ValidatorKind::TfdvExpert] {
        let mut validator = build_validator(kind, &test_config());
        validator.fit(&clean).expect("baseline fitting succeeds");
        assert!(
            !validator
                .validate(&conflicted)
                .expect("same schema")
                .is_dirty,
            "{} is not expected to see the hidden conflict",
            kind.label()
        );
    }

    // …while DQuaG separates it clearly from clean data. A capacity closer to
    // the paper's is needed for this genuinely hidden dependency.
    let config = DquagConfig {
        epochs: 30,
        batch_size: 128,
        model: ModelConfig {
            hidden_dim: 24,
            n_layers: 4,
            ..ModelConfig::default()
        },
        validation_threads: 2,
        seed: 99,
        ..DquagConfig::default()
    };
    let dquag = DquagValidator::train(&clean, &[], &config).expect("training");
    let clean_probe = kind.generate_clean(800, 34);
    let clean_report = dquag.validate(&clean_probe).expect("schema");
    let conflict_report = dquag.validate(&conflicted).expect("schema");
    assert!(
        conflict_report.error_rate > clean_report.error_rate + 0.03,
        "DQuaG must separate the hidden conflict from clean data (conflict {} vs clean {})",
        conflict_report.error_rate,
        clean_report.error_rate
    );
    assert!(
        conflict_report.dataset_is_dirty,
        "DQuaG must flag the conflicted batch (error rate {})",
        conflict_report.error_rate
    );
    assert!(
        !clean_report.dataset_is_dirty,
        "the clean probe must pass (error rate {})",
        clean_report.error_rate
    );
}

#[test]
fn repair_moves_the_dirty_batch_towards_the_clean_distribution() {
    let kind = DatasetKind::Airbnb;
    let clean = kind.generate_clean(1_000, 41);
    let dirty = kind.generate_dirty(400, 42);
    let validator = DquagValidator::train(&clean, &[&dirty], &test_config()).expect("training");
    let (before, repaired, after) = validator.validate_and_repair(&dirty).expect("pipeline");
    assert!(after.error_rate <= before.error_rate);
    // repairs only changed flagged cells
    let flagged: std::collections::HashSet<(usize, usize)> = before
        .cell_flags
        .iter()
        .map(|c| (c.row, c.column))
        .collect();
    let mut changed = 0;
    for row in 0..dirty.n_rows() {
        for col in 0..dirty.n_cols() {
            if dirty.value(row, col).unwrap() != repaired.value(row, col).unwrap() {
                changed += 1;
                assert!(
                    flagged.contains(&(row, col)),
                    "cell ({row},{col}) changed without being flagged"
                );
            }
        }
    }
    assert!(changed <= flagged.len());
}

#[test]
fn all_validator_kinds_share_the_batch_protocol() {
    // All seven configurations run through the *same* loop — construction via
    // the registry, fit/validate via the unified trait, streaming via the
    // session — and produce defined metrics on the same labelled batches.
    let kind = DatasetKind::HotelBooking;
    let clean = kind.generate_clean(900, 51);
    let dirty = kind.generate_dirty(900, 52);
    let mut rng = dquag::datagen::rng(53);
    let protocol = BatchProtocol {
        n_clean: 3,
        n_dirty: 3,
        fraction: 0.2,
        max_rows: None,
    };
    let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
    let labels: Vec<bool> = batches.iter().map(|b| b.is_dirty).collect();
    let frames: Vec<_> = batches.iter().map(|b| b.data.clone()).collect();

    for validator_kind in ValidatorKind::ALL {
        let mut session =
            ValidationSession::train(validator_kind, &test_config(), &clean).expect("fit succeeds");
        let verdicts = session.push_batches(&frames).expect("same schema");
        let predictions: Vec<bool> = verdicts.iter().map(|v| v.is_dirty).collect();
        let metrics = DetectionMetrics::from_predictions(&predictions, &labels);
        assert!(
            metrics.accuracy() >= 0.0 && metrics.accuracy() <= 1.0,
            "{validator_kind:?}"
        );
        assert_eq!(session.n_batches(), batches.len());
        if validator_kind == ValidatorKind::Dquag {
            assert!(
                metrics.recall() > 0.5,
                "DQuaG should flag most dirty batches"
            );
        }
    }
}

#[test]
fn csv_round_trip_feeds_the_pipeline() {
    // Exported CSV files can be re-ingested and validated — the deployment
    // path for data arriving from other systems.
    let kind = DatasetKind::PlayStore;
    let clean = kind.generate_clean(600, 61);
    let dirty = kind.generate_dirty(200, 62);
    let csv = dquag::tabular::csv::to_csv_string(&dirty);
    let reloaded = dquag::tabular::csv::from_csv_str(&csv, clean.schema()).expect("CSV parses");
    assert_eq!(reloaded.n_rows(), dirty.n_rows());

    let validator = DquagValidator::train(&clean, &[&reloaded], &test_config()).expect("training");
    let report = validator.validate(&reloaded).expect("schema");
    assert_eq!(report.n_instances(), reloaded.n_rows());
}
