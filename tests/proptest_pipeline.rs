//! Property-based integration tests over the full pipeline.

use dquag::core::{DquagConfig, DquagValidator};
use dquag::datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag::gnn::ModelConfig;
use proptest::prelude::*;

fn tiny_config(seed: u64) -> DquagConfig {
    DquagConfig {
        epochs: 5,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 8,
            n_layers: 2,
            ..ModelConfig::default()
        },
        seed,
        ..DquagConfig::default()
    }
}

proptest! {
    // Training a GNN inside a property test is expensive; keep the case count
    // low — the point is robustness over seeds and corruption patterns, not
    // statistical power.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn validation_reports_are_internally_consistent(
        seed in 0u64..1000,
        corruption in 0.0f64..0.4,
    ) {
        let clean = DatasetKind::HotelBooking.generate_clean(400, seed);
        let mut batch = DatasetKind::HotelBooking.generate_clean(150, seed + 1);
        let mut rng = dquag::datagen::rng(seed + 2);
        let cols = DatasetKind::HotelBooking.default_ordinary_error_columns();
        inject_ordinary(&mut batch, OrdinaryError::NumericAnomalies, &cols, corruption, &mut rng);

        let validator = DquagValidator::train(&clean, &[], &tiny_config(seed)).unwrap();
        let report = validator.validate(&batch).unwrap();

        // error list covers every instance and every error is finite and non-negative
        prop_assert_eq!(report.instance_errors.len(), batch.n_rows());
        prop_assert!(report.instance_errors.iter().all(|e| e.is_finite() && *e >= 0.0));
        // flagged instances are exactly those above the threshold
        for (i, &e) in report.instance_errors.iter().enumerate() {
            prop_assert_eq!(report.is_flagged(i), e > report.threshold);
        }
        // the error rate matches the flagged count
        let expected_rate = report.flagged_instances.len() as f64 / batch.n_rows() as f64;
        prop_assert!((report.error_rate - expected_rate).abs() < 1e-9);
        // every flagged cell belongs to a flagged instance
        for cell in &report.cell_flags {
            prop_assert!(report.is_flagged(cell.row));
            prop_assert!(cell.column < batch.n_cols());
        }
        // the dataset verdict follows the documented rule
        let threshold = validator.config().dataset_error_rate_threshold();
        prop_assert_eq!(report.dataset_is_dirty, report.error_rate > threshold);
    }

    #[test]
    fn repair_preserves_shape_and_untouched_cells(seed in 0u64..1000) {
        let clean = DatasetKind::CreditCard.generate_clean(400, seed);
        let dirty = DatasetKind::CreditCard.generate_dirty(120, seed + 1);
        let validator = DquagValidator::train(&clean, &[&dirty], &tiny_config(seed)).unwrap();
        let report = validator.validate(&dirty).unwrap();
        let repaired = validator.repair(&dirty, &report).unwrap();

        prop_assert_eq!(repaired.n_rows(), dirty.n_rows());
        prop_assert_eq!(repaired.schema(), dirty.schema());
        let flagged: std::collections::HashSet<(usize, usize)> =
            report.cell_flags.iter().map(|c| (c.row, c.column)).collect();
        for row in 0..dirty.n_rows() {
            for col in 0..dirty.n_cols() {
                if !flagged.contains(&(row, col)) {
                    prop_assert_eq!(
                        dirty.value(row, col).unwrap(),
                        repaired.value(row, col).unwrap()
                    );
                }
            }
        }
        // repaired values are valid for their column types (push_row would have
        // rejected them otherwise; validate again to be sure nothing broke)
        let re_report = validator.validate(&repaired).unwrap();
        prop_assert_eq!(re_report.n_instances(), repaired.n_rows());
    }
}
