//! Parameter initialisation schemes.
//!
//! The GNN layers use Xavier/Glorot initialisation for linear and attention
//! weights (matching the PyTorch Geometric defaults the paper relies on) and
//! He initialisation for ReLU MLPs inside GIN layers.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random number source for parameter initialisation.
///
/// Wrapping [`StdRng`] behind a named type keeps the seeding policy in one
/// place: every experiment harness seeds explicitly so that results are
/// reproducible run-to-run.
pub struct InitRng {
    rng: StdRng,
}

impl InitRng {
    /// Create an initialiser seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sample from a uniform distribution over `[low, high)`.
    pub fn uniform(&mut self, low: f32, high: f32) -> f32 {
        if (high - low).abs() < f32::EPSILON {
            low
        } else {
            self.rng.gen_range(low..high)
        }
    }

    /// Sample from an approximately standard normal distribution
    /// (Irwin–Hall sum of 12 uniforms, exact enough for initialisation).
    pub fn standard_normal(&mut self) -> f32 {
        let sum: f32 = (0..12).map(|_| self.rng.gen::<f32>()).sum();
        sum - 6.0
    }
}

/// Xavier/Glorot uniform initialisation for a `fan_in × fan_out` weight matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut InitRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.uniform(-limit, limit))
}

/// He (Kaiming) normal initialisation for ReLU networks.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut InitRng) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.standard_normal() * std)
}

/// Uniform initialisation over `[-limit, limit]`, used for attention vectors.
pub fn uniform_symmetric(rows: usize, cols: usize, limit: f32, rng: &mut InitRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-limit, limit))
}

/// Zero initialisation, used for biases.
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit_and_shape() {
        let mut rng = InitRng::seeded(7);
        let w = xavier_uniform(30, 50, &mut rng);
        assert_eq!(w.shape(), (30, 50));
        let limit = (6.0f32 / 80.0).sqrt();
        assert!(w.max().unwrap() <= limit + 1e-6);
        assert!(w.min().unwrap() >= -limit - 1e-6);
        // not all identical
        assert!(w.max().unwrap() > w.min().unwrap());
    }

    #[test]
    fn he_normal_has_reasonable_spread() {
        let mut rng = InitRng::seeded(11);
        let w = he_normal(64, 64, &mut rng);
        let mean = w.mean();
        assert!(
            mean.abs() < 0.05,
            "mean should be close to zero, got {mean}"
        );
        let var: f32 =
            w.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / w.len() as f32;
        let expected = 2.0 / 64.0;
        assert!(
            (var - expected).abs() < expected,
            "variance {var} should be in the ballpark of {expected}"
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = InitRng::seeded(42);
        let mut b = InitRng::seeded(42);
        let wa = xavier_uniform(4, 4, &mut a);
        let wb = xavier_uniform(4, 4, &mut b);
        assert_eq!(wa, wb);
        let mut c = InitRng::seeded(43);
        let wc = xavier_uniform(4, 4, &mut c);
        assert!(wa.max_abs_diff(&wc) > 0.0);
    }

    #[test]
    fn uniform_symmetric_and_zeros() {
        let mut rng = InitRng::seeded(1);
        let u = uniform_symmetric(2, 8, 0.1, &mut rng);
        assert!(u.max().unwrap() <= 0.1);
        assert!(u.min().unwrap() >= -0.1);
        assert_eq!(zeros(3, 2), Matrix::zeros(3, 2));
    }

    #[test]
    fn standard_normal_is_roughly_centered() {
        let mut rng = InitRng::seeded(5);
        let samples: Vec<f32> = (0..2000).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.1);
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / samples.len() as f32;
        assert!((var - 1.0).abs() < 0.2);
    }
}
