//! # dquag-tensor
//!
//! A small, dependency-light dense-matrix tensor library with reverse-mode
//! automatic differentiation, written for the DQuaG reproduction (EDBT 2025,
//! "Automated Data Quality Validation in an End-to-End GNN Framework").
//!
//! The paper's reference implementation is built on PyTorch. No mature Rust
//! deep-learning stack ships graph-neural-network layers, so this crate
//! provides the minimal substrate the GNN crate needs:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the usual linear-algebra
//!   and element-wise operations.
//! * [`Tape`] / [`Var`] — a define-by-run reverse-mode autodiff tape. Every
//!   differentiable operation appends a node; [`Tape::backward`] walks the
//!   nodes in reverse and accumulates gradients.
//! * [`optim`] — Adam and SGD optimizers operating on raw parameter matrices.
//! * [`init`] — Xavier/Glorot and He initialisation used by the GNN layers.
//!
//! The design intentionally supports only rank-2 tensors: DQuaG's feature
//! graphs have tens of nodes, so every forward pass works on small `n × h`
//! matrices and batches are handled by iterating samples.
//!
//! ## Example
//!
//! ```
//! use dquag_tensor::{Matrix, Tape};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(vec![vec![1.0, 2.0]]), true);
//! let w = tape.leaf(Matrix::from_rows(vec![vec![3.0], vec![4.0]]), true);
//! let y = x.matmul(&w);          // 1x1 == [[11.0]]
//! let loss = y.square().mean();  // 121.0
//! tape.backward(&loss);
//! let gx = x.grad().unwrap();
//! assert!((gx.get(0, 0) - 2.0 * 11.0 * 3.0).abs() < 1e-4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod matrix;
mod simd;
mod tape;

pub mod init;
pub mod optim;
pub mod persist;

pub use error::TensorError;
pub use matrix::Matrix;
pub use persist::{matrix_checksum, params_checksum};
pub use simd::{
    finite_guard_enabled, kernel_mode, set_finite_guard, set_kernel_mode, take_finite_guard_trip,
    GuardTrip, KernelMode,
};
pub use tape::{Tape, Var};

/// Tune the process allocator for sustained tensor inference.
///
/// A batched forward pass allocates and frees a few dozen megabyte-scale
/// activation matrices per batch. With glibc's default trim threshold
/// (128 KiB) the freed top-of-heap goes back to the kernel after every
/// batch, so the next batch page-faults its whole working set in again —
/// measured at more than half the batch wall time. This raises the trim
/// threshold to 32 MiB and the mmap threshold to 64 MiB, once, so
/// activation buffers (a few MiB per batch) are recycled in the arena while
/// genuinely large frees — a training spike, a host application's buffers —
/// are still returned to the kernel.
///
/// Idempotent and cheap; called automatically when an inference session is
/// opened. The effect is process-wide and bounded: at most ~32 MiB of freed
/// top-of-heap is retained. Hosts embedding this crate that need glibc's
/// default trimming behaviour can set `DQUAG_NO_MALLOC_TUNING=1` before
/// startup to disable it. No-op on platforms without glibc `mallopt`.
pub fn tune_allocator_for_inference() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        use std::sync::Once;
        static TUNE: Once = Once::new();
        TUNE.call_once(|| {
            if std::env::var_os("DQUAG_NO_MALLOC_TUNING").is_some_and(|v| v != "0") {
                return;
            }
            extern "C" {
                fn mallopt(param: core::ffi::c_int, value: core::ffi::c_int) -> core::ffi::c_int;
            }
            const M_TRIM_THRESHOLD: core::ffi::c_int = -1;
            const M_MMAP_THRESHOLD: core::ffi::c_int = -3;
            // SAFETY: glibc mallopt is thread-safe and these parameters only
            // adjust allocator heuristics.
            unsafe {
                mallopt(M_TRIM_THRESHOLD, 32 * 1024 * 1024);
                mallopt(M_MMAP_THRESHOLD, 64 * 1024 * 1024);
            }
        });
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Numerical tolerance used by gradient checks in tests.
pub const GRAD_CHECK_TOL: f32 = 2e-2;

/// Compare an analytic gradient against a central finite-difference estimate.
///
/// `f` must be a pure function of the parameter matrix that returns a scalar
/// loss. Used extensively by the unit and property tests of this crate and of
/// `dquag-gnn` to validate backward implementations.
pub fn finite_difference_grad<F>(param: &Matrix, mut f: F, eps: f32) -> Matrix
where
    F: FnMut(&Matrix) -> f32,
{
    let mut grad = Matrix::zeros(param.rows(), param.cols());
    for r in 0..param.rows() {
        for c in 0..param.cols() {
            let mut plus = param.clone();
            let mut minus = param.clone();
            plus.set(r, c, param.get(r, c) + eps);
            minus.set(r, c, param.get(r, c) - eps);
            let fp = f(&plus);
            let fm = f(&minus);
            grad.set(r, c, (fp - fm) / (2.0 * eps));
        }
    }
    grad
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn doc_example_runs() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(vec![vec![1.0, 2.0]]), true);
        let w = tape.leaf(Matrix::from_rows(vec![vec![3.0], vec![4.0]]), true);
        let y = x.matmul(&w);
        let loss = y.square().mean();
        tape.backward(&loss);
        let gx = x.grad().unwrap();
        assert!((gx.get(0, 0) - 66.0).abs() < 1e-3);
        assert!((gx.get(0, 1) - 88.0).abs() < 1e-3);
    }

    #[test]
    fn finite_difference_matches_simple_quadratic() {
        let p = Matrix::from_rows(vec![vec![2.0, -1.0]]);
        let g = finite_difference_grad(&p, |m| m.get(0, 0).powi(2) + 3.0 * m.get(0, 1), 1e-3);
        assert!((g.get(0, 0) - 4.0).abs() < 1e-2);
        assert!((g.get(0, 1) - 3.0).abs() < 1e-2);
    }
}
