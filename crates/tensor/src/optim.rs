//! Optimizers: Adam (used by the paper) and plain SGD (for tests/ablations).
//!
//! The optimizers operate on raw parameter matrices paired with externally
//! computed gradients. The GNN crate owns the parameters; after each backward
//! pass it collects `(param, grad)` pairs and hands them to the optimizer in
//! a stable order (state is keyed by position, so the caller must always pass
//! parameters in the same order — the `ParamSet` abstraction in `dquag-gnn`
//! guarantees this).

use crate::Matrix;

/// Configuration shared by the optimizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Learning rate. The paper uses `0.01`.
    pub learning_rate: f32,
    /// Adam β₁.
    pub beta1: f32,
    /// Adam β₂.
    pub beta2: f32,
    /// Adam ε.
    pub epsilon: f32,
    /// L2 weight decay (0 disables it).
    pub weight_decay: f32,
    /// Gradient-norm clipping threshold (0 disables clipping).
    pub grad_clip: f32,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            grad_clip: 5.0,
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with optional weight decay and gradient
/// clipping. State (first/second moments) is allocated lazily on the first
/// step and keyed by parameter position.
#[derive(Debug, Clone)]
pub struct Adam {
    config: OptimizerConfig,
    first_moments: Vec<Matrix>,
    second_moments: Vec<Matrix>,
    step_count: u64,
}

impl Adam {
    /// Create an Adam optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Self {
            config,
            first_moments: Vec::new(),
            second_moments: Vec::new(),
            step_count: 0,
        }
    }

    /// Create an Adam optimizer with the paper's defaults (lr = 0.01).
    pub fn with_learning_rate(learning_rate: f32) -> Self {
        Self::new(OptimizerConfig {
            learning_rate,
            ..OptimizerConfig::default()
        })
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Apply one Adam update.
    ///
    /// `params` and `grads` must have the same length and ordering on every
    /// call; entries with a `None` gradient are skipped (e.g. parameters not
    /// reached by the current loss).
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[Option<Matrix>]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "Adam::step: params and grads length mismatch"
        );
        self.ensure_state(params);
        self.step_count += 1;
        let t = self.step_count as f32;
        let cfg = self.config;
        let bias1 = 1.0 - cfg.beta1.powf(t);
        let bias2 = 1.0 - cfg.beta2.powf(t);

        for (i, (param, grad)) in params.iter_mut().zip(grads.iter()).enumerate() {
            let Some(grad) = grad else { continue };
            debug_assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
            let grad = preprocess_grad(param, grad, &cfg);
            let m = &mut self.first_moments[i];
            let v = &mut self.second_moments[i];
            for j in 0..grad.len() {
                let g = grad.as_slice()[j];
                let mj = cfg.beta1 * m.as_slice()[j] + (1.0 - cfg.beta1) * g;
                let vj = cfg.beta2 * v.as_slice()[j] + (1.0 - cfg.beta2) * g * g;
                m.as_mut_slice()[j] = mj;
                v.as_mut_slice()[j] = vj;
                let m_hat = mj / bias1;
                let v_hat = vj / bias2;
                param.as_mut_slice()[j] -= cfg.learning_rate * m_hat / (v_hat.sqrt() + cfg.epsilon);
            }
        }
    }

    fn ensure_state(&mut self, params: &[&mut Matrix]) {
        if self.first_moments.len() != params.len() {
            self.first_moments = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.second_moments = self.first_moments.clone();
        }
    }
}

/// Plain stochastic gradient descent, used as an ablation and in tests where
/// convergence behaviour must be easy to reason about.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: OptimizerConfig,
}

impl Sgd {
    /// Create an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Self {
            config: OptimizerConfig {
                learning_rate,
                ..OptimizerConfig::default()
            },
        }
    }

    /// Apply one SGD update; see [`Adam::step`] for the calling convention.
    pub fn step(&mut self, params: &mut [&mut Matrix], grads: &[Option<Matrix>]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "Sgd::step: params and grads length mismatch"
        );
        for (param, grad) in params.iter_mut().zip(grads.iter()) {
            let Some(grad) = grad else { continue };
            let grad = preprocess_grad(param, grad, &self.config);
            for j in 0..grad.len() {
                param.as_mut_slice()[j] -= self.config.learning_rate * grad.as_slice()[j];
            }
        }
    }
}

/// Apply weight decay and gradient clipping before the main update rule.
fn preprocess_grad(param: &Matrix, grad: &Matrix, cfg: &OptimizerConfig) -> Matrix {
    let mut g = grad.clone();
    if cfg.weight_decay > 0.0 {
        for j in 0..g.len() {
            g.as_mut_slice()[j] += cfg.weight_decay * param.as_slice()[j];
        }
    }
    if cfg.grad_clip > 0.0 {
        let norm = g.frobenius_norm();
        if norm > cfg.grad_clip {
            let scale = cfg.grad_clip / norm;
            g.map_inplace(|v| v * scale);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimise f(w) = mean((x·w − y)²) — a tiny linear regression — and check
    /// the optimizer actually converges to the analytic solution.
    fn converge(mut do_step: impl FnMut(&mut Matrix, Option<Matrix>)) -> Matrix {
        let x = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let y = Matrix::from_rows(vec![vec![2.0], vec![-3.0], vec![-1.0]]);
        let mut w = Matrix::zeros(2, 1);
        for _ in 0..400 {
            let tape = Tape::new();
            let wv = tape.leaf(w.clone(), true);
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let loss = xv.matmul(&wv).mse(&yv);
            tape.backward(&loss);
            do_step(&mut w, wv.grad());
        }
        w
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut adam = Adam::with_learning_rate(0.05);
        let w = converge(|w, g| adam.step(&mut [w], &[g]));
        assert!((w.get(0, 0) - 2.0).abs() < 0.05, "w0 = {}", w.get(0, 0));
        assert!((w.get(1, 0) + 3.0).abs() < 0.05, "w1 = {}", w.get(1, 0));
        assert!(adam.steps() > 0);
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut sgd = Sgd::new(0.2);
        let w = converge(|w, g| sgd.step(&mut [w], &[g]));
        assert!((w.get(0, 0) - 2.0).abs() < 0.1);
        assert!((w.get(1, 0) + 3.0).abs() < 0.1);
    }

    #[test]
    fn skips_parameters_without_gradient() {
        let mut adam = Adam::with_learning_rate(0.1);
        let mut p = Matrix::filled(2, 2, 1.0);
        let before = p.clone();
        adam.step(&mut [&mut p], &[None]);
        assert_eq!(p, before);
    }

    #[test]
    fn gradient_clipping_bounds_update() {
        let cfg = OptimizerConfig {
            learning_rate: 1.0,
            grad_clip: 1.0,
            ..OptimizerConfig::default()
        };
        let huge = Matrix::filled(4, 4, 1e6);
        let clipped = preprocess_grad(&Matrix::zeros(4, 4), &huge, &cfg);
        assert!((clipped.frobenius_norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let cfg = OptimizerConfig {
            weight_decay: 0.1,
            grad_clip: 0.0,
            ..OptimizerConfig::default()
        };
        let g = preprocess_grad(&Matrix::filled(1, 1, 2.0), &Matrix::zeros(1, 1), &cfg);
        assert!((g.get(0, 0) - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = Adam::with_learning_rate(0.1);
        let mut p = Matrix::zeros(1, 1);
        adam.step(&mut [&mut p], &[]);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = OptimizerConfig::default();
        assert!((cfg.learning_rate - 0.01).abs() < 1e-9);
        assert!((cfg.beta1 - 0.9).abs() < 1e-9);
    }
}
