//! Error type for tensor operations.

use std::fmt;

/// Errors produced by matrix and autograd operations.
///
/// Shape mismatches are programming errors in the calling layer code, but the
/// library reports them as typed errors (rather than panicking) wherever the
/// operation is fallible by design, so that higher layers can surface a
/// readable diagnostic that names the offending operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Requested row.
        row: usize,
        /// Requested column.
        col: usize,
        /// Matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A matrix constructor received data whose length does not match the
    /// requested shape.
    InvalidConstruction {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An operation that requires a non-empty matrix received an empty one.
    EmptyMatrix,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in `{op}`: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            TensorError::InvalidConstruction { expected, actual } => write!(
                f,
                "invalid construction: expected {expected} elements, got {actual}"
            ),
            TensorError::EmptyMatrix => write!(f, "operation requires a non-empty matrix"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds {
            row: 9,
            col: 1,
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(9, 1)"));
    }

    #[test]
    fn display_invalid_construction() {
        let e = TensorError::InvalidConstruction {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains("expected 6"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::EmptyMatrix);
        assert!(e.to_string().contains("non-empty"));
    }
}
