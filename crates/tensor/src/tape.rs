//! Reverse-mode automatic differentiation on dense matrices.
//!
//! The tape follows the classic define-by-run design: every differentiable
//! operation appends a [`Node`] holding its output value, the indices of its
//! parents and an [`Op`] tag. [`Tape::backward`] seeds the output gradient
//! and walks the nodes in reverse creation order, accumulating parent
//! gradients according to each op's local derivative.
//!
//! A fresh tape is created for every training forward pass (one per
//! mini-batch step), which keeps lifetimes trivial and memory bounded.
//!
//! For inference there is a second mode: a tape created with
//! [`Tape::no_grad`] records every operation result as a plain constant leaf
//! — no op tag, no parent indices, no gradient slot — so the backward graph
//! is never materialised. Combined with [`Tape::truncate`], a long-lived
//! inference tape can bind model parameters once and be rewound to that
//! baseline after every batch, instead of re-binding (and re-cloning) the
//! parameters per sample.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::rc::Rc;

/// Operation tag recorded for every tape node.
///
/// Parent nodes are referenced by index into the tape. Constants required by
/// the backward pass (scalars, slice bounds) are stored inline.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (parameter or input); has no parents.
    Leaf,
    /// `C = A · B`
    MatMul(usize, usize),
    /// `C = A + B` (same shape)
    Add(usize, usize),
    /// `C = A - B` (same shape)
    Sub(usize, usize),
    /// `C = A ∘ B` element-wise
    Mul(usize, usize),
    /// `C = A + row` where `row` is `1 × cols`, broadcast over rows
    AddRowBroadcast(usize, usize),
    /// `C = A * s` where `s` is a `1 × 1` tape node, broadcast to every element
    MulScalarBroadcast(usize, usize),
    /// `C = A + s` where `s` is a `1 × 1` tape node, broadcast to every element
    AddScalarBroadcast(usize, usize),
    /// `C = k · A` for a constant scalar `k`
    Scale(usize, f32),
    /// `C = -A`
    Neg(usize),
    /// `C = max(A, 0)`
    Relu(usize),
    /// `C = A if A > 0 else slope · A`
    LeakyRelu(usize, f32),
    /// `C = σ(A)`
    Sigmoid(usize),
    /// `C = tanh(A)`
    Tanh(usize),
    /// `C = exp(A)`
    Exp(usize),
    /// `C = A²` element-wise
    Square(usize),
    /// Row-wise softmax
    SoftmaxRows(usize),
    /// Scalar sum of all elements (`1 × 1` output)
    Sum(usize),
    /// Scalar mean of all elements (`1 × 1` output)
    Mean(usize),
    /// Per-row sums (`rows × 1` output)
    SumRowsKeep(usize),
    /// Transpose
    Transpose(usize),
    /// Horizontal concatenation `[A | B]`
    ConcatCols(usize, usize),
    /// Vertical concatenation
    ConcatRows(usize, usize),
    /// Column slice `A[:, start..end]`
    SliceCols(usize, usize, usize),
    /// Row slice `A[start..end, :]`
    SliceRows(usize, usize, usize),
    /// Per-block product over `B` stacked blocks: `C_b = A_b · B_b`
    BlockMatMul(usize, usize, usize),
    /// Per-block product with fused activation: `C_b = relu(A_b · B_b)`
    BlockMatMulRelu(usize, usize, usize),
    /// One operator applied to every block: `C_b = A · B_b`
    RepeatMatMul(usize, usize),
    /// Block-wise transposed broadcast of a stacked column vector
    BlockRowBroadcast(usize, usize),
    /// `C = A + tile(M)`: one `n × c` matrix added to every `n`-row block
    BlockAddBroadcast(usize, usize),
    /// Fused dense layer `C = A · W + row(bias)`
    MatMulBias(usize, usize, usize),
    /// Fused dense layer with activation `C = relu(A · W + row(bias))`
    MatMulBiasRelu(usize, usize, usize),
    /// Fused batched GAT logits: `leaky(src_i + dst_j) + mask` per block
    AttentionLogits(usize, usize, usize, f32, usize),
    /// Fused `C = A + s · B` for a `1 × 1` scalar node `s`
    ScaledAdd(usize, usize, usize),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    requires_grad: bool,
    op: Op,
}

#[derive(Debug)]
struct TapeInner {
    nodes: Vec<Node>,
    grad_enabled: bool,
}

impl Default for TapeInner {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            grad_enabled: true,
        }
    }
}

/// A reverse-mode autodiff tape.
///
/// Cheap to clone (reference-counted); all [`Var`]s created from a tape share
/// its node storage. The tape is single-threaded by design — each worker
/// thread owns its own tape and model replica.
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

/// A handle to a node on a [`Tape`].
///
/// `Var` is `Clone` and lightweight. Arithmetic methods record new nodes on
/// the shared tape and return new handles.
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    idx: usize,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (rows, cols) = self.shape();
        write!(f, "Var(node {}, {}x{})", self.idx, rows, cols)
    }
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.len())
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty inference tape: every operation still evaluates its
    /// value, but the result is recorded as a plain constant leaf — no op
    /// tag, no parent links, no gradient slot. [`Tape::backward`] is
    /// unavailable; [`Tape::n_backward_nodes`] stays zero.
    pub fn no_grad() -> Self {
        let tape = Self::default();
        tape.inner.borrow_mut().grad_enabled = false;
        tape
    }

    /// True when this tape records the backward graph (the default); false
    /// for tapes created with [`Tape::no_grad`].
    pub fn is_grad_enabled(&self) -> bool {
        self.inner.borrow().grad_enabled
    }

    /// Number of nodes carrying backward information (a non-leaf op). Always
    /// zero on a [`Tape::no_grad`] tape.
    pub fn n_backward_nodes(&self) -> usize {
        self.inner
            .borrow()
            .nodes
            .iter()
            .filter(|node| !matches!(node.op, Op::Leaf))
            .count()
    }

    /// Drop every node recorded after the first `len` — the tape-reuse
    /// primitive: bind parameters once, note [`Tape::len`], run a forward
    /// pass, read the outputs, truncate back.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current node count. `Var`s pointing past
    /// the truncation point are invalidated; reading them panics on the
    /// out-of-bounds node index.
    pub fn truncate(&self, len: usize) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            len <= inner.nodes.len(),
            "Tape::truncate({len}) beyond the current {} nodes",
            inner.nodes.len()
        );
        inner.nodes.truncate(len);
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True if no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a leaf node holding `value`.
    ///
    /// If `requires_grad` is true its gradient is accumulated during
    /// [`Tape::backward`] and available through [`Var::grad`].
    pub fn leaf(&self, value: Matrix, requires_grad: bool) -> Var {
        self.push(value, requires_grad, Op::Leaf)
    }

    /// Record a constant leaf (no gradient tracking).
    pub fn constant(&self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    fn push(&self, value: Matrix, requires_grad: bool, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        let (requires_grad, op) = if inner.grad_enabled {
            (requires_grad, op)
        } else {
            // Inference mode: keep the value (downstream ops read it) but
            // drop the backward metadata.
            (false, Op::Leaf)
        };
        inner.nodes.push(Node {
            value,
            grad: None,
            requires_grad,
            op,
        });
        Var {
            tape: self.clone(),
            idx: inner.nodes.len() - 1,
        }
    }

    fn value_of(&self, idx: usize) -> Matrix {
        self.inner.borrow().nodes[idx].value.clone()
    }

    fn shape_of(&self, idx: usize) -> (usize, usize) {
        self.inner.borrow().nodes[idx].value.shape()
    }

    fn requires_grad(&self, idx: usize) -> bool {
        self.inner.borrow().nodes[idx].requires_grad
    }

    /// Run the backward pass from `output`, which must be a `1 × 1` scalar
    /// node (a loss). Gradients of all `requires_grad` nodes are accumulated
    /// and can be read with [`Var::grad`].
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a scalar node, belongs to another tape, or
    /// the tape was created with [`Tape::no_grad`].
    pub fn backward(&self, output: &Var) {
        assert!(
            Rc::ptr_eq(&self.inner, &output.tape.inner),
            "backward called with a Var from a different tape"
        );
        assert!(
            self.is_grad_enabled(),
            "backward called on a no-grad (inference) tape"
        );
        let out_shape = self.shape_of(output.idx);
        assert_eq!(
            out_shape,
            (1, 1),
            "backward expects a scalar (1x1) loss node, got {}x{}",
            out_shape.0,
            out_shape.1
        );

        let mut inner = self.inner.borrow_mut();
        let n = inner.nodes.len();
        // Reset any gradients from a previous backward call on the same tape.
        for node in inner.nodes.iter_mut() {
            node.grad = None;
        }
        inner.nodes[output.idx].grad = Some(Matrix::ones(1, 1));

        for idx in (0..=output.idx.min(n - 1)).rev() {
            let grad_out = match inner.nodes[idx].grad.clone() {
                Some(g) => g,
                None => continue,
            };
            let op = inner.nodes[idx].op.clone();
            let value = inner.nodes[idx].value.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let a_val = inner.nodes[a].value.clone();
                    let b_val = inner.nodes[b].value.clone();
                    let da = grad_out
                        .matmul(&b_val.transpose())
                        .expect("matmul backward: dA shape");
                    let db = a_val
                        .transpose()
                        .matmul(&grad_out)
                        .expect("matmul backward: dB shape");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, b, grad_out);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, b, grad_out.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let a_val = inner.nodes[a].value.clone();
                    let b_val = inner.nodes[b].value.clone();
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&b_val).expect("mul backward dA"),
                    );
                    accumulate(
                        &mut inner.nodes,
                        b,
                        grad_out.hadamard(&a_val).expect("mul backward dB"),
                    );
                }
                Op::AddRowBroadcast(a, row) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, row, grad_out.sum_cols());
                }
                Op::MulScalarBroadcast(a, s) => {
                    let a_val = inner.nodes[a].value.clone();
                    let s_val = inner.nodes[s].value.get(0, 0);
                    accumulate(&mut inner.nodes, a, grad_out.scale(s_val));
                    let ds = grad_out
                        .hadamard(&a_val)
                        .expect("scalar mul backward")
                        .sum();
                    accumulate(&mut inner.nodes, s, Matrix::filled(1, 1, ds));
                }
                Op::AddScalarBroadcast(a, s) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, s, Matrix::filled(1, 1, grad_out.sum()));
                }
                Op::Scale(a, k) => {
                    accumulate(&mut inner.nodes, a, grad_out.scale(k));
                }
                Op::Neg(a) => {
                    accumulate(&mut inner.nodes, a, grad_out.scale(-1.0));
                }
                Op::Relu(a) => {
                    let a_val = inner.nodes[a].value.clone();
                    let mask = a_val.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&mask).expect("relu backward"),
                    );
                }
                Op::LeakyRelu(a, slope) => {
                    let a_val = inner.nodes[a].value.clone();
                    let mask = a_val.map(|v| if v > 0.0 { 1.0 } else { slope });
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&mask).expect("leaky relu backward"),
                    );
                }
                Op::Sigmoid(a) => {
                    // value already holds σ(A)
                    let ds = value.map(|s| s * (1.0 - s));
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&ds).expect("sigmoid backward"),
                    );
                }
                Op::Tanh(a) => {
                    let dt = value.map(|t| 1.0 - t * t);
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&dt).expect("tanh backward"),
                    );
                }
                Op::Exp(a) => {
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&value).expect("exp backward"),
                    );
                }
                Op::Square(a) => {
                    let a_val = inner.nodes[a].value.clone();
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out
                            .hadamard(&a_val.scale(2.0))
                            .expect("square backward"),
                    );
                }
                Op::SoftmaxRows(a) => {
                    // dA_i = s_i * (dC_i - Σ_j dC_j s_j) per row
                    let s = &value;
                    let mut da = Matrix::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let dot: f32 = (0..s.cols())
                            .map(|c| grad_out.get(r, c) * s.get(r, c))
                            .sum();
                        for c in 0..s.cols() {
                            da.set(r, c, s.get(r, c) * (grad_out.get(r, c) - dot));
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::Sum(a) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    accumulate(
                        &mut inner.nodes,
                        a,
                        Matrix::filled(r, c, grad_out.get(0, 0)),
                    );
                }
                Op::Mean(a) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let n_elems = (r * c).max(1) as f32;
                    accumulate(
                        &mut inner.nodes,
                        a,
                        Matrix::filled(r, c, grad_out.get(0, 0) / n_elems),
                    );
                }
                Op::SumRowsKeep(a) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let mut da = Matrix::zeros(r, c);
                    for i in 0..r {
                        let g = grad_out.get(i, 0);
                        for j in 0..c {
                            da.set(i, j, g);
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::Transpose(a) => {
                    accumulate(&mut inner.nodes, a, grad_out.transpose());
                }
                Op::ConcatCols(a, b) => {
                    let a_cols = inner.nodes[a].value.cols();
                    let total = grad_out.cols();
                    let da = grad_out
                        .slice_cols(0, a_cols)
                        .expect("concat_cols backward");
                    let db = grad_out
                        .slice_cols(a_cols, total)
                        .expect("concat_cols backward");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::ConcatRows(a, b) => {
                    let a_rows = inner.nodes[a].value.rows();
                    let total = grad_out.rows();
                    let da = grad_out
                        .slice_rows(0, a_rows)
                        .expect("concat_rows backward");
                    let db = grad_out
                        .slice_rows(a_rows, total)
                        .expect("concat_rows backward");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::SliceCols(a, start, end) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let mut da = Matrix::zeros(r, c);
                    for i in 0..r {
                        for (offset, j) in (start..end).enumerate() {
                            da.set(i, j, grad_out.get(i, offset));
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::SliceRows(a, start, end) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let mut da = Matrix::zeros(r, c);
                    for (offset, i) in (start..end).enumerate() {
                        for j in 0..c {
                            da.set(i, j, grad_out.get(offset, j));
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::BlockMatMulRelu(a, b, blocks) => {
                    // Gate by the rectifier (value holds the post-relu
                    // output), then per-block matmul backward.
                    let mask = value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    let gated = grad_out.hadamard(&mask).expect("relu gate shape");
                    block_matmul_backward(&mut inner.nodes, a, b, blocks, &gated);
                }
                Op::BlockMatMul(a, b, blocks) => {
                    block_matmul_backward(&mut inner.nodes, a, b, blocks, &grad_out);
                }
                Op::RepeatMatMul(a, b) => {
                    // dA = Σ_b dC_b · B_bᵀ, dB_b = Aᵀ · dC_b.
                    let a_val = inner.nodes[a].value.clone();
                    let b_val = inner.nodes[b].value.clone();
                    let blocks = b_val.rows() / a_val.cols();
                    let p = a_val.rows();
                    let k = a_val.cols();
                    let d = b_val.cols();
                    let a_t = a_val.transpose();
                    let mut da = Matrix::zeros(p, k);
                    let mut db = Matrix::zeros(b_val.rows(), d);
                    for blk in 0..blocks {
                        let g = grad_out
                            .slice_rows(blk * p, (blk + 1) * p)
                            .expect("repeat_matmul backward: grad block");
                        let bb = b_val
                            .slice_rows(blk * k, (blk + 1) * k)
                            .expect("repeat_matmul backward: B block");
                        da = da
                            .add(&g.matmul(&bb.transpose()).expect("repeat_matmul dA shape"))
                            .expect("repeat_matmul dA accumulation");
                        let dbb = a_t.matmul(&g).expect("repeat_matmul dB shape");
                        db.as_mut_slice()[blk * k * d..(blk + 1) * k * d]
                            .copy_from_slice(dbb.as_slice());
                    }
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::BlockRowBroadcast(a, block) => {
                    // out[b·n + i][j] = v[b·n + j] → dv[b·n + j] = Σ_i grad[b·n + i][j]
                    let rows = inner.nodes[a].value.rows();
                    let blocks = rows / block;
                    let mut dv = Matrix::zeros(rows, 1);
                    for b in 0..blocks {
                        for i in 0..block {
                            for j in 0..block {
                                let acc = dv.get(b * block + j, 0) + grad_out.get(b * block + i, j);
                                dv.set(b * block + j, 0, acc);
                            }
                        }
                    }
                    accumulate(&mut inner.nodes, a, dv);
                }
                Op::BlockAddBroadcast(a, m) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    let (n, c) = inner.nodes[m].value.shape();
                    let blocks = grad_out.rows() / n;
                    let mut dm = Matrix::zeros(n, c);
                    for b in 0..blocks {
                        for i in 0..n {
                            for j in 0..c {
                                let acc = dm.get(i, j) + grad_out.get(b * n + i, j);
                                dm.set(i, j, acc);
                            }
                        }
                    }
                    accumulate(&mut inner.nodes, m, dm);
                }
                Op::MatMulBias(a, w, bias) => {
                    let a_val = inner.nodes[a].value.clone();
                    let w_val = inner.nodes[w].value.clone();
                    let da = grad_out
                        .matmul(&w_val.transpose())
                        .expect("matmul_bias backward: dA shape");
                    let dw = a_val
                        .transpose()
                        .matmul(&grad_out)
                        .expect("matmul_bias backward: dW shape");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, w, dw);
                    accumulate(&mut inner.nodes, bias, grad_out.sum_cols());
                }
                Op::MatMulBiasRelu(a, w, bias) => {
                    // Gate the incoming gradient by the rectifier first
                    // (value holds the post-relu output), then it is plain
                    // matmul-plus-bias backward.
                    let mask = value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    let gated = grad_out.hadamard(&mask).expect("relu gate shape");
                    let a_val = inner.nodes[a].value.clone();
                    let w_val = inner.nodes[w].value.clone();
                    let da = gated
                        .matmul(&w_val.transpose())
                        .expect("matmul_bias_relu backward: dA shape");
                    let dw = a_val
                        .transpose()
                        .matmul(&gated)
                        .expect("matmul_bias_relu backward: dW shape");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, w, dw);
                    accumulate(&mut inner.nodes, bias, gated.sum_cols());
                }
                Op::AttentionLogits(src, dst, mask, slope, block) => {
                    // out = leaky(src_i + dst_j) + mask_ij, per n-row block.
                    let src_val = inner.nodes[src].value.clone();
                    let dst_val = inner.nodes[dst].value.clone();
                    let n = block;
                    let blocks = src_val.rows() / n;
                    let mut dsrc = Matrix::zeros(src_val.rows(), 1);
                    let mut ddst = Matrix::zeros(dst_val.rows(), 1);
                    let (mask_rows, mask_cols) = inner.nodes[mask].value.shape();
                    let mut dmask = Matrix::zeros(mask_rows, mask_cols);
                    for b in 0..blocks {
                        for i in 0..n {
                            let s = src_val.get(b * n + i, 0);
                            for j in 0..n {
                                let g = grad_out.get(b * n + i, j);
                                let pre = s + dst_val.get(b * n + j, 0);
                                let factor = if pre > 0.0 { 1.0 } else { slope };
                                let gf = g * factor;
                                dsrc.set(b * n + i, 0, dsrc.get(b * n + i, 0) + gf);
                                ddst.set(b * n + j, 0, ddst.get(b * n + j, 0) + gf);
                                dmask.set(i, j, dmask.get(i, j) + g);
                            }
                        }
                    }
                    accumulate(&mut inner.nodes, src, dsrc);
                    accumulate(&mut inner.nodes, dst, ddst);
                    accumulate(&mut inner.nodes, mask, dmask);
                }
                Op::ScaledAdd(a, b, s) => {
                    let b_val = inner.nodes[b].value.clone();
                    let s_val = inner.nodes[s].value.get(0, 0);
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, b, grad_out.scale(s_val));
                    let ds = grad_out
                        .hadamard(&b_val)
                        .expect("scaled_add backward")
                        .sum();
                    accumulate(&mut inner.nodes, s, Matrix::filled(1, 1, ds));
                }
            }
        }
    }
}

/// Backward pass shared by `BlockMatMul` and `BlockMatMulRelu`: per block,
/// `dA_b = dC_b · B_bᵀ` and `dB_b = A_bᵀ · dC_b`.
fn block_matmul_backward(nodes: &mut [Node], a: usize, b: usize, blocks: usize, grad_out: &Matrix) {
    let a_val = nodes[a].value.clone();
    let b_val = nodes[b].value.clone();
    let p = a_val.rows() / blocks;
    let k = a_val.cols();
    let mut da = Matrix::zeros(a_val.rows(), a_val.cols());
    let mut db = Matrix::zeros(b_val.rows(), b_val.cols());
    for blk in 0..blocks {
        let g = grad_out
            .slice_rows(blk * p, (blk + 1) * p)
            .expect("block_matmul backward: grad block");
        let ab = a_val
            .slice_rows(blk * p, (blk + 1) * p)
            .expect("block_matmul backward: A block");
        let bb = b_val
            .slice_rows(blk * k, (blk + 1) * k)
            .expect("block_matmul backward: B block");
        let dab = g.matmul(&bb.transpose()).expect("block_matmul dA shape");
        let dbb = ab.transpose().matmul(&g).expect("block_matmul dB shape");
        da.as_mut_slice()[blk * p * k..(blk + 1) * p * k].copy_from_slice(dab.as_slice());
        let d = b_val.cols();
        db.as_mut_slice()[blk * k * d..(blk + 1) * k * d].copy_from_slice(dbb.as_slice());
    }
    accumulate(nodes, a, da);
    accumulate(nodes, b, db);
}

/// Add `grad` into the gradient accumulator of node `idx` (creating it if
/// absent). Constant nodes still receive gradients so that interior nodes can
/// propagate; only leaves marked `requires_grad = false` simply never get
/// read back.
fn accumulate(nodes: &mut [Node], idx: usize, grad: Matrix) {
    let node = &mut nodes[idx];
    match &mut node.grad {
        Some(existing) => {
            *existing = existing.add(&grad).expect("gradient accumulation shape");
        }
        None => node.grad = Some(grad),
    }
}

impl Var {
    /// The value stored at this node (cloned).
    pub fn value(&self) -> Matrix {
        self.tape.value_of(self.idx)
    }

    /// Shape of the value at this node.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.shape_of(self.idx)
    }

    /// The accumulated gradient, if this node requires gradients and
    /// [`Tape::backward`] has been run.
    pub fn grad(&self) -> Option<Matrix> {
        let inner = self.tape.inner.borrow();
        let node = &inner.nodes[self.idx];
        if node.requires_grad {
            node.grad.clone()
        } else {
            None
        }
    }

    /// The tape this variable belongs to.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Evaluate `f` against this node's value without cloning it out of the
    /// tape. Forward ops are value-read hot paths, so they borrow instead of
    /// going through [`Var::value`].
    fn with_value<R>(&self, f: impl FnOnce(&Matrix) -> R) -> R {
        let inner = self.tape.inner.borrow();
        f(&inner.nodes[self.idx].value)
    }

    /// Evaluate `f` against two node values under one borrow (both operands
    /// must live on the same tape).
    fn with_values<R>(&self, other: &Var, f: impl FnOnce(&Matrix, &Matrix) -> R) -> R {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "cannot combine Vars from different tapes"
        );
        let inner = self.tape.inner.borrow();
        f(&inner.nodes[self.idx].value, &inner.nodes[other.idx].value)
    }

    fn unary(&self, op: Op, value: Matrix) -> Var {
        let requires = self.tape.requires_grad(self.idx) || !matches!(op, Op::Leaf);
        self.tape.push(value, requires, op)
    }

    fn binary(&self, other: &Var, op: Op, value: Matrix) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "cannot combine Vars from different tapes"
        );
        self.tape.push(value, true, op)
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| a.matmul(b).expect("Var::matmul shape mismatch"));
        self.binary(rhs, Op::MatMul(self.idx, rhs.idx), value)
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| a.add(b).expect("Var::add shape mismatch"));
        self.binary(rhs, Op::Add(self.idx, rhs.idx), value)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| a.sub(b).expect("Var::sub shape mismatch"));
        self.binary(rhs, Op::Sub(self.idx, rhs.idx), value)
    }

    /// Element-wise product.
    pub fn mul(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| a.hadamard(b).expect("Var::mul shape mismatch"));
        self.binary(rhs, Op::Mul(self.idx, rhs.idx), value)
    }

    /// Add a `1 × cols` bias row to every row.
    pub fn add_row_broadcast(&self, row: &Var) -> Var {
        let value = self.with_values(row, |a, r| {
            a.add_row_broadcast(r)
                .expect("Var::add_row_broadcast shape mismatch")
        });
        self.binary(row, Op::AddRowBroadcast(self.idx, row.idx), value)
    }

    /// Multiply every element by a `1 × 1` scalar variable.
    pub fn mul_scalar_var(&self, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "mul_scalar_var expects a 1x1 Var");
        let value = self.with_values(scalar, |a, s| a.scale(s.get(0, 0)));
        self.binary(scalar, Op::MulScalarBroadcast(self.idx, scalar.idx), value)
    }

    /// Add a `1 × 1` scalar variable to every element.
    pub fn add_scalar_var(&self, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "add_scalar_var expects a 1x1 Var");
        let value = self.with_values(scalar, |a, s| {
            let shift = s.get(0, 0);
            a.map(|v| v + shift)
        });
        self.binary(scalar, Op::AddScalarBroadcast(self.idx, scalar.idx), value)
    }

    /// Multiply every element by a constant scalar.
    pub fn scale(&self, k: f32) -> Var {
        let value = self.with_value(|a| a.scale(k));
        self.unary(Op::Scale(self.idx, k), value)
    }

    /// Negate every element.
    pub fn neg(&self) -> Var {
        let value = self.with_value(|a| a.scale(-1.0));
        self.unary(Op::Neg(self.idx), value)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let value = self.with_value(|a| a.map(|v| v.max(0.0)));
        self.unary(Op::Relu(self.idx), value)
    }

    /// Leaky rectified linear unit with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let value = self.with_value(|a| a.map(|v| if v > 0.0 { v } else { slope * v }));
        self.unary(Op::LeakyRelu(self.idx, slope), value)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.with_value(|a| a.map(|v| 1.0 / (1.0 + (-v).exp())));
        self.unary(Op::Sigmoid(self.idx), value)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.with_value(|a| a.map(f32::tanh));
        self.unary(Op::Tanh(self.idx), value)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let value = self.with_value(|a| a.map(f32::exp));
        self.unary(Op::Exp(self.idx), value)
    }

    /// Element-wise square.
    pub fn square(&self) -> Var {
        let value = self.with_value(|a| a.map(|v| v * v));
        self.unary(Op::Square(self.idx), value)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Var {
        let value = self.with_value(Matrix::softmax_rows);
        self.unary(Op::SoftmaxRows(self.idx), value)
    }

    /// Sum of all elements as a `1 × 1` node.
    pub fn sum(&self) -> Var {
        let value = Matrix::filled(1, 1, self.with_value(Matrix::sum));
        self.unary(Op::Sum(self.idx), value)
    }

    /// Mean of all elements as a `1 × 1` node.
    pub fn mean(&self) -> Var {
        let value = Matrix::filled(1, 1, self.with_value(Matrix::mean));
        self.unary(Op::Mean(self.idx), value)
    }

    /// Per-row sums as an `rows × 1` node.
    pub fn sum_rows_keep(&self) -> Var {
        let value = self.with_value(Matrix::sum_rows);
        self.unary(Op::SumRowsKeep(self.idx), value)
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        let value = self.with_value(Matrix::transpose);
        self.unary(Op::Transpose(self.idx), value)
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| {
            a.concat_cols(b).expect("Var::concat_cols shape mismatch")
        });
        self.binary(rhs, Op::ConcatCols(self.idx, rhs.idx), value)
    }

    /// Vertical concatenation.
    pub fn concat_rows(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| {
            a.concat_rows(b).expect("Var::concat_rows shape mismatch")
        });
        self.binary(rhs, Op::ConcatRows(self.idx, rhs.idx), value)
    }

    /// Column slice `self[:, start..end]`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Var {
        let value = self.with_value(|a| {
            a.slice_cols(start, end)
                .expect("Var::slice_cols out of bounds")
        });
        self.unary(Op::SliceCols(self.idx, start, end), value)
    }

    /// Row slice `self[start..end, :]`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Var {
        let value = self.with_value(|a| {
            a.slice_rows(start, end)
                .expect("Var::slice_rows out of bounds")
        });
        self.unary(Op::SliceRows(self.idx, start, end), value)
    }

    /// Per-block matrix product over `blocks` vertically stacked block pairs:
    /// `out_b = self_b · rhs_b` (see [`Matrix::block_matmul`]).
    pub fn block_matmul(&self, rhs: &Var, blocks: usize) -> Var {
        let value = self.with_values(rhs, |a, b| {
            a.block_matmul(b, blocks)
                .expect("Var::block_matmul shape mismatch")
        });
        self.binary(rhs, Op::BlockMatMul(self.idx, rhs.idx, blocks), value)
    }

    /// Per-block matrix product with a fused ReLU epilogue:
    /// `out_b = relu(self_b · rhs_b)` (see [`Matrix::block_matmul_relu`]).
    pub fn block_matmul_relu(&self, rhs: &Var, blocks: usize) -> Var {
        let value = self.with_values(rhs, |a, b| {
            a.block_matmul_relu(b, blocks)
                .expect("Var::block_matmul_relu shape mismatch")
        });
        self.binary(rhs, Op::BlockMatMulRelu(self.idx, rhs.idx, blocks), value)
    }

    /// Apply `self` (one `p × k` block) to every `k`-row block of `rhs`:
    /// `out_b = self · rhs_b` (see [`Matrix::repeat_matmul`]).
    pub fn repeat_matmul(&self, rhs: &Var) -> Var {
        let value = self.with_values(rhs, |a, b| {
            a.repeat_matmul(b)
                .expect("Var::repeat_matmul shape mismatch")
        });
        self.binary(rhs, Op::RepeatMatMul(self.idx, rhs.idx), value)
    }

    /// Block-wise transposed broadcast of a stacked column vector (see
    /// [`Matrix::block_row_broadcast`]).
    pub fn block_row_broadcast(&self, block: usize) -> Var {
        let value = self.with_value(|a| {
            a.block_row_broadcast(block)
                .expect("Var::block_row_broadcast shape mismatch")
        });
        self.unary(Op::BlockRowBroadcast(self.idx, block), value)
    }

    /// Add one `n × c` matrix to every `n`-row block of `self` (see
    /// [`Matrix::block_add_broadcast`]).
    pub fn block_add_broadcast(&self, m: &Var) -> Var {
        let value = self.with_values(m, |a, b| {
            a.block_add_broadcast(b)
                .expect("Var::block_add_broadcast shape mismatch")
        });
        self.binary(m, Op::BlockAddBroadcast(self.idx, m.idx), value)
    }

    fn ternary(&self, b: &Var, c: &Var, op: Op, value: Matrix) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &b.tape.inner)
                && Rc::ptr_eq(&self.tape.inner, &c.tape.inner),
            "cannot combine Vars from different tapes"
        );
        self.tape.push(value, true, op)
    }

    /// Fused dense layer `self · w + bias` (bias is `1 × d`, broadcast over
    /// rows); one kernel pass instead of a matmul followed by a broadcast
    /// add (see [`Matrix::matmul_bias`]).
    pub fn matmul_bias(&self, w: &Var, bias: &Var) -> Var {
        let value = self.with_values(w, |a, wv| {
            bias.with_value(|bv| {
                a.matmul_bias(wv, bv)
                    .expect("Var::matmul_bias shape mismatch")
            })
        });
        self.ternary(w, bias, Op::MatMulBias(self.idx, w.idx, bias.idx), value)
    }

    /// Fused dense layer plus activation `relu(self · w + bias)` — the
    /// rectifier rides in the kernel's store epilogue (see
    /// [`Matrix::matmul_bias_relu`]).
    pub fn matmul_bias_relu(&self, w: &Var, bias: &Var) -> Var {
        let value = self.with_values(w, |a, wv| {
            bias.with_value(|bv| {
                a.matmul_bias_relu(wv, bv)
                    .expect("Var::matmul_bias_relu shape mismatch")
            })
        });
        self.ternary(
            w,
            bias,
            Op::MatMulBiasRelu(self.idx, w.idx, bias.idx),
            value,
        )
    }

    /// Fused batched GAT attention logits (see
    /// [`Matrix::attention_logits`]): `leaky(self_i + dst_j, slope) + mask`
    /// per `n`-row block, in one pass.
    pub fn attention_logits(&self, dst: &Var, mask: &Var, slope: f32) -> Var {
        let block = mask.shape().0;
        let value = self.with_values(dst, |s, d| {
            mask.with_value(|m| {
                s.attention_logits(d, m, slope)
                    .expect("Var::attention_logits shape mismatch")
            })
        });
        self.ternary(
            dst,
            mask,
            Op::AttentionLogits(self.idx, dst.idx, mask.idx, slope, block),
            value,
        )
    }

    /// Fused `self + s · rhs` for a `1 × 1` scalar variable `s` — one pass
    /// instead of a scalar-broadcast multiply followed by an add.
    pub fn scaled_add(&self, rhs: &Var, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "scaled_add expects a 1x1 scalar");
        let value = self.with_values(rhs, |a, b| {
            scalar.with_value(|s| {
                a.scaled_add(b, s.get(0, 0))
                    .expect("Var::scaled_add shape mismatch")
            })
        });
        self.ternary(
            rhs,
            scalar,
            Op::ScaledAdd(self.idx, rhs.idx, scalar.idx),
            value,
        )
    }

    /// Mean-squared error against a target variable: `mean((self − target)²)`.
    pub fn mse(&self, target: &Var) -> Var {
        self.sub(target).square().mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite_difference_grad;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    fn grad_check<F>(param: Matrix, forward: F)
    where
        F: Fn(&Tape, &Var) -> Var,
    {
        // analytic
        let tape = Tape::new();
        let p = tape.leaf(param.clone(), true);
        let loss = forward(&tape, &p);
        tape.backward(&loss);
        let analytic = p.grad().expect("analytic gradient");

        // numeric
        let numeric = finite_difference_grad(
            &param,
            |m| {
                let t = Tape::new();
                let v = t.leaf(m.clone(), true);
                forward(&t, &v).value().get(0, 0)
            },
            1e-2,
        );
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < crate::GRAD_CHECK_TOL,
            "gradient check failed: max diff {diff}\nanalytic {analytic:?}\nnumeric {numeric:?}"
        );
    }

    #[test]
    fn scalar_chain_rule() {
        // loss = mean((x * 3)²) for scalar x=2 → loss = 36, dloss/dx = 2*6*3 = 36
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 2.0), true);
        let loss = x.scale(3.0).square().mean();
        assert_close(loss.value().get(0, 0), 36.0, 1e-4);
        tape.backward(&loss);
        assert_close(x.grad().unwrap().get(0, 0), 36.0, 1e-3);
    }

    #[test]
    fn matmul_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.5, -1.0], vec![2.0, 0.3]]),
            |t, p| {
                let w = t.constant(Matrix::from_rows(vec![vec![1.0, 2.0], vec![-0.5, 0.7]]));
                p.matmul(&w).square().mean()
            },
        );
    }

    #[test]
    fn add_sub_mul_gradients() {
        grad_check(Matrix::from_rows(vec![vec![0.2, 0.4, -0.8]]), |t, p| {
            let c = t.constant(Matrix::from_rows(vec![vec![1.0, -2.0, 0.5]]));
            p.add(&c).mul(&c).sub(&p.scale(0.3)).square().mean()
        });
    }

    #[test]
    fn activation_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.3, -0.6], vec![1.2, -1.5]]),
            |_, p| p.sigmoid().square().mean(),
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.3, -0.6], vec![1.2, -1.5]]),
            |_, p| p.tanh().square().mean(),
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.3, -0.6], vec![1.2, -1.5]]),
            |_, p| p.leaky_relu(0.2).square().mean(),
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.31, -0.62], vec![1.2, -1.5]]),
            |_, p| p.relu().square().mean(),
        );
        grad_check(Matrix::from_rows(vec![vec![0.3, -0.6]]), |_, p| {
            p.exp().mean()
        });
    }

    #[test]
    fn softmax_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.5, 1.0, -1.0], vec![2.0, 0.1, 0.4]]),
            |t, p| {
                let target = t.constant(Matrix::from_rows(vec![
                    vec![1.0, 0.0, 0.0],
                    vec![0.0, 1.0, 0.0],
                ]));
                p.softmax_rows().sub(&target).square().mean()
            },
        );
    }

    #[test]
    fn broadcast_gradients() {
        grad_check(Matrix::from_rows(vec![vec![0.1, -0.4, 0.9]]), |t, p| {
            let x = t.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1));
            x.add_row_broadcast(p).square().mean()
        });
    }

    #[test]
    fn scalar_var_broadcast_gradients() {
        grad_check(Matrix::filled(1, 1, 0.7), |t, p| {
            let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.2));
            x.mul_scalar_var(p).square().mean()
        });
        grad_check(Matrix::filled(1, 1, -0.3), |t, p| {
            let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.2));
            x.add_scalar_var(p).square().mean()
        });
    }

    #[test]
    fn structural_op_gradients() {
        grad_check(
            Matrix::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.3),
            |t, p| {
                let other = t.constant(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.1));
                p.slice_cols(1, 3)
                    .concat_cols(&other)
                    .transpose()
                    .square()
                    .mean()
            },
        );
        grad_check(
            Matrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.25),
            |t, p| {
                let other = t.constant(Matrix::from_fn(2, 2, |r, c| (r * c) as f32 * 0.5));
                p.slice_rows(1, 3).concat_rows(&other).square().mean()
            },
        );
    }

    #[test]
    fn reduction_gradients() {
        grad_check(
            Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4),
            |_, p| p.sum_rows_keep().square().mean(),
        );
        grad_check(
            Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4),
            |_, p| p.square().sum().scale(0.5),
        );
    }

    #[test]
    fn mse_helper_matches_manual() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(vec![vec![1.0, 2.0]]), true);
        let b = tape.constant(Matrix::from_rows(vec![vec![0.0, 0.0]]));
        let loss = a.mse(&b);
        assert_close(loss.value().get(0, 0), 2.5, 1e-5);
        tape.backward(&loss);
        let g = a.grad().unwrap();
        assert_close(g.get(0, 0), 1.0, 1e-4);
        assert_close(g.get(0, 1), 2.0, 1e-4);
    }

    #[test]
    fn gradient_accumulates_over_reused_nodes() {
        // loss = mean((x + x)²) → d/dx = 8x per element / len
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 3.0), true);
        let loss = x.add(&x).square().mean();
        tape.backward(&loss);
        assert_close(x.grad().unwrap().get(0, 0), 24.0, 1e-3);
    }

    #[test]
    fn constants_do_not_expose_grads() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 3.0), true);
        let c = tape.constant(Matrix::filled(1, 1, 2.0));
        let loss = x.mul(&c).square().mean();
        tape.backward(&loss);
        assert!(x.grad().is_some());
        assert!(c.grad().is_none());
    }

    #[test]
    fn repeated_backward_resets_grads() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 2.0), true);
        let loss = x.square().mean();
        tape.backward(&loss);
        let g1 = x.grad().unwrap().get(0, 0);
        tape.backward(&loss);
        let g2 = x.grad().unwrap().get(0, 0);
        assert_close(g1, g2, 1e-6);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar_loss() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 2), true);
        let y = x.scale(2.0);
        tape.backward(&y);
    }

    #[test]
    #[should_panic(expected = "different tape")]
    fn mixing_tapes_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Matrix::zeros(1, 1), true);
        let b = t2.leaf(Matrix::zeros(1, 1), true);
        let _ = a.add(&b);
    }

    #[test]
    fn block_matmul_gradients() {
        // 2 blocks of 2x2 against a stacked 2-block rhs
        grad_check(
            Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.4),
            |t, p| {
                let rhs = t.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2));
                p.block_matmul(&rhs, 2).square().mean()
            },
        );
        // gradient through the rhs side
        grad_check(
            Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2),
            |t, p| {
                let lhs = t.constant(Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.4));
                lhs.block_matmul(p, 2).square().mean()
            },
        );
    }

    #[test]
    fn block_matmul_relu_gradients_and_value() {
        let tape = Tape::new();
        let a = tape.constant(Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.4));
        let b = tape.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2 - 0.5));
        let fused = a.block_matmul_relu(&b, 2).value();
        let unfused = a.block_matmul(&b, 2).relu().value();
        assert!(fused.max_abs_diff(&unfused) < 1e-6);

        // offsets keep pre-activations off the relu kink
        grad_check(
            Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.4 + 0.13),
            |t, p| {
                let rhs = t.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2 - 0.5));
                p.block_matmul_relu(&rhs, 2).square().mean()
            },
        );
        grad_check(
            Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2 - 0.49),
            |t, p| {
                let lhs = t.constant(Matrix::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.4));
                lhs.block_matmul_relu(p, 2).square().mean()
            },
        );
    }

    #[test]
    fn repeat_matmul_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.5, -1.0], vec![0.2, 0.8]]),
            |t, p| {
                let rhs = t.constant(Matrix::from_fn(6, 2, |r, c| (r + c) as f32 * 0.15));
                p.repeat_matmul(&rhs).square().mean()
            },
        );
        grad_check(
            Matrix::from_fn(6, 2, |r, c| (r + c) as f32 * 0.15),
            |t, p| {
                let lhs = t.constant(Matrix::from_rows(vec![vec![0.5, -1.0], vec![0.2, 0.8]]));
                lhs.repeat_matmul(p).square().mean()
            },
        );
    }

    #[test]
    fn block_row_broadcast_gradients() {
        grad_check(
            Matrix::col_vector(&[0.3, -0.7, 1.1, 0.4, -0.2, 0.9]),
            |_, p| p.block_row_broadcast(3).square().mean(),
        );
    }

    #[test]
    fn block_add_broadcast_gradients() {
        grad_check(
            Matrix::from_fn(6, 2, |r, c| (r + c) as f32 * 0.3),
            |t, p| {
                let m = t.constant(Matrix::from_rows(vec![vec![0.1, -0.2], vec![0.4, 0.0]]));
                p.block_add_broadcast(&m).square().mean()
            },
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.1, -0.2], vec![0.4, 0.0]]),
            |t, p| {
                let h = t.constant(Matrix::from_fn(6, 2, |r, c| (r + c) as f32 * 0.3));
                h.block_add_broadcast(p).square().mean()
            },
        );
    }

    #[test]
    fn batched_ops_match_per_block_composition() {
        // One block must reproduce the exact un-batched op chain the GAT
        // layer used before batching existed.
        let tape = Tape::new();
        let dst = tape.constant(Matrix::col_vector(&[0.2, -0.6, 1.4]));
        let ones = tape.constant(Matrix::ones(1, 3));
        let reference = dst.matmul(&ones).transpose().value();
        let batched = dst.block_row_broadcast(3).value();
        assert_eq!(reference, batched, "bit-identical for a single block");
    }

    #[test]
    fn matmul_bias_gradients_and_value() {
        // value matches the unfused chain within rounding
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.3));
        let w = tape.constant(Matrix::from_fn(2, 4, |r, c| (r as f32 - c as f32) * 0.2));
        let bias = tape.constant(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1));
        let fused = x.matmul_bias(&w, &bias).value();
        let unfused = x.matmul(&w).add_row_broadcast(&bias).value();
        assert!(fused.max_abs_diff(&unfused) < 1e-5);

        // gradients through every operand
        grad_check(
            Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.3),
            |t, p| {
                let w = t.constant(Matrix::from_fn(2, 4, |r, c| (r as f32 - c as f32) * 0.2));
                let b = t.constant(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1));
                p.matmul_bias(&w, &b).square().mean()
            },
        );
        grad_check(
            Matrix::from_fn(2, 4, |r, c| (r as f32 - c as f32) * 0.2),
            |t, p| {
                let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.3));
                let b = t.constant(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1));
                x.matmul_bias(p, &b).square().mean()
            },
        );
        grad_check(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1), |t, p| {
            let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.3));
            let w = t.constant(Matrix::from_fn(2, 4, |r, c| (r as f32 - c as f32) * 0.2));
            x.matmul_bias(&w, p).square().mean()
        });
    }

    #[test]
    fn matmul_bias_relu_gradients_and_value() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.6));
        let w = tape.constant(Matrix::from_fn(2, 4, |r, c| {
            ((r + c) % 3) as f32 * 0.4 - 0.3
        }));
        let bias = tape.constant(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1 - 0.15));
        let fused = x.matmul_bias_relu(&w, &bias).value();
        let unfused = x.matmul(&w).add_row_broadcast(&bias).relu().value();
        assert!(fused.max_abs_diff(&unfused) < 1e-5);
        assert!(fused.min().unwrap() >= 0.0);

        // offsets keep pre-activations away from the relu kink so the finite
        // difference stays smooth
        grad_check(
            Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.6 + 0.21),
            |t, p| {
                let w = t.constant(Matrix::from_fn(2, 4, |r, c| {
                    ((r + c) % 3) as f32 * 0.4 - 0.3
                }));
                let b = t.constant(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1 - 0.15));
                p.matmul_bias_relu(&w, &b).square().mean()
            },
        );
        grad_check(
            Matrix::from_fn(2, 4, |r, c| ((r + c) % 3) as f32 * 0.4 - 0.29),
            |t, p| {
                let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.6));
                let b = t.constant(Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1 - 0.15));
                x.matmul_bias_relu(p, &b).square().mean()
            },
        );
        grad_check(
            Matrix::from_fn(1, 4, |_, c| c as f32 * 0.1 - 0.13),
            |t, p| {
                let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.6));
                let w = t.constant(Matrix::from_fn(2, 4, |r, c| {
                    ((r + c) % 3) as f32 * 0.4 - 0.3
                }));
                x.matmul_bias_relu(&w, p).square().mean()
            },
        );
    }

    #[test]
    fn attention_logits_gradients_and_value() {
        let mask = Matrix::from_rows(vec![
            vec![0.0, -2.0, 0.0],
            vec![-2.0, 0.0, 0.0],
            vec![0.0, 0.0, -2.0],
        ]);
        // value matches the unfused chain (two blocks)
        let tape = Tape::new();
        let src = tape.constant(Matrix::col_vector(&[0.4, -0.6, 1.2, -0.1, 0.8, -1.4]));
        let dst = tape.constant(Matrix::col_vector(&[0.2, 0.9, -0.5, 1.1, -0.7, 0.3]));
        let m = tape.constant(mask.clone());
        let ones = tape.constant(Matrix::ones(1, 3));
        let fused = src.attention_logits(&dst, &m, 0.2).value();
        let unfused = src
            .matmul(&ones)
            .add(&dst.block_row_broadcast(3))
            .leaky_relu(0.2)
            .block_add_broadcast(&m)
            .value();
        assert!(fused.max_abs_diff(&unfused) < 1e-6);

        // gradients through src, dst and the mask
        let mask_for = mask.clone();
        grad_check(Matrix::col_vector(&[0.4, -0.6, 1.2, -0.1, 0.8, -1.4]), {
            let mask = mask_for.clone();
            move |t, p| {
                let dst = t.constant(Matrix::col_vector(&[0.2, 0.9, -0.5, 1.1, -0.7, 0.3]));
                let m = t.constant(mask.clone());
                p.attention_logits(&dst, &m, 0.2).square().mean()
            }
        });
        grad_check(Matrix::col_vector(&[0.2, 0.9, -0.5, 1.1, -0.7, 0.3]), {
            let mask = mask_for.clone();
            move |t, p| {
                let src = t.constant(Matrix::col_vector(&[0.4, -0.6, 1.2, -0.1, 0.8, -1.4]));
                let m = t.constant(mask.clone());
                src.attention_logits(p, &m, 0.2).square().mean()
            }
        });
        grad_check(mask_for, |t, p| {
            let src = t.constant(Matrix::col_vector(&[0.4, -0.6, 1.2, -0.1, 0.8, -1.4]));
            let dst = t.constant(Matrix::col_vector(&[0.2, 0.9, -0.5, 1.1, -0.7, 0.3]));
            src.attention_logits(&dst, p, 0.2).square().mean()
        });
    }

    #[test]
    fn scaled_add_gradients_and_value() {
        let tape = Tape::new();
        let a = tape.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4));
        let b = tape.constant(Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.3));
        let s = tape.constant(Matrix::filled(1, 1, 1.7));
        let fused = a.scaled_add(&b, &s).value();
        let unfused = a.add(&b.mul_scalar_var(&s)).value();
        assert!(fused.max_abs_diff(&unfused) < 1e-6);

        grad_check(
            Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4),
            |t, p| {
                let b = t.constant(Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.3));
                let s = t.constant(Matrix::filled(1, 1, 1.7));
                p.scaled_add(&b, &s).square().mean()
            },
        );
        grad_check(
            Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.3),
            |t, p| {
                let a = t.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4));
                let s = t.constant(Matrix::filled(1, 1, 1.7));
                a.scaled_add(p, &s).square().mean()
            },
        );
        grad_check(Matrix::filled(1, 1, 1.7), |t, p| {
            let a = t.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4));
            let b = t.constant(Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.3));
            a.scaled_add(&b, p).square().mean()
        });
    }

    #[test]
    fn no_grad_tape_records_only_leaves() {
        let tape = Tape::no_grad();
        assert!(!tape.is_grad_enabled());
        let x = tape.leaf(Matrix::from_rows(vec![vec![1.0, 2.0]]), true);
        let w = tape.constant(Matrix::from_rows(vec![vec![3.0], vec![4.0]]));
        let y = x.matmul(&w).relu().square();
        // values still flow
        assert_eq!(y.value().get(0, 0), 121.0);
        // but no backward metadata exists
        assert_eq!(tape.n_backward_nodes(), 0);
        assert_eq!(tape.len(), 5);
        // and no node (not even the "requires_grad" leaf) tracks gradients
        assert!(x.grad().is_none());
    }

    #[test]
    fn grad_tape_counts_backward_nodes() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 2.0), true);
        let _ = x.square().mean();
        assert_eq!(tape.n_backward_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "no-grad")]
    fn backward_on_no_grad_tape_panics() {
        let tape = Tape::no_grad();
        let x = tape.leaf(Matrix::filled(1, 1, 2.0), true);
        let loss = x.square().mean();
        tape.backward(&loss);
    }

    #[test]
    fn truncate_rewinds_the_tape() {
        let tape = Tape::no_grad();
        let x = tape.leaf(Matrix::filled(2, 1, 1.5), false);
        let base = tape.len();
        for _ in 0..3 {
            let y = x.scale(2.0).square();
            assert_eq!(y.value().get(0, 0), 9.0);
            tape.truncate(base);
            assert_eq!(tape.len(), base, "every pass rewinds to the baseline");
        }
        // the retained leaf is still readable after truncation
        assert_eq!(x.value().get(1, 0), 1.5);
    }

    #[test]
    #[should_panic(expected = "beyond the current")]
    fn truncate_beyond_len_panics() {
        let tape = Tape::new();
        tape.truncate(1);
    }

    #[test]
    fn tape_len_tracks_nodes() {
        let tape = Tape::new();
        assert!(tape.is_empty());
        let a = tape.leaf(Matrix::zeros(1, 1), true);
        let _b = a.scale(2.0);
        assert_eq!(tape.len(), 2);
    }
}
