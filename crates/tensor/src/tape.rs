//! Reverse-mode automatic differentiation on dense matrices.
//!
//! The tape follows the classic define-by-run design: every differentiable
//! operation appends a [`Node`] holding its output value, the indices of its
//! parents and an [`Op`] tag. [`Tape::backward`] seeds the output gradient
//! and walks the nodes in reverse creation order, accumulating parent
//! gradients according to each op's local derivative.
//!
//! A fresh tape is created for every forward pass (one per training sample or
//! mini-batch step), which keeps lifetimes trivial and memory bounded.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::rc::Rc;

/// Operation tag recorded for every tape node.
///
/// Parent nodes are referenced by index into the tape. Constants required by
/// the backward pass (scalars, slice bounds) are stored inline.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (parameter or input); has no parents.
    Leaf,
    /// `C = A · B`
    MatMul(usize, usize),
    /// `C = A + B` (same shape)
    Add(usize, usize),
    /// `C = A - B` (same shape)
    Sub(usize, usize),
    /// `C = A ∘ B` element-wise
    Mul(usize, usize),
    /// `C = A + row` where `row` is `1 × cols`, broadcast over rows
    AddRowBroadcast(usize, usize),
    /// `C = A * s` where `s` is a `1 × 1` tape node, broadcast to every element
    MulScalarBroadcast(usize, usize),
    /// `C = A + s` where `s` is a `1 × 1` tape node, broadcast to every element
    AddScalarBroadcast(usize, usize),
    /// `C = k · A` for a constant scalar `k`
    Scale(usize, f32),
    /// `C = -A`
    Neg(usize),
    /// `C = max(A, 0)`
    Relu(usize),
    /// `C = A if A > 0 else slope · A`
    LeakyRelu(usize, f32),
    /// `C = σ(A)`
    Sigmoid(usize),
    /// `C = tanh(A)`
    Tanh(usize),
    /// `C = exp(A)`
    Exp(usize),
    /// `C = A²` element-wise
    Square(usize),
    /// Row-wise softmax
    SoftmaxRows(usize),
    /// Scalar sum of all elements (`1 × 1` output)
    Sum(usize),
    /// Scalar mean of all elements (`1 × 1` output)
    Mean(usize),
    /// Per-row sums (`rows × 1` output)
    SumRowsKeep(usize),
    /// Transpose
    Transpose(usize),
    /// Horizontal concatenation `[A | B]`
    ConcatCols(usize, usize),
    /// Vertical concatenation
    ConcatRows(usize, usize),
    /// Column slice `A[:, start..end]`
    SliceCols(usize, usize, usize),
    /// Row slice `A[start..end, :]`
    SliceRows(usize, usize, usize),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    requires_grad: bool,
    op: Op,
}

#[derive(Debug, Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A reverse-mode autodiff tape.
///
/// Cheap to clone (reference-counted); all [`Var`]s created from a tape share
/// its node storage. The tape is single-threaded by design — each worker
/// thread owns its own tape and model replica.
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

/// A handle to a node on a [`Tape`].
///
/// `Var` is `Clone` and lightweight. Arithmetic methods record new nodes on
/// the shared tape and return new handles.
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    idx: usize,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (rows, cols) = self.shape();
        write!(f, "Var(node {}, {}x{})", self.idx, rows, cols)
    }
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.len())
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True if no node has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a leaf node holding `value`.
    ///
    /// If `requires_grad` is true its gradient is accumulated during
    /// [`Tape::backward`] and available through [`Var::grad`].
    pub fn leaf(&self, value: Matrix, requires_grad: bool) -> Var {
        self.push(value, requires_grad, Op::Leaf)
    }

    /// Record a constant leaf (no gradient tracking).
    pub fn constant(&self, value: Matrix) -> Var {
        self.leaf(value, false)
    }

    fn push(&self, value: Matrix, requires_grad: bool, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        inner.nodes.push(Node {
            value,
            grad: None,
            requires_grad,
            op,
        });
        Var {
            tape: self.clone(),
            idx: inner.nodes.len() - 1,
        }
    }

    fn value_of(&self, idx: usize) -> Matrix {
        self.inner.borrow().nodes[idx].value.clone()
    }

    fn shape_of(&self, idx: usize) -> (usize, usize) {
        self.inner.borrow().nodes[idx].value.shape()
    }

    fn requires_grad(&self, idx: usize) -> bool {
        self.inner.borrow().nodes[idx].requires_grad
    }

    /// Run the backward pass from `output`, which must be a `1 × 1` scalar
    /// node (a loss). Gradients of all `requires_grad` nodes are accumulated
    /// and can be read with [`Var::grad`].
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a scalar node or belongs to another tape.
    pub fn backward(&self, output: &Var) {
        assert!(
            Rc::ptr_eq(&self.inner, &output.tape.inner),
            "backward called with a Var from a different tape"
        );
        let out_shape = self.shape_of(output.idx);
        assert_eq!(
            out_shape,
            (1, 1),
            "backward expects a scalar (1x1) loss node, got {}x{}",
            out_shape.0,
            out_shape.1
        );

        let mut inner = self.inner.borrow_mut();
        let n = inner.nodes.len();
        // Reset any gradients from a previous backward call on the same tape.
        for node in inner.nodes.iter_mut() {
            node.grad = None;
        }
        inner.nodes[output.idx].grad = Some(Matrix::ones(1, 1));

        for idx in (0..=output.idx.min(n - 1)).rev() {
            let grad_out = match inner.nodes[idx].grad.clone() {
                Some(g) => g,
                None => continue,
            };
            let op = inner.nodes[idx].op.clone();
            let value = inner.nodes[idx].value.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let a_val = inner.nodes[a].value.clone();
                    let b_val = inner.nodes[b].value.clone();
                    let da = grad_out
                        .matmul(&b_val.transpose())
                        .expect("matmul backward: dA shape");
                    let db = a_val
                        .transpose()
                        .matmul(&grad_out)
                        .expect("matmul backward: dB shape");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, b, grad_out);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, b, grad_out.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let a_val = inner.nodes[a].value.clone();
                    let b_val = inner.nodes[b].value.clone();
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&b_val).expect("mul backward dA"),
                    );
                    accumulate(
                        &mut inner.nodes,
                        b,
                        grad_out.hadamard(&a_val).expect("mul backward dB"),
                    );
                }
                Op::AddRowBroadcast(a, row) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, row, grad_out.sum_cols());
                }
                Op::MulScalarBroadcast(a, s) => {
                    let a_val = inner.nodes[a].value.clone();
                    let s_val = inner.nodes[s].value.get(0, 0);
                    accumulate(&mut inner.nodes, a, grad_out.scale(s_val));
                    let ds = grad_out
                        .hadamard(&a_val)
                        .expect("scalar mul backward")
                        .sum();
                    accumulate(&mut inner.nodes, s, Matrix::filled(1, 1, ds));
                }
                Op::AddScalarBroadcast(a, s) => {
                    accumulate(&mut inner.nodes, a, grad_out.clone());
                    accumulate(&mut inner.nodes, s, Matrix::filled(1, 1, grad_out.sum()));
                }
                Op::Scale(a, k) => {
                    accumulate(&mut inner.nodes, a, grad_out.scale(k));
                }
                Op::Neg(a) => {
                    accumulate(&mut inner.nodes, a, grad_out.scale(-1.0));
                }
                Op::Relu(a) => {
                    let a_val = inner.nodes[a].value.clone();
                    let mask = a_val.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&mask).expect("relu backward"),
                    );
                }
                Op::LeakyRelu(a, slope) => {
                    let a_val = inner.nodes[a].value.clone();
                    let mask = a_val.map(|v| if v > 0.0 { 1.0 } else { slope });
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&mask).expect("leaky relu backward"),
                    );
                }
                Op::Sigmoid(a) => {
                    // value already holds σ(A)
                    let ds = value.map(|s| s * (1.0 - s));
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&ds).expect("sigmoid backward"),
                    );
                }
                Op::Tanh(a) => {
                    let dt = value.map(|t| 1.0 - t * t);
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&dt).expect("tanh backward"),
                    );
                }
                Op::Exp(a) => {
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out.hadamard(&value).expect("exp backward"),
                    );
                }
                Op::Square(a) => {
                    let a_val = inner.nodes[a].value.clone();
                    accumulate(
                        &mut inner.nodes,
                        a,
                        grad_out
                            .hadamard(&a_val.scale(2.0))
                            .expect("square backward"),
                    );
                }
                Op::SoftmaxRows(a) => {
                    // dA_i = s_i * (dC_i - Σ_j dC_j s_j) per row
                    let s = &value;
                    let mut da = Matrix::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let dot: f32 = (0..s.cols())
                            .map(|c| grad_out.get(r, c) * s.get(r, c))
                            .sum();
                        for c in 0..s.cols() {
                            da.set(r, c, s.get(r, c) * (grad_out.get(r, c) - dot));
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::Sum(a) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    accumulate(
                        &mut inner.nodes,
                        a,
                        Matrix::filled(r, c, grad_out.get(0, 0)),
                    );
                }
                Op::Mean(a) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let n_elems = (r * c).max(1) as f32;
                    accumulate(
                        &mut inner.nodes,
                        a,
                        Matrix::filled(r, c, grad_out.get(0, 0) / n_elems),
                    );
                }
                Op::SumRowsKeep(a) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let mut da = Matrix::zeros(r, c);
                    for i in 0..r {
                        let g = grad_out.get(i, 0);
                        for j in 0..c {
                            da.set(i, j, g);
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::Transpose(a) => {
                    accumulate(&mut inner.nodes, a, grad_out.transpose());
                }
                Op::ConcatCols(a, b) => {
                    let a_cols = inner.nodes[a].value.cols();
                    let total = grad_out.cols();
                    let da = grad_out
                        .slice_cols(0, a_cols)
                        .expect("concat_cols backward");
                    let db = grad_out
                        .slice_cols(a_cols, total)
                        .expect("concat_cols backward");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::ConcatRows(a, b) => {
                    let a_rows = inner.nodes[a].value.rows();
                    let total = grad_out.rows();
                    let da = grad_out
                        .slice_rows(0, a_rows)
                        .expect("concat_rows backward");
                    let db = grad_out
                        .slice_rows(a_rows, total)
                        .expect("concat_rows backward");
                    accumulate(&mut inner.nodes, a, da);
                    accumulate(&mut inner.nodes, b, db);
                }
                Op::SliceCols(a, start, end) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let mut da = Matrix::zeros(r, c);
                    for i in 0..r {
                        for (offset, j) in (start..end).enumerate() {
                            da.set(i, j, grad_out.get(i, offset));
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
                Op::SliceRows(a, start, end) => {
                    let (r, c) = inner.nodes[a].value.shape();
                    let mut da = Matrix::zeros(r, c);
                    for (offset, i) in (start..end).enumerate() {
                        for j in 0..c {
                            da.set(i, j, grad_out.get(offset, j));
                        }
                    }
                    accumulate(&mut inner.nodes, a, da);
                }
            }
        }
    }
}

/// Add `grad` into the gradient accumulator of node `idx` (creating it if
/// absent). Constant nodes still receive gradients so that interior nodes can
/// propagate; only leaves marked `requires_grad = false` simply never get
/// read back.
fn accumulate(nodes: &mut [Node], idx: usize, grad: Matrix) {
    let node = &mut nodes[idx];
    match &mut node.grad {
        Some(existing) => {
            *existing = existing.add(&grad).expect("gradient accumulation shape");
        }
        None => node.grad = Some(grad),
    }
}

impl Var {
    /// The value stored at this node (cloned).
    pub fn value(&self) -> Matrix {
        self.tape.value_of(self.idx)
    }

    /// Shape of the value at this node.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.shape_of(self.idx)
    }

    /// The accumulated gradient, if this node requires gradients and
    /// [`Tape::backward`] has been run.
    pub fn grad(&self) -> Option<Matrix> {
        let inner = self.tape.inner.borrow();
        let node = &inner.nodes[self.idx];
        if node.requires_grad {
            node.grad.clone()
        } else {
            None
        }
    }

    /// The tape this variable belongs to.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    fn unary(&self, op: Op, value: Matrix) -> Var {
        let requires = self.tape.requires_grad(self.idx) || !matches!(op, Op::Leaf);
        self.tape.push(value, requires, op)
    }

    fn binary(&self, other: &Var, op: Op, value: Matrix) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "cannot combine Vars from different tapes"
        );
        self.tape.push(value, true, op)
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let value = self
            .value()
            .matmul(&rhs.value())
            .expect("Var::matmul shape mismatch");
        self.binary(rhs, Op::MatMul(self.idx, rhs.idx), value)
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Var) -> Var {
        let value = self
            .value()
            .add(&rhs.value())
            .expect("Var::add shape mismatch");
        self.binary(rhs, Op::Add(self.idx, rhs.idx), value)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Var) -> Var {
        let value = self
            .value()
            .sub(&rhs.value())
            .expect("Var::sub shape mismatch");
        self.binary(rhs, Op::Sub(self.idx, rhs.idx), value)
    }

    /// Element-wise product.
    pub fn mul(&self, rhs: &Var) -> Var {
        let value = self
            .value()
            .hadamard(&rhs.value())
            .expect("Var::mul shape mismatch");
        self.binary(rhs, Op::Mul(self.idx, rhs.idx), value)
    }

    /// Add a `1 × cols` bias row to every row.
    pub fn add_row_broadcast(&self, row: &Var) -> Var {
        let value = self
            .value()
            .add_row_broadcast(&row.value())
            .expect("Var::add_row_broadcast shape mismatch");
        self.binary(row, Op::AddRowBroadcast(self.idx, row.idx), value)
    }

    /// Multiply every element by a `1 × 1` scalar variable.
    pub fn mul_scalar_var(&self, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "mul_scalar_var expects a 1x1 Var");
        let value = self.value().scale(scalar.value().get(0, 0));
        self.binary(scalar, Op::MulScalarBroadcast(self.idx, scalar.idx), value)
    }

    /// Add a `1 × 1` scalar variable to every element.
    pub fn add_scalar_var(&self, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "add_scalar_var expects a 1x1 Var");
        let s = scalar.value().get(0, 0);
        let value = self.value().map(|v| v + s);
        self.binary(scalar, Op::AddScalarBroadcast(self.idx, scalar.idx), value)
    }

    /// Multiply every element by a constant scalar.
    pub fn scale(&self, k: f32) -> Var {
        let value = self.value().scale(k);
        self.unary(Op::Scale(self.idx, k), value)
    }

    /// Negate every element.
    pub fn neg(&self) -> Var {
        let value = self.value().scale(-1.0);
        self.unary(Op::Neg(self.idx), value)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let value = self.value().map(|v| v.max(0.0));
        self.unary(Op::Relu(self.idx), value)
    }

    /// Leaky rectified linear unit with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let value = self.value().map(|v| if v > 0.0 { v } else { slope * v });
        self.unary(Op::LeakyRelu(self.idx, slope), value)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        self.unary(Op::Sigmoid(self.idx), value)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.value().map(f32::tanh);
        self.unary(Op::Tanh(self.idx), value)
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let value = self.value().map(f32::exp);
        self.unary(Op::Exp(self.idx), value)
    }

    /// Element-wise square.
    pub fn square(&self) -> Var {
        let value = self.value().map(|v| v * v);
        self.unary(Op::Square(self.idx), value)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Var {
        let value = self.value().softmax_rows();
        self.unary(Op::SoftmaxRows(self.idx), value)
    }

    /// Sum of all elements as a `1 × 1` node.
    pub fn sum(&self) -> Var {
        let value = Matrix::filled(1, 1, self.value().sum());
        self.unary(Op::Sum(self.idx), value)
    }

    /// Mean of all elements as a `1 × 1` node.
    pub fn mean(&self) -> Var {
        let value = Matrix::filled(1, 1, self.value().mean());
        self.unary(Op::Mean(self.idx), value)
    }

    /// Per-row sums as an `rows × 1` node.
    pub fn sum_rows_keep(&self) -> Var {
        let value = self.value().sum_rows();
        self.unary(Op::SumRowsKeep(self.idx), value)
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        let value = self.value().transpose();
        self.unary(Op::Transpose(self.idx), value)
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Var) -> Var {
        let value = self
            .value()
            .concat_cols(&rhs.value())
            .expect("Var::concat_cols shape mismatch");
        self.binary(rhs, Op::ConcatCols(self.idx, rhs.idx), value)
    }

    /// Vertical concatenation.
    pub fn concat_rows(&self, rhs: &Var) -> Var {
        let value = self
            .value()
            .concat_rows(&rhs.value())
            .expect("Var::concat_rows shape mismatch");
        self.binary(rhs, Op::ConcatRows(self.idx, rhs.idx), value)
    }

    /// Column slice `self[:, start..end]`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Var {
        let value = self
            .value()
            .slice_cols(start, end)
            .expect("Var::slice_cols out of bounds");
        self.unary(Op::SliceCols(self.idx, start, end), value)
    }

    /// Row slice `self[start..end, :]`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Var {
        let value = self
            .value()
            .slice_rows(start, end)
            .expect("Var::slice_rows out of bounds");
        self.unary(Op::SliceRows(self.idx, start, end), value)
    }

    /// Mean-squared error against a target variable: `mean((self − target)²)`.
    pub fn mse(&self, target: &Var) -> Var {
        self.sub(target).square().mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite_difference_grad;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    fn grad_check<F>(param: Matrix, forward: F)
    where
        F: Fn(&Tape, &Var) -> Var,
    {
        // analytic
        let tape = Tape::new();
        let p = tape.leaf(param.clone(), true);
        let loss = forward(&tape, &p);
        tape.backward(&loss);
        let analytic = p.grad().expect("analytic gradient");

        // numeric
        let numeric = finite_difference_grad(
            &param,
            |m| {
                let t = Tape::new();
                let v = t.leaf(m.clone(), true);
                forward(&t, &v).value().get(0, 0)
            },
            1e-2,
        );
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < crate::GRAD_CHECK_TOL,
            "gradient check failed: max diff {diff}\nanalytic {analytic:?}\nnumeric {numeric:?}"
        );
    }

    #[test]
    fn scalar_chain_rule() {
        // loss = mean((x * 3)²) for scalar x=2 → loss = 36, dloss/dx = 2*6*3 = 36
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 2.0), true);
        let loss = x.scale(3.0).square().mean();
        assert_close(loss.value().get(0, 0), 36.0, 1e-4);
        tape.backward(&loss);
        assert_close(x.grad().unwrap().get(0, 0), 36.0, 1e-3);
    }

    #[test]
    fn matmul_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.5, -1.0], vec![2.0, 0.3]]),
            |t, p| {
                let w = t.constant(Matrix::from_rows(vec![vec![1.0, 2.0], vec![-0.5, 0.7]]));
                p.matmul(&w).square().mean()
            },
        );
    }

    #[test]
    fn add_sub_mul_gradients() {
        grad_check(Matrix::from_rows(vec![vec![0.2, 0.4, -0.8]]), |t, p| {
            let c = t.constant(Matrix::from_rows(vec![vec![1.0, -2.0, 0.5]]));
            p.add(&c).mul(&c).sub(&p.scale(0.3)).square().mean()
        });
    }

    #[test]
    fn activation_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.3, -0.6], vec![1.2, -1.5]]),
            |_, p| p.sigmoid().square().mean(),
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.3, -0.6], vec![1.2, -1.5]]),
            |_, p| p.tanh().square().mean(),
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.3, -0.6], vec![1.2, -1.5]]),
            |_, p| p.leaky_relu(0.2).square().mean(),
        );
        grad_check(
            Matrix::from_rows(vec![vec![0.31, -0.62], vec![1.2, -1.5]]),
            |_, p| p.relu().square().mean(),
        );
        grad_check(Matrix::from_rows(vec![vec![0.3, -0.6]]), |_, p| {
            p.exp().mean()
        });
    }

    #[test]
    fn softmax_gradients() {
        grad_check(
            Matrix::from_rows(vec![vec![0.5, 1.0, -1.0], vec![2.0, 0.1, 0.4]]),
            |t, p| {
                let target = t.constant(Matrix::from_rows(vec![
                    vec![1.0, 0.0, 0.0],
                    vec![0.0, 1.0, 0.0],
                ]));
                p.softmax_rows().sub(&target).square().mean()
            },
        );
    }

    #[test]
    fn broadcast_gradients() {
        grad_check(Matrix::from_rows(vec![vec![0.1, -0.4, 0.9]]), |t, p| {
            let x = t.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1));
            x.add_row_broadcast(p).square().mean()
        });
    }

    #[test]
    fn scalar_var_broadcast_gradients() {
        grad_check(Matrix::filled(1, 1, 0.7), |t, p| {
            let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.2));
            x.mul_scalar_var(p).square().mean()
        });
        grad_check(Matrix::filled(1, 1, -0.3), |t, p| {
            let x = t.constant(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.2));
            x.add_scalar_var(p).square().mean()
        });
    }

    #[test]
    fn structural_op_gradients() {
        grad_check(
            Matrix::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.3),
            |t, p| {
                let other = t.constant(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.1));
                p.slice_cols(1, 3)
                    .concat_cols(&other)
                    .transpose()
                    .square()
                    .mean()
            },
        );
        grad_check(
            Matrix::from_fn(4, 2, |r, c| (r + c) as f32 * 0.25),
            |t, p| {
                let other = t.constant(Matrix::from_fn(2, 2, |r, c| (r * c) as f32 * 0.5));
                p.slice_rows(1, 3).concat_rows(&other).square().mean()
            },
        );
    }

    #[test]
    fn reduction_gradients() {
        grad_check(
            Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4),
            |_, p| p.sum_rows_keep().square().mean(),
        );
        grad_check(
            Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.4),
            |_, p| p.square().sum().scale(0.5),
        );
    }

    #[test]
    fn mse_helper_matches_manual() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(vec![vec![1.0, 2.0]]), true);
        let b = tape.constant(Matrix::from_rows(vec![vec![0.0, 0.0]]));
        let loss = a.mse(&b);
        assert_close(loss.value().get(0, 0), 2.5, 1e-5);
        tape.backward(&loss);
        let g = a.grad().unwrap();
        assert_close(g.get(0, 0), 1.0, 1e-4);
        assert_close(g.get(0, 1), 2.0, 1e-4);
    }

    #[test]
    fn gradient_accumulates_over_reused_nodes() {
        // loss = mean((x + x)²) → d/dx = 8x per element / len
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 3.0), true);
        let loss = x.add(&x).square().mean();
        tape.backward(&loss);
        assert_close(x.grad().unwrap().get(0, 0), 24.0, 1e-3);
    }

    #[test]
    fn constants_do_not_expose_grads() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 3.0), true);
        let c = tape.constant(Matrix::filled(1, 1, 2.0));
        let loss = x.mul(&c).square().mean();
        tape.backward(&loss);
        assert!(x.grad().is_some());
        assert!(c.grad().is_none());
    }

    #[test]
    fn repeated_backward_resets_grads() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::filled(1, 1, 2.0), true);
        let loss = x.square().mean();
        tape.backward(&loss);
        let g1 = x.grad().unwrap().get(0, 0);
        tape.backward(&loss);
        let g2 = x.grad().unwrap().get(0, 0);
        assert_close(g1, g2, 1e-6);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar_loss() {
        let tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 2), true);
        let y = x.scale(2.0);
        tape.backward(&y);
    }

    #[test]
    #[should_panic(expected = "different tape")]
    fn mixing_tapes_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Matrix::zeros(1, 1), true);
        let b = t2.leaf(Matrix::zeros(1, 1), true);
        let _ = a.add(&b);
    }

    #[test]
    fn tape_len_tracks_nodes() {
        let tape = Tape::new();
        assert!(tape.is_empty());
        let a = tape.leaf(Matrix::zeros(1, 1), true);
        let _b = a.scale(2.0);
        assert_eq!(tape.len(), 2);
    }
}
