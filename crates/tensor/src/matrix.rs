//! Dense row-major `f32` matrix.
//!
//! [`Matrix`] is the value type flowing through the autograd tape and the GNN
//! layers. It deliberately keeps a simple contiguous `Vec<f32>` storage so
//! that element-wise kernels vectorise well and the memory layout is obvious.

use crate::{Result, TensorError};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// The matrix is the only tensor rank used in the DQuaG reproduction: feature
/// graphs are small (tens of nodes), so per-sample node-feature matrices of
/// shape `n_features × hidden` cover every layer in the model.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Create a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from a flat row-major vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidConstruction {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix from nested row vectors.
    ///
    /// Panics if rows are ragged; intended for literals in tests and examples.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            assert_eq!(row.len(), n_cols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Build a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read the element at `(row, col)`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Fallible element read.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f32> {
        if row >= self.rows || col >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        Ok(self.data[row * self.cols + col])
    }

    /// Write the element at `(row, col)`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `self · rhs`, through the runtime-dispatched kernel in
    /// [`crate::simd`] (AVX2+FMA register tiles when the CPU has them, the
    /// portable i-k-j loop otherwise).
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::simd::matmul_into(
            &mut out.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Add a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Result<Matrix> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: row.shape(),
            });
        }
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += row.data[c];
            }
        }
        Ok(out)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, k: f32) -> Matrix {
        self.map(|v| v * k)
    }

    /// Apply `f` to every element.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place variant of [`Matrix::map`].
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    // ------------------------------------------------------------------
    // Reductions and statistics
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Per-row sums as an `rows × 1` column vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Per-column sums as a `1 × cols` row vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Maximum element; `None` for an empty matrix.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Minimum element; `None` for an empty matrix.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in a given row.
    pub fn argmax_row(&self, row: usize) -> usize {
        let r = self.row(row);
        r.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// True if no element is NaN or infinite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// Returns `f32::INFINITY` when shapes differ; convenient for tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        if self.shape() != other.shape() {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Concatenate horizontally (`self` left, `rhs` right).
    pub fn concat_cols(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "concat_cols",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(rhs.row(r));
        }
        Ok(out)
    }

    /// Concatenate vertically (`self` on top, `rhs` below).
    pub fn concat_rows(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// Copy a contiguous column range `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.cols {
            return Err(TensorError::IndexOutOfBounds {
                row: 0,
                col: end,
                shape: self.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.data[r * out.cols..(r + 1) * out.cols].copy_from_slice(&self.row(r)[start..end]);
        }
        Ok(out)
    }

    /// Copy a contiguous row range `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                row: end,
                col: 0,
                shape: self.shape(),
            });
        }
        Ok(Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    // ------------------------------------------------------------------
    // Batched (block-stacked) operations
    //
    // A batch of B samples over an n-node feature graph is laid out as B
    // vertically stacked blocks of n rows. The operations below act on that
    // layout: per-block products, one-block-to-every-block broadcasts, and
    // block-wise transposed broadcasts. They reuse the exact i-k-j kernel of
    // [`Matrix::matmul`], so a batched forward pass is bit-identical to the
    // per-sample one.
    // ------------------------------------------------------------------

    /// Per-block matrix product: `self` is `B` stacked `p × k` blocks, `rhs`
    /// is `B` stacked `k × d` blocks, and `out_b = self_b · rhs_b` giving `B`
    /// stacked `p × d` blocks.
    pub fn block_matmul(&self, rhs: &Matrix, blocks: usize) -> Result<Matrix> {
        self.block_matmul_impl(rhs, blocks, false)
    }

    /// Per-block matrix product with a fused ReLU epilogue:
    /// `out_b = relu(self_b · rhs_b)` at no extra pass over the output.
    pub fn block_matmul_relu(&self, rhs: &Matrix, blocks: usize) -> Result<Matrix> {
        self.block_matmul_impl(rhs, blocks, true)
    }

    fn block_matmul_impl(&self, rhs: &Matrix, blocks: usize, relu: bool) -> Result<Matrix> {
        let compatible = blocks > 0
            && self.rows.is_multiple_of(blocks)
            && rhs.rows.is_multiple_of(blocks)
            && self.cols == rhs.rows / blocks;
        if !compatible {
            return Err(TensorError::ShapeMismatch {
                op: "block_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let p = self.rows / blocks;
        let k = self.cols;
        let d = rhs.cols;
        let mut out = Matrix::zeros(self.rows, d);
        for b in 0..blocks {
            crate::simd::matmul_opts_into(
                &mut out.data[b * p * d..(b + 1) * p * d],
                &self.data[b * p * k..(b + 1) * p * k],
                &rhs.data[b * k * d..(b + 1) * k * d],
                relu,
                p,
                k,
                d,
            );
        }
        Ok(out)
    }

    /// Apply one `p × k` matrix to every `k`-row block of `rhs`
    /// (`out_b = self · rhs_b`): the batched form of a shared graph operator
    /// (adjacency, normalised adjacency) multiplying per-sample features. The
    /// number of blocks is inferred as `rhs.rows / k`.
    pub fn repeat_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols == 0 || !rhs.rows.is_multiple_of(self.cols) {
            return Err(TensorError::ShapeMismatch {
                op: "repeat_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let blocks = rhs.rows / self.cols;
        let p = self.rows;
        let k = self.cols;
        let d = rhs.cols;
        let mut out = Matrix::zeros(blocks * p, d);
        for b in 0..blocks {
            crate::simd::matmul_into(
                &mut out.data[b * p * d..(b + 1) * p * d],
                &self.data,
                &rhs.data[b * k * d..(b + 1) * k * d],
                p,
                k,
                d,
            );
        }
        Ok(out)
    }

    /// Block-wise transposed broadcast of a stacked column vector: `self` is
    /// `B` stacked `n × 1` blocks, the output is `B` stacked `n × n` blocks
    /// with `out[b·n + i][j] = self[b·n + j]` — every row of block `b` is that
    /// block's segment transposed. This is the batched form of
    /// `v.matmul(ones_row).transpose()`.
    pub fn block_row_broadcast(&self, block: usize) -> Result<Matrix> {
        if self.cols != 1 || block == 0 || !self.rows.is_multiple_of(block) {
            return Err(TensorError::ShapeMismatch {
                op: "block_row_broadcast",
                lhs: self.shape(),
                rhs: (block, 1),
            });
        }
        let blocks = self.rows / block;
        let mut out = Matrix::zeros(self.rows, block);
        for b in 0..blocks {
            let segment = &self.data[b * block..(b + 1) * block];
            for i in 0..block {
                let row = b * block + i;
                out.data[row * block..(row + 1) * block].copy_from_slice(segment);
            }
        }
        Ok(out)
    }

    /// Add one `n × c` matrix to every `n`-row block of `self` — the batched
    /// form of adding a shared per-sample constant (e.g. an attention mask)
    /// to each sample in a stacked batch.
    pub fn block_add_broadcast(&self, m: &Matrix) -> Result<Matrix> {
        if m.rows == 0 || !self.rows.is_multiple_of(m.rows) || self.cols != m.cols {
            return Err(TensorError::ShapeMismatch {
                op: "block_add_broadcast",
                lhs: self.shape(),
                rhs: m.shape(),
            });
        }
        let mut out = self.clone();
        for chunk in out.data.chunks_mut(m.data.len()) {
            for (o, &v) in chunk.iter_mut().zip(m.data.iter()) {
                *o += v;
            }
        }
        Ok(out)
    }

    /// Fused dense layer: `self · w + bias` with `bias` broadcast over rows,
    /// accumulated inside the matmul kernel so the bias add costs no extra
    /// pass over the output.
    pub fn matmul_bias(&self, w: &Matrix, bias: &Matrix) -> Result<Matrix> {
        if self.cols != w.rows || bias.rows != 1 || bias.cols != w.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias",
                lhs: self.shape(),
                rhs: w.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, w.cols);
        crate::simd::matmul_bias_into(
            &mut out.data,
            &self.data,
            &w.data,
            &bias.data,
            self.rows,
            self.cols,
            w.cols,
        );
        Ok(out)
    }

    /// Fused dense layer plus activation: `relu(self · w + bias)`, with both
    /// the bias add and the rectifier folded into the matmul kernel's store
    /// epilogue.
    pub fn matmul_bias_relu(&self, w: &Matrix, bias: &Matrix) -> Result<Matrix> {
        if self.cols != w.rows || bias.rows != 1 || bias.cols != w.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bias_relu",
                lhs: self.shape(),
                rhs: w.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, w.cols);
        crate::simd::matmul_bias_relu_into(
            &mut out.data,
            &self.data,
            &w.data,
            &bias.data,
            self.rows,
            self.cols,
            w.cols,
        );
        Ok(out)
    }

    /// Fused GAT attention logits over `B` stacked blocks:
    /// `out[b·n + i][j] = leaky(self[b·n + i] + dst[b·n + j], slope) + mask[i][j]`
    /// — the batched `src ⊕ dstᵀ` grid, LeakyReLU and additive mask in one
    /// pass. `self` and `dst` are `(B·n) × 1`, `mask` is `n × n`.
    pub fn attention_logits(&self, dst: &Matrix, mask: &Matrix, slope: f32) -> Result<Matrix> {
        let n = mask.rows;
        let compatible = self.cols == 1
            && dst.cols == 1
            && dst.rows == self.rows
            && mask.cols == n
            && n > 0
            && self.rows.is_multiple_of(n);
        if !compatible {
            return Err(TensorError::ShapeMismatch {
                op: "attention_logits",
                lhs: self.shape(),
                rhs: mask.shape(),
            });
        }
        let blocks = self.rows / n;
        let mut out = Matrix::zeros(self.rows, n);
        for b in 0..blocks {
            let src_seg = &self.data[b * n..(b + 1) * n];
            let dst_seg = &dst.data[b * n..(b + 1) * n];
            for (i, &s) in src_seg.iter().enumerate() {
                let row = &mut out.data[(b * n + i) * n..(b * n + i + 1) * n];
                for j in 0..n {
                    let pre = s + dst_seg[j];
                    let act = if pre > 0.0 { pre } else { slope * pre };
                    row[j] = act + mask.data[i * n + j];
                }
            }
        }
        Ok(out)
    }

    /// Fused `self + s · rhs` for a scalar `s` — one pass instead of a scale
    /// pass plus an add pass.
    pub fn scaled_add(&self, rhs: &Matrix, s: f32) -> Result<Matrix> {
        self.zip_with(rhs, "scaled_add", |a, b| b.mul_add(s, a))
    }

    /// Stack `times` copies of `self` vertically.
    pub fn tile_rows(&self, times: usize) -> Matrix {
        let mut data = Vec::with_capacity(self.data.len() * times);
        for _ in 0..times {
            data.extend_from_slice(&self.data);
        }
        Matrix {
            rows: self.rows * times,
            cols: self.cols,
            data,
        }
    }

    /// Row-wise softmax (each row sums to one). Numerically stabilised by
    /// subtracting the row maximum before exponentiation; the exponential is
    /// [`fast_exp`] (≈1e-7 relative accuracy), which roughly halves softmax
    /// cost on the attention hot path.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            // A NaN or +∞ logit admits no meaningful distribution. The max
            // fold below silently skips NaN and `denom > 0.0` is false for a
            // NaN denominator, so without this check a poisoned row would
            // leak *unnormalised* — finite but wrong — exp values. Propagate
            // NaN across the row instead. (−∞ is well-defined: exp → 0.)
            if self
                .row(r)
                .iter()
                .any(|v| v.is_nan() || *v == f32::INFINITY)
            {
                for c in 0..self.cols {
                    out.set(r, c, f32::NAN);
                }
                continue;
            }
            let row_max = self
                .row(r)
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for c in 0..self.cols {
                let e = fast_exp(self.get(r, c) - row_max);
                out.set(r, c, e);
                denom += e;
            }
            if denom > 0.0 {
                for c in 0..self.cols {
                    out.set(r, c, out.get(r, c) / denom);
                }
            }
        }
        out
    }
}

/// Fast `e^x`: range reduction `x = n·ln2 + r` with a hi/lo split of `ln 2`,
/// a degree-6 Taylor polynomial for `e^r` on `|r| ≤ ln2/2`, and an exponent
/// rebuild via the float bit layout. Relative accuracy ≈ 1e-7 — two orders
/// of magnitude inside the 1e-5 score-equivalence budget — at a fraction of
/// the libm call cost. Inputs below the `f32` underflow range return 0
/// (exactly what masked attention logits need).
#[inline]
fn fast_exp(x: f32) -> f32 {
    if x.is_nan() {
        // Without this, NaN slips past both range guards (every comparison
        // with NaN is false) into the exponent rebuild, which would turn it
        // into an arbitrary *finite* value. Propagate it like `exp` does.
        return f32::NAN;
    }
    if x < -87.0 {
        return 0.0;
    }
    if x > 88.0 {
        return f32::INFINITY;
    }
    const INV_LN2: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let n = (x * INV_LN2).round();
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // e^r via Horner; |r| ≤ 0.3466 keeps the degree-6 truncation ≈ 1e-8.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0 + r * (1.0 / 720.0))))));
    let scale = f32::from_bits(((n as i32 + 127) << 23) as u32);
    scale * p
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for c in 0..max_cols {
                write!(f, "{:>10.4}", self.get(r, c))?;
                if c + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_ones_filled_identity() {
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::ones(2, 3).sum(), 6.0);
        assert_eq!(Matrix::filled(2, 2, 2.5).sum(), 10.0);
        let i = Matrix::identity(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidConstruction { .. }));
    }

    #[test]
    fn from_fn_fills_positions() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn row_and_col_vectors() {
        let r = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        let c = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.col(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert!(close(c.get(0, 0), 19.0));
        assert!(close(c.get(0, 1), 22.0));
        assert!(close(c.get(1, 0), 43.0));
        assert!(close(c.get(1, 1), 50.0));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        let t = a.transpose();
        assert_eq!(t.shape(), (4, 2));
        assert_eq!(t.transpose(), a);
        assert_eq!(t.get(3, 1), a.get(1, 3));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        let b = Matrix::from_rows(vec![vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap(), Matrix::from_rows(vec![vec![4.0, 7.0]]));
        assert_eq!(b.sub(&a).unwrap(), Matrix::from_rows(vec![vec![2.0, 3.0]]));
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(vec![vec![3.0, 10.0]])
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(vec![vec![2.0, 4.0]]));
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.hadamard(&b).is_err());
    }

    #[test]
    fn add_row_broadcast_adds_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let row = Matrix::row_vector(&[1.0, -2.0]);
        let out = a.add_row_broadcast(&row).unwrap();
        for r in 0..3 {
            assert_eq!(out.get(r, 0), 1.0);
            assert_eq!(out.get(r, 1), -2.0);
        }
        let bad = Matrix::row_vector(&[1.0]);
        assert!(a.add_row_broadcast(&bad).is_err());
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(close(m.sum(), 10.0));
        assert!(close(m.mean(), 2.5));
        assert_eq!(m.sum_rows(), Matrix::col_vector(&[3.0, 7.0]));
        assert_eq!(m.sum_cols(), Matrix::row_vector(&[4.0, 6.0]));
        assert_eq!(m.max(), Some(4.0));
        assert_eq!(m.min(), Some(1.0));
        assert!(close(m.frobenius_norm(), (30.0f32).sqrt()));
    }

    #[test]
    fn empty_matrix_reductions() {
        let m = Matrix::zeros(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), None);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn argmax_row_picks_largest() {
        let m = Matrix::from_rows(vec![vec![0.1, 0.9, 0.3], vec![5.0, 1.0, 2.0]]);
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
    }

    #[test]
    fn concat_cols_and_rows() {
        let a = Matrix::from_rows(vec![vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(vec![vec![3.0], vec![4.0]]);
        let h = a.concat_cols(&b).unwrap();
        assert_eq!(h, Matrix::from_rows(vec![vec![1.0, 3.0], vec![2.0, 4.0]]));
        let v = a.concat_rows(&b).unwrap();
        assert_eq!(v, Matrix::col_vector(&[1.0, 2.0, 3.0, 4.0]));
        assert!(a.concat_cols(&Matrix::zeros(3, 1)).is_err());
        assert!(a.concat_rows(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn slicing() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let cols = m.slice_cols(1, 3).unwrap();
        assert_eq!(cols.shape(), (3, 2));
        assert_eq!(cols.get(2, 0), 9.0);
        let rows = m.slice_rows(1, 2).unwrap();
        assert_eq!(rows.shape(), (1, 4));
        assert_eq!(rows.get(0, 3), 7.0);
        assert!(m.slice_cols(3, 7).is_err());
        assert!(m.slice_rows(2, 5).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![-1.0, 0.0, 100.0]]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!(close(total, 1.0));
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(s.get(0, 1) > s.get(0, 0));
        assert!(s.get(1, 2) > 0.99);
        assert!(s.is_finite());
    }

    #[test]
    fn fast_exp_tracks_libm_exp() {
        // sweep the softmax-relevant range plus under/overflow edges
        let mut x = -90.0f32;
        while x < 10.0 {
            let got = fast_exp(x);
            let want = x.exp();
            if want == 0.0 || x < -87.0 {
                assert!((0.0..1e-30).contains(&got), "underflow at {x}: {got}");
            } else {
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-6, "x={x}: fast {got} vs libm {want} (rel {rel})");
            }
            x += 0.0173;
        }
        assert_eq!(fast_exp(-1.0e9), 0.0, "masked logits underflow to zero");
        assert_eq!(fast_exp(100.0), f32::INFINITY);
        assert!((fast_exp(0.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn fast_exp_poison_values_yield_defined_results() {
        // NaN must come out as NaN — before the guard it fell through both
        // range checks into the exponent rebuild and came out finite.
        assert!(fast_exp(f32::NAN).is_nan());
        assert_eq!(fast_exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn softmax_rows_poison_inputs_propagate_nan_not_garbage() {
        // A NaN logit poisons its whole row to NaN; clean rows are untouched.
        let m = Matrix::from_rows(vec![vec![1.0, f32::NAN, 3.0], vec![1.0, 2.0, 3.0]]);
        let s = m.softmax_rows();
        assert!(s.row(0).iter().all(|v| v.is_nan()), "{s:?}");
        assert!(close(s.row(1).iter().sum(), 1.0));

        // +∞ likewise: exp(∞ − ∞) has no meaningful value, so the row must
        // not come out finite (the old code emitted raw unnormalised exps).
        let m = Matrix::from_rows(vec![vec![f32::INFINITY, 2.0, 3.0]]);
        assert!(m.softmax_rows().row(0).iter().all(|v| v.is_nan()));

        // −∞ is well-defined: that logit gets probability zero and the rest
        // renormalise.
        let m = Matrix::from_rows(vec![vec![f32::NEG_INFINITY, 0.0, 0.0]]);
        let s = m.softmax_rows();
        assert_eq!(s.get(0, 0), 0.0);
        assert!(close(s.get(0, 1), 0.5));
        assert!(close(s.get(0, 2), 0.5));

        // An all-(−∞) row has no distribution either; it must not be finite.
        let m = Matrix::from_rows(vec![vec![f32::NEG_INFINITY, f32::NEG_INFINITY]]);
        assert!(m.softmax_rows().row(0).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn matmul_bias_matches_matmul_plus_broadcast() {
        let a = Matrix::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 0.4);
        let w = Matrix::from_fn(3, 7, |r, c| ((r + c) % 5) as f32 * 0.3 - 0.5);
        let bias = Matrix::from_fn(1, 7, |_, c| c as f32 * 0.05);
        let fused = a.matmul_bias(&w, &bias).unwrap();
        let unfused = a.matmul(&w).unwrap().add_row_broadcast(&bias).unwrap();
        assert!(fused.max_abs_diff(&unfused) < 1e-5);
        assert!(a.matmul_bias(&w, &Matrix::zeros(1, 3)).is_err());
        assert!(a.matmul_bias(&Matrix::zeros(4, 7), &bias).is_err());
    }

    #[test]
    fn attention_logits_matches_unfused_chain() {
        let n = 3;
        let src = Matrix::col_vector(&[0.4, -0.6, 1.2, -0.1, 0.8, -1.4]);
        let dst = Matrix::col_vector(&[0.2, 0.9, -0.5, 1.1, -0.7, 0.3]);
        let mask = Matrix::from_rows(vec![
            vec![0.0, -1e9, 0.0],
            vec![-1e9, 0.0, 0.0],
            vec![0.0, 0.0, -1e9],
        ]);
        let fused = src.attention_logits(&dst, &mask, 0.2).unwrap();
        let grid = src
            .matmul(&Matrix::ones(1, n))
            .unwrap()
            .add(&dst.block_row_broadcast(n).unwrap())
            .unwrap()
            .map(|v| if v > 0.0 { v } else { 0.2 * v })
            .block_add_broadcast(&mask)
            .unwrap();
        assert!(fused.max_abs_diff(&grid) < 1e-4);
        assert!(src
            .attention_logits(&dst, &Matrix::zeros(4, 4), 0.2)
            .is_err());
    }

    #[test]
    fn scaled_add_matches_scale_then_add() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.5);
        let fused = a.scaled_add(&b, 2.5).unwrap();
        let unfused = a.add(&b.scale(2.5)).unwrap();
        assert!(fused.max_abs_diff(&unfused) < 1e-6);
        assert!(a.scaled_add(&Matrix::zeros(2, 2), 1.0).is_err());
    }

    #[test]
    fn try_get_bounds() {
        let m = Matrix::zeros(2, 2);
        assert!(m.try_get(1, 1).is_ok());
        assert!(m.try_get(2, 0).is_err());
    }

    #[test]
    fn max_abs_diff_detects_shape_and_values() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::filled(2, 2, 0.5);
        assert!(close(a.max_abs_diff(&b), 0.5));
        assert_eq!(a.max_abs_diff(&Matrix::zeros(1, 1)), f32::INFINITY);
    }

    #[test]
    fn block_matmul_matches_per_block_matmul() {
        let a = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32 * 0.5 - 1.0); // 3 blocks of 2x2
        let b = Matrix::from_fn(6, 3, |r, c| (r + c) as f32 * 0.25); // 3 blocks of 2x3
        let out = a.block_matmul(&b, 3).unwrap();
        assert_eq!(out.shape(), (6, 3));
        for blk in 0..3 {
            let ab = a.slice_rows(blk * 2, (blk + 1) * 2).unwrap();
            let bb = b.slice_rows(blk * 2, (blk + 1) * 2).unwrap();
            let expected = ab.matmul(&bb).unwrap();
            let got = out.slice_rows(blk * 2, (blk + 1) * 2).unwrap();
            assert_eq!(got, expected, "block {blk} must match a plain matmul");
        }
        // one block degenerates to a plain matmul, bit for bit
        assert_eq!(
            a.block_matmul(&Matrix::from_fn(2, 4, |r, c| (r * c) as f32), 1)
                .unwrap(),
            a.matmul(&Matrix::from_fn(2, 4, |r, c| (r * c) as f32))
                .unwrap()
        );
        assert!(a.block_matmul(&b, 4).is_err(), "6 rows don't split into 4");
        assert!(a.block_matmul(&Matrix::zeros(9, 3), 3).is_err());
    }

    #[test]
    fn repeat_matmul_applies_one_operator_per_block() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![0.0, -1.0]]);
        let h = Matrix::from_fn(6, 3, |r, c| (r as f32 - c as f32) * 0.3); // 3 blocks of 2x3
        let out = a.repeat_matmul(&h).unwrap();
        assert_eq!(out.shape(), (6, 3));
        for blk in 0..3 {
            let hb = h.slice_rows(blk * 2, (blk + 1) * 2).unwrap();
            let expected = a.matmul(&hb).unwrap();
            let got = out.slice_rows(blk * 2, (blk + 1) * 2).unwrap();
            assert_eq!(got, expected);
        }
        assert!(a.repeat_matmul(&Matrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn block_row_broadcast_transposes_each_block() {
        let v = Matrix::col_vector(&[1.0, 2.0, 3.0, 4.0]); // 2 blocks of 2
        let out = v.block_row_broadcast(2).unwrap();
        assert_eq!(
            out,
            Matrix::from_rows(vec![
                vec![1.0, 2.0],
                vec![1.0, 2.0],
                vec![3.0, 4.0],
                vec![3.0, 4.0],
            ])
        );
        // one block is exactly v.matmul(ones).transpose()
        let single = Matrix::col_vector(&[0.5, -1.5, 2.5]);
        assert_eq!(
            single.block_row_broadcast(3).unwrap(),
            single.matmul(&Matrix::ones(1, 3)).unwrap().transpose()
        );
        assert!(v.block_row_broadcast(3).is_err());
        assert!(Matrix::zeros(4, 2).block_row_broadcast(2).is_err());
    }

    #[test]
    fn block_add_broadcast_adds_to_every_block() {
        let h = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32); // 2 blocks of 2x2
        let m = Matrix::from_rows(vec![vec![10.0, 20.0], vec![30.0, 40.0]]);
        let out = h.block_add_broadcast(&m).unwrap();
        assert_eq!(out.get(0, 0), 10.0);
        assert_eq!(out.get(1, 1), 43.0);
        assert_eq!(out.get(2, 0), 14.0);
        assert_eq!(out.get(3, 1), 47.0);
        assert!(h.block_add_broadcast(&Matrix::zeros(3, 2)).is_err());
        assert!(h.block_add_broadcast(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn tile_rows_stacks_copies() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0]]);
        let tiled = m.tile_rows(3);
        assert_eq!(tiled.shape(), (3, 2));
        for r in 0..3 {
            assert_eq!(tiled.row(r), &[1.0, 2.0]);
        }
        assert_eq!(m.tile_rows(0).shape(), (0, 2));
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{:?}", m);
        assert!(
            s.len() < 2_500,
            "debug output should truncate large matrices"
        );
    }
}
