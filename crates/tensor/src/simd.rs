//! Runtime-dispatched dense matrix-multiply kernels.
//!
//! Rust's default x86-64 target only assumes SSE2, which caps the naive
//! auto-vectorised matmul well below what the hardware can do. This module
//! detects AVX2+FMA at runtime (once, cached) and routes every matrix
//! product — plain, per-block and repeated-block — through a register-tiled
//! microkernel when available, falling back to the original portable loop
//! otherwise.
//!
//! ## Determinism contract
//!
//! Every kernel computes `out[i][j]` as a fused-multiply-add chain over `k`
//! in ascending order, and the code path for an element depends only on the
//! operand *shapes* — never on which row tile or batch position the element
//! landed in. Scalar remainders use [`f32::mul_add`], which rounds exactly
//! like the vector FMA lanes. Consequently a row's result is bit-identical
//! whether it is multiplied alone (`12 × k`) or as part of a stacked batch
//! (`B·12 × k`) — the property the batched-inference equivalence suite
//! pins down.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

/// `out = a · b (+ bias)` with `a` row-major `n × k`, `b` row-major
/// `k × d`, `out` row-major `n × d` and an optional `1 × d` bias row folded
/// into the accumulator initialisation. `out` is fully overwritten.
type Kernel = unsafe fn(&mut [f32], &[f32], &[f32], Option<&[f32]>, bool, usize, usize, usize);

/// Which matrix-multiply implementation [`crate::Matrix::matmul`] and the
/// block variants use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Pick the fastest kernel the CPU supports (the default).
    Auto,
    /// Force the portable scalar loop — the seed implementation. Useful for
    /// bit-stable cross-platform comparisons and as the frozen baseline in
    /// before/after benchmarks.
    Portable,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);
static KERNEL: OnceLock<Kernel> = OnceLock::new();
static FINITE_GUARD: AtomicBool = AtomicBool::new(false);

thread_local! {
    static GUARD_TRIP: Cell<Option<GuardTrip>> = const { Cell::new(None) };
}

/// Record of the first non-finite kernel output the finite guard observed on
/// this thread since the trip was last taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardTrip {
    /// Flat index of the offending element in the output buffer.
    pub index: usize,
    /// Output rows (`n`) of the product that tripped.
    pub rows: usize,
    /// Output columns (`d`) of the product that tripped.
    pub cols: usize,
}

/// Enable or disable the kernel-epilogue finite guard (process-wide).
///
/// When enabled, every product routed through [`dispatch`] scans its output
/// for NaN/Inf after the kernel returns and latches the first violation into
/// a thread-local [`GuardTrip`]. The scan is `O(n·d)` against the kernel's
/// `O(n·k·d)` work, so the cost is a small fraction of the product itself.
/// The guard never alters a computed element, so the determinism contract
/// above is unaffected.
pub fn set_finite_guard(enabled: bool) {
    FINITE_GUARD.store(enabled, Ordering::Relaxed);
}

/// Whether the kernel-epilogue finite guard is currently enabled.
pub fn finite_guard_enabled() -> bool {
    FINITE_GUARD.load(Ordering::Relaxed)
}

/// Take (and clear) this thread's latched guard trip, if any. Trips are
/// per-thread, so a single-threaded inference session that polls between
/// batches attributes a trip to its own forward pass, never to a neighbour.
pub fn take_finite_guard_trip() -> Option<GuardTrip> {
    GUARD_TRIP.with(|slot| slot.take())
}

/// Select the matmul kernel globally (process-wide). Intended for benchmarks
/// and numerical A/B comparisons; concurrent matrix users observe the switch
/// at their next operation, so don't flip it while other threads compute.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(
        match mode {
            KernelMode::Auto => 0,
            KernelMode::Portable => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected kernel mode.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Portable,
        _ => KernelMode::Auto,
    }
}

fn detect() -> Kernel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return matmul_avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return matmul_avx2;
        }
    }
    matmul_scalar
}

/// Dense product `out = a · b`; the single entry point used by
/// `Matrix::matmul`, `Matrix::block_matmul` and `Matrix::repeat_matmul`, so
/// all three stay mutually bit-identical.
pub(crate) fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], n: usize, k: usize, d: usize) {
    dispatch(out, a, b, None, false, n, k, d)
}

/// `out = a · b` with an optional fused ReLU store epilogue.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_opts_into(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    relu: bool,
    n: usize,
    k: usize,
    d: usize,
) {
    dispatch(out, a, b, None, relu, n, k, d)
}

/// Fused `out = a · b + bias` (bias broadcast over rows): the dense-layer
/// fast path; shares kernels — and therefore per-element rounding — with
/// [`matmul_into`].
pub(crate) fn matmul_bias_into(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    n: usize,
    k: usize,
    d: usize,
) {
    assert_eq!(bias.len(), d, "bias shape");
    dispatch(out, a, b, Some(bias), false, n, k, d)
}

/// Fused `out = relu(a · b + bias)`: the dense-layer-plus-activation path.
/// The rectifier is applied in the store epilogue, so the activation costs
/// no extra pass over the output.
pub(crate) fn matmul_bias_relu_into(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    n: usize,
    k: usize,
    d: usize,
) {
    assert_eq!(bias.len(), d, "bias shape");
    dispatch(out, a, b, Some(bias), true, n, k, d)
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    k: usize,
    d: usize,
) {
    assert_eq!(out.len(), n * d, "output buffer shape");
    assert_eq!(a.len(), n * k, "lhs shape");
    assert_eq!(b.len(), k * d, "rhs shape");
    let kernel = if KERNEL_MODE.load(Ordering::Relaxed) == 1 {
        matmul_scalar
    } else {
        *KERNEL.get_or_init(detect)
    };
    // SAFETY: `detect` selects a SIMD kernel only after confirming CPU
    // support, and the slice-length assertions above establish the bounds
    // every kernel relies on.
    unsafe { kernel(out, a, b, bias, relu, n, k, d) }
    if FINITE_GUARD.load(Ordering::Relaxed) {
        // Branch-free detection pass: a float is non-finite iff its
        // magnitude bits reach the exponent-all-ones pattern, so a u32
        // max-reduction over `bits & !sign` finds "any NaN/Inf?" without an
        // early exit — the loop autovectorizes, keeping the guard a small
        // fraction of the kernel's O(n·k·d) even for thin products. The
        // element search runs only on the rare trip path.
        const INF_BITS: u32 = 0x7F80_0000;
        let worst = out
            .iter()
            .fold(0u32, |acc, v| acc.max(v.to_bits() & 0x7FFF_FFFF));
        if worst >= INF_BITS {
            let index = out
                .iter()
                .position(|v| !v.is_finite())
                .expect("a non-finite element exists on the trip path");
            GUARD_TRIP.with(|slot| {
                // Latch only the first violation: the earliest trip names the
                // product that actually went bad, later ones are fallout.
                if slot.get().is_none() {
                    slot.set(Some(GuardTrip {
                        index,
                        rows: n,
                        cols: d,
                    }));
                }
            });
        }
    }
}

/// Portable fallback: the original i-k-j loop. The `a == 0.0` skip keeps
/// sparse operands (adjacency matrices) cheap.
#[allow(clippy::too_many_arguments)]
unsafe fn matmul_scalar(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    k: usize,
    d: usize,
) {
    match bias {
        Some(bias) => {
            for row in out.chunks_mut(d) {
                row.copy_from_slice(bias);
            }
        }
        None => {
            for v in out.iter_mut() {
                *v = 0.0;
            }
        }
    }
    for i in 0..n {
        let out_row = &mut out[i * d..(i + 1) * d];
        for kk in 0..k {
            let a_ik = a[i * k + kk];
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * d..(kk + 1) * d];
            for (o, &v) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * v;
            }
        }
    }
    if relu {
        for v in out.iter_mut() {
            *v = v.max(0.0);
        }
    }
}

/// AVX-512F microkernel: 8-row × 32-column register tiles (16 ZMM
/// accumulators live across the whole `k` loop), 16-wide and scalar column
/// tails, and the shared `d == 1` dot path. Per-element math is the same
/// ascending-`k` FMA chain as the AVX2 kernel and the `mul_add` scalar
/// tails, so tile membership never changes a result.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn matmul_avx512(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    k: usize,
    d: usize,
) {
    if d == 1 {
        return dot_columns_avx512(out, a, b, bias, relu, n, k);
    }
    let mut i = 0;
    while i + 8 <= n {
        row_tile_avx512::<8>(out, a, b, bias, relu, i, k, d);
        i += 8;
    }
    while i + 4 <= n {
        row_tile_avx512::<4>(out, a, b, bias, relu, i, k, d);
        i += 4;
    }
    while i < n {
        row_tile_avx512::<1>(out, a, b, bias, relu, i, k, d);
        i += 1;
    }
}

/// One tile of `R` consecutive output rows starting at row `i` (AVX-512).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn row_tile_avx512<const R: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    i: usize,
    k: usize,
    d: usize,
) {
    let a_ptr = a.as_ptr();
    let b_ptr = b.as_ptr();
    let out_ptr = out.as_mut_ptr();
    let mut j = 0;
    while j + 32 <= d {
        let init0 = match bias {
            Some(bias) => _mm512_loadu_ps(bias.as_ptr().add(j)),
            None => _mm512_setzero_ps(),
        };
        let init1 = match bias {
            Some(bias) => _mm512_loadu_ps(bias.as_ptr().add(j + 16)),
            None => _mm512_setzero_ps(),
        };
        let mut acc0 = [init0; R];
        let mut acc1 = [init1; R];
        // k unrolled by two; each element keeps one ascending-k FMA chain,
        // so the unroll cannot change any result.
        let mut kk = 0;
        while kk + 2 <= k {
            let b0 = _mm512_loadu_ps(b_ptr.add(kk * d + j));
            let b1 = _mm512_loadu_ps(b_ptr.add(kk * d + j + 16));
            let b2 = _mm512_loadu_ps(b_ptr.add((kk + 1) * d + j));
            let b3 = _mm512_loadu_ps(b_ptr.add((kk + 1) * d + j + 16));
            for r in 0..R {
                let va0 = _mm512_set1_ps(*a_ptr.add((i + r) * k + kk));
                let va1 = _mm512_set1_ps(*a_ptr.add((i + r) * k + kk + 1));
                acc0[r] = _mm512_fmadd_ps(va0, b0, acc0[r]);
                acc0[r] = _mm512_fmadd_ps(va1, b2, acc0[r]);
                acc1[r] = _mm512_fmadd_ps(va0, b1, acc1[r]);
                acc1[r] = _mm512_fmadd_ps(va1, b3, acc1[r]);
            }
            kk += 2;
        }
        if kk < k {
            let b0 = _mm512_loadu_ps(b_ptr.add(kk * d + j));
            let b1 = _mm512_loadu_ps(b_ptr.add(kk * d + j + 16));
            for r in 0..R {
                let va = _mm512_set1_ps(*a_ptr.add((i + r) * k + kk));
                acc0[r] = _mm512_fmadd_ps(va, b0, acc0[r]);
                acc1[r] = _mm512_fmadd_ps(va, b1, acc1[r]);
            }
        }
        if relu {
            let zero = _mm512_setzero_ps();
            for r in 0..R {
                acc0[r] = _mm512_max_ps(acc0[r], zero);
                acc1[r] = _mm512_max_ps(acc1[r], zero);
            }
        }
        for r in 0..R {
            _mm512_storeu_ps(out_ptr.add((i + r) * d + j), acc0[r]);
            _mm512_storeu_ps(out_ptr.add((i + r) * d + j + 16), acc1[r]);
        }
        j += 32;
    }
    while j + 16 <= d {
        let init = match bias {
            Some(bias) => _mm512_loadu_ps(bias.as_ptr().add(j)),
            None => _mm512_setzero_ps(),
        };
        let mut acc = [init; R];
        for kk in 0..k {
            let b0 = _mm512_loadu_ps(b_ptr.add(kk * d + j));
            for (r, slot) in acc.iter_mut().enumerate() {
                let va = _mm512_set1_ps(*a_ptr.add((i + r) * k + kk));
                *slot = _mm512_fmadd_ps(va, b0, *slot);
            }
        }
        if relu {
            let zero = _mm512_setzero_ps();
            for slot in acc.iter_mut() {
                *slot = _mm512_max_ps(*slot, zero);
            }
        }
        for (r, slot) in acc.iter().enumerate() {
            _mm512_storeu_ps(out_ptr.add((i + r) * d + j), *slot);
        }
        j += 16;
    }
    for jj in j..d {
        for r in 0..R {
            let mut acc = match bias {
                Some(bias) => bias[jj],
                None => 0.0f32,
            };
            for kk in 0..k {
                acc = a[(i + r) * k + kk].mul_add(b[kk * d + jj], acc);
            }
            out[(i + r) * d + jj] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

/// AVX-512 `d == 1` dot path: four independent 16-wide FMA accumulators,
/// combined in a fixed order that depends only on `k`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dot_columns_avx512(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    k: usize,
) {
    let b_ptr = b.as_ptr();
    let base = bias.map_or(0.0, |bias| bias[0]);
    for i in 0..n {
        let row = a.as_ptr().add(i * k);
        let mut acc = [_mm512_setzero_ps(); 4];
        let mut kk = 0;
        while kk + 64 <= k {
            for (t, slot) in acc.iter_mut().enumerate() {
                let va = _mm512_loadu_ps(row.add(kk + 16 * t));
                let vb = _mm512_loadu_ps(b_ptr.add(kk + 16 * t));
                *slot = _mm512_fmadd_ps(va, vb, *slot);
            }
            kk += 64;
        }
        while kk + 16 <= k {
            let va = _mm512_loadu_ps(row.add(kk));
            let vb = _mm512_loadu_ps(b_ptr.add(kk));
            acc[0] = _mm512_fmadd_ps(va, vb, acc[0]);
            kk += 16;
        }
        let combined = _mm512_add_ps(_mm512_add_ps(acc[0], acc[1]), _mm512_add_ps(acc[2], acc[3]));
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), combined);
        let mut total = base + lanes.iter().sum::<f32>();
        for key in kk..k {
            total = a[i * k + key].mul_add(b[key], total);
        }
        out[i] = if relu { total.max(0.0) } else { total };
    }
}

/// AVX2+FMA microkernel: 4-row × 16-column register tiles (8 YMM
/// accumulators live across the whole `k` loop), an 8-wide column tail, a
/// `mul_add` scalar tail, and a dedicated dot-product path for `d == 1`
/// (attention projections and decoder heads).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn matmul_avx2(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    k: usize,
    d: usize,
) {
    if d == 1 {
        return dot_columns_avx2(out, a, b, bias, relu, n, k);
    }
    let mut i = 0;
    while i + 4 <= n {
        row_tile_avx2::<4>(out, a, b, bias, relu, i, k, d);
        i += 4;
    }
    while i < n {
        row_tile_avx2::<1>(out, a, b, bias, relu, i, k, d);
        i += 1;
    }
}

/// One tile of `R` consecutive output rows starting at row `i`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn row_tile_avx2<const R: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    i: usize,
    k: usize,
    d: usize,
) {
    let a_ptr = a.as_ptr();
    let b_ptr = b.as_ptr();
    let out_ptr = out.as_mut_ptr();
    let mut j = 0;
    while j + 16 <= d {
        let init0 = match bias {
            Some(bias) => _mm256_loadu_ps(bias.as_ptr().add(j)),
            None => _mm256_setzero_ps(),
        };
        let init1 = match bias {
            Some(bias) => _mm256_loadu_ps(bias.as_ptr().add(j + 8)),
            None => _mm256_setzero_ps(),
        };
        let mut acc0 = [init0; R];
        let mut acc1 = [init1; R];
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(b_ptr.add(kk * d + j));
            let b1 = _mm256_loadu_ps(b_ptr.add(kk * d + j + 8));
            for r in 0..R {
                let va = _mm256_set1_ps(*a_ptr.add((i + r) * k + kk));
                acc0[r] = _mm256_fmadd_ps(va, b0, acc0[r]);
                acc1[r] = _mm256_fmadd_ps(va, b1, acc1[r]);
            }
        }
        if relu {
            let zero = _mm256_setzero_ps();
            for r in 0..R {
                acc0[r] = _mm256_max_ps(acc0[r], zero);
                acc1[r] = _mm256_max_ps(acc1[r], zero);
            }
        }
        for r in 0..R {
            _mm256_storeu_ps(out_ptr.add((i + r) * d + j), acc0[r]);
            _mm256_storeu_ps(out_ptr.add((i + r) * d + j + 8), acc1[r]);
        }
        j += 16;
    }
    while j + 8 <= d {
        let init = match bias {
            Some(bias) => _mm256_loadu_ps(bias.as_ptr().add(j)),
            None => _mm256_setzero_ps(),
        };
        let mut acc = [init; R];
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(b_ptr.add(kk * d + j));
            for (r, slot) in acc.iter_mut().enumerate() {
                let va = _mm256_set1_ps(*a_ptr.add((i + r) * k + kk));
                *slot = _mm256_fmadd_ps(va, b0, *slot);
            }
        }
        if relu {
            let zero = _mm256_setzero_ps();
            for slot in acc.iter_mut() {
                *slot = _mm256_max_ps(*slot, zero);
            }
        }
        for (r, slot) in acc.iter().enumerate() {
            _mm256_storeu_ps(out_ptr.add((i + r) * d + j), *slot);
        }
        j += 8;
    }
    for jj in j..d {
        for r in 0..R {
            let mut acc = match bias {
                Some(bias) => bias[jj],
                None => 0.0f32,
            };
            for kk in 0..k {
                acc = a[(i + r) * k + kk].mul_add(b[kk * d + jj], acc);
            }
            out[(i + r) * d + jj] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

/// `d == 1` path: each output element is a dot product of one `a` row with
/// the contiguous column vector `b`. Vectorised over `k` with four
/// independent FMA accumulators; the lane combination order is a fixed
/// function of `k`, so results do not depend on the batch size.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_columns_avx2(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    relu: bool,
    n: usize,
    k: usize,
) {
    let b_ptr = b.as_ptr();
    let base = bias.map_or(0.0, |bias| bias[0]);
    for i in 0..n {
        let row = a.as_ptr().add(i * k);
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut kk = 0;
        while kk + 32 <= k {
            for (t, slot) in acc.iter_mut().enumerate() {
                let va = _mm256_loadu_ps(row.add(kk + 8 * t));
                let vb = _mm256_loadu_ps(b_ptr.add(kk + 8 * t));
                *slot = _mm256_fmadd_ps(va, vb, *slot);
            }
            kk += 32;
        }
        while kk + 8 <= k {
            let va = _mm256_loadu_ps(row.add(kk));
            let vb = _mm256_loadu_ps(b_ptr.add(kk));
            acc[0] = _mm256_fmadd_ps(va, vb, acc[0]);
            kk += 8;
        }
        let combined = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), combined);
        let mut total = base + lanes.iter().sum::<f32>();
        for key in kk..k {
            total = a[i * k + key].mul_add(b[key], total);
        }
        out[i] = if relu { total.max(0.0) } else { total };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f32], b: &[f32], n: usize, k: usize, d: usize) -> Vec<f32> {
        let mut out = vec![0.0f64; n * d];
        for i in 0..n {
            for kk in 0..k {
                for j in 0..d {
                    out[i * d + j] += a[i * k + kk] as f64 * b[kk * d + j] as f64;
                }
            }
        }
        out.iter().map(|&v| v as f32).collect()
    }

    #[test]
    fn dispatched_kernel_matches_reference_across_shapes() {
        // Shapes chosen to hit every code path: 16-wide tiles, 8-wide tails,
        // scalar tails, row remainders, and the d == 1 dot path.
        for &(n, k, d) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 1),
            (12, 64, 64),
            (13, 7, 17),
            (4, 33, 16),
            (7, 64, 1),
            (5, 3, 9),
            (64, 1, 64),
        ] {
            let a: Vec<f32> = (0..n * k)
                .map(|i| ((i * 37 + 11) % 23) as f32 * 0.17 - 1.5)
                .collect();
            let b: Vec<f32> = (0..k * d)
                .map(|i| ((i * 29 + 3) % 19) as f32 * 0.21 - 1.7)
                .collect();
            let mut out = vec![f32::NAN; n * d];
            matmul_into(&mut out, &a, &b, n, k, d);
            let expected = reference(&a, &b, n, k, d);
            for (idx, (&got, &want)) in out.iter().zip(expected.iter()).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "({n}x{k})·({k}x{d}) element {idx}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn finite_guard_latches_first_violation_and_clears_on_take() {
        set_finite_guard(true);
        let _ = take_finite_guard_trip(); // drop any stale trip from other tests

        // A clean product must not trip the guard.
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [0.5f32, -0.25, 1.5, 2.0];
        let mut out = [0.0f32; 4];
        matmul_into(&mut out, &a, &b, 2, 2, 2);
        assert_eq!(take_finite_guard_trip(), None);

        // A NaN operand poisons the output; the guard latches the first bad
        // element without altering the computed values.
        let poisoned = [f32::NAN, 2.0, 3.0, 4.0];
        matmul_into(&mut out, &poisoned, &b, 2, 2, 2);
        let trip = take_finite_guard_trip().expect("NaN output must trip the guard");
        assert_eq!((trip.rows, trip.cols), (2, 2));
        assert!(!out[trip.index].is_finite());
        // Taking the trip clears it.
        assert_eq!(take_finite_guard_trip(), None);

        // Disabled guard stays silent even on poisoned output.
        set_finite_guard(false);
        matmul_into(&mut out, &poisoned, &b, 2, 2, 2);
        assert_eq!(take_finite_guard_trip(), None);
    }

    #[test]
    fn rows_are_position_independent() {
        // The determinism contract: a row multiplied alone must equal the
        // same row multiplied as part of a taller stack, bit for bit.
        let k = 64;
        let d = 64;
        let b: Vec<f32> = (0..k * d)
            .map(|i| ((i * 31) % 41) as f32 * 0.05 - 1.0)
            .collect();
        let row: Vec<f32> = (0..k)
            .map(|i| ((i * 13) % 17) as f32 * 0.11 - 0.9)
            .collect();

        let mut alone = vec![0.0f32; d];
        matmul_into(&mut alone, &row, &b, 1, k, d);

        for &n in &[4usize, 7, 32] {
            let stacked: Vec<f32> = (0..n).flat_map(|_| row.clone()).collect();
            let mut out = vec![0.0f32; n * d];
            matmul_into(&mut out, &stacked, &b, n, k, d);
            for i in 0..n {
                assert_eq!(
                    &out[i * d..(i + 1) * d],
                    alone.as_slice(),
                    "row {i} of {n} must be bit-identical to the standalone product"
                );
            }
        }
    }
}
