//! Serialisation and integrity support for persisted tensor parameters.
//!
//! Fitted models are written to disk as JSON (see `dquag-persist`), so
//! [`Matrix`] gains hand-written `serde` impls here: a
//! `{rows, cols, data: [..]}` object whose entries pass through `f64`
//! losslessly (every `f32` is exactly representable as `f64`, and the
//! vendored `serde_json` guarantees exact finite-`f64` round-trips).
//!
//! The same module provides the FNV-1a checksum the persisted-model format
//! uses to fail closed on corrupted or hand-edited parameter files: the
//! checksum covers each matrix's shape and the raw bit pattern of every
//! element, so any single-bit flip in a weight changes it.

use crate::Matrix;
use serde::{DeError, Deserialize, Serialize, Value};

impl Serialize for Matrix {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("rows".to_string(), Value::Number(self.rows() as f64));
        map.insert("cols".to_string(), Value::Number(self.cols() as f64));
        map.insert(
            "data".to_string(),
            Value::Array(
                self.as_slice()
                    .iter()
                    .map(|&x| Value::Number(f64::from(x)))
                    .collect(),
            ),
        );
        Value::Object(map)
    }
}

impl Deserialize for Matrix {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| {
            DeError::custom(format!("expected object for Matrix, found {}", v.kind()))
        })?;
        let rows = usize::from_value(obj.get("rows").unwrap_or(&Value::Null))
            .map_err(|e| DeError::custom(format!("Matrix rows: {e}")))?;
        let cols = usize::from_value(obj.get("cols").unwrap_or(&Value::Null))
            .map_err(|e| DeError::custom(format!("Matrix cols: {e}")))?;
        let data = Vec::<f32>::from_value(obj.get("data").unwrap_or(&Value::Null))
            .map_err(|e| DeError::custom(format!("Matrix data: {e}")))?;
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| DeError::custom(format!("Matrix shape: {e}")))
    }
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x00000100000001b3;

/// Fold a byte slice into a running FNV-1a hash.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fold a slice of `f32` bit patterns into the hash, two elements per step.
///
/// The byte-at-a-time FNV chain is a serial xor-multiply dependency — eight
/// multiplies per element — which is too slow for a checksum re-verified on
/// the first forward pass of every scoring session. Folding whole 64-bit
/// words (two packed element bit patterns per step) keeps the certificate:
/// every xor-multiply step is a bijection of the hash state, so a single
/// flipped bit in any element still changes the final value.
fn fnv1a_elems(mut hash: u64, elems: &[f32]) -> u64 {
    let mut pairs = elems.chunks_exact(2);
    for pair in &mut pairs {
        hash ^= u64::from(pair[0].to_bits()) | (u64::from(pair[1].to_bits()) << 32);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    for &x in pairs.remainder() {
        hash ^= u64::from(x.to_bits());
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Checksum one matrix: shape plus the bit pattern of every element.
///
/// Uses `to_bits` rather than the numeric value so `-0.0` vs `0.0` and
/// distinct NaN payloads all hash differently — the checksum certifies the
/// stored bytes, not numeric equivalence.
pub fn matrix_checksum(matrix: &Matrix) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = fnv1a(hash, &(matrix.rows() as u64).to_le_bytes());
    hash = fnv1a(hash, &(matrix.cols() as u64).to_le_bytes());
    fnv1a_elems(hash, matrix.as_slice())
}

/// Checksum an ordered sequence of named matrices (a parameter store).
///
/// The name is hashed alongside each matrix so renaming or reordering
/// parameters changes the result even when the values are identical.
pub fn params_checksum<'a, I>(params: I) -> u64
where
    I: IntoIterator<Item = (&'a str, &'a Matrix)>,
{
    let mut hash = FNV_OFFSET;
    for (name, matrix) in params {
        hash = fnv1a(hash, name.as_bytes());
        hash = fnv1a(hash, &matrix_checksum(matrix).to_le_bytes());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![vec![1.5, -2.25, 0.0], vec![-0.0, 3.0e-7, 1.0e9]])
    }

    #[test]
    fn matrix_round_trips_bit_exactly_through_json() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mismatched_shape_is_rejected() {
        let json = r#"{"rows": 2, "cols": 3, "data": [1, 2, 3]}"#;
        assert!(serde_json::from_str::<Matrix>(json).is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let m = sample();
        let base = matrix_checksum(&m);
        let mut tweaked = m.clone();
        tweaked.set(1, 2, f32::from_bits(m.get(1, 2).to_bits() ^ 1));
        assert_ne!(matrix_checksum(&tweaked), base);
        // Sign of zero matters: the checksum certifies bytes, not numerics.
        let mut zero_flip = m.clone();
        zero_flip.set(0, 2, -0.0);
        assert_ne!(matrix_checksum(&zero_flip), base);
    }

    #[test]
    fn params_checksum_is_sensitive_to_names_and_order() {
        let a = Matrix::ones(2, 2);
        let b = Matrix::zeros(2, 2);
        let fwd = params_checksum([("w1", &a), ("w2", &b)]);
        let rev = params_checksum([("w2", &b), ("w1", &a)]);
        let renamed = params_checksum([("w1", &a), ("w3", &b)]);
        assert_ne!(fwd, rev);
        assert_ne!(fwd, renamed);
    }
}
