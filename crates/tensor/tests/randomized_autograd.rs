//! Randomized tests for the autograd engine.
//!
//! Random small matrices are pushed through random compositions of
//! differentiable operations and the analytic gradients are compared against
//! central finite differences. These replace the original proptest
//! properties (the build environment has no crates.io access, see
//! `vendor/README.md`) with the same pipelines and case counts over a seeded
//! RNG.

use dquag_tensor::{finite_difference_grad, Matrix, Tape, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small matrix with bounded, well-conditioned entries.
fn small_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| rng.gen_range(-1.5f32..1.5))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("sized data")
}

/// A scalar-valued differentiable pipeline applied to the parameter.
#[derive(Debug, Clone, Copy)]
enum Pipeline {
    LinearSigmoid,
    AttentionLike,
    MlpLeaky,
    ConcatSlice,
    WeightedRows,
}

const PIPELINES: [Pipeline; 5] = [
    Pipeline::LinearSigmoid,
    Pipeline::AttentionLike,
    Pipeline::MlpLeaky,
    Pipeline::ConcatSlice,
    Pipeline::WeightedRows,
];

fn run_pipeline(p: Pipeline, tape: &Tape, x: &Var) -> Var {
    match p {
        Pipeline::LinearSigmoid => {
            let w = tape.constant(Matrix::from_fn(3, 2, |r, c| {
                0.3 * (r as f32) - 0.2 * c as f32
            }));
            x.matmul(&w).sigmoid().square().mean()
        }
        Pipeline::AttentionLike => {
            // softmax(x xᵀ) x  — the shape of a GAT attention computation
            let scores = x.matmul(&x.transpose()).leaky_relu(0.2).softmax_rows();
            scores.matmul(x).square().mean()
        }
        Pipeline::MlpLeaky => {
            let w1 = tape.constant(Matrix::from_fn(3, 4, |r, c| ((r + c) as f32).sin() * 0.4));
            let w2 = tape.constant(Matrix::from_fn(4, 1, |r, _| 0.25 - 0.1 * r as f32));
            x.matmul(&w1)
                .leaky_relu(0.1)
                .matmul(&w2)
                .tanh()
                .square()
                .mean()
        }
        Pipeline::ConcatSlice => {
            let other = tape.constant(Matrix::from_fn(4, 2, |r, c| 0.1 * (r * 2 + c) as f32));
            x.slice_cols(0, 2)
                .concat_cols(&other)
                .transpose()
                .square()
                .mean()
        }
        Pipeline::WeightedRows => {
            let weights = tape.constant(Matrix::col_vector(&[0.9, 0.5, 0.1, 1.0]));
            x.square().sum_rows_keep().mul(&weights).mean()
        }
    }
}

#[test]
fn analytic_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0x6E4D);
    for case in 0..48 {
        let param = small_matrix(&mut rng, 4, 3);
        let pipeline = PIPELINES[rng.gen_range(0..PIPELINES.len())];

        let tape = Tape::new();
        let x = tape.leaf(param.clone(), true);
        let loss = run_pipeline(pipeline, &tape, &x);
        assert_eq!(loss.shape(), (1, 1), "case {case}");
        tape.backward(&loss);
        let analytic = x.grad().expect("gradient");

        let numeric = finite_difference_grad(
            &param,
            |m| {
                let t = Tape::new();
                let v = t.leaf(m.clone(), true);
                run_pipeline(pipeline, &t, &v).value().get(0, 0)
            },
            1e-2,
        );

        // Relative-ish tolerance: these pipelines stay well-conditioned on the
        // sampled input range.
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < 5e-2,
            "case {case}: max grad diff {diff} for {pipeline:?}"
        );
    }
}

#[test]
fn batched_block_op_gradients_match_finite_differences() {
    // The block-stacked batching ops (per-block matmul, one-operator-per-
    // block matmul, block transposed broadcast, block add broadcast) must be
    // differentiable end to end: random block counts, random shapes.
    let mut rng = StdRng::seed_from_u64(0x6E53);
    for case in 0..24 {
        let blocks = rng.gen_range(1..4usize);
        let n = rng.gen_range(1..4usize);
        let d = rng.gen_range(1..4usize);
        let param = small_matrix(&mut rng, blocks * n, 1);
        let operator = small_matrix(&mut rng, n, n);
        let mask = small_matrix(&mut rng, n, n);

        let forward = |t: &Tape, v: &Var| {
            // the shape of one batched GAT layer over `blocks` samples
            let grid = v
                .matmul(&t.constant(Matrix::ones(1, n)))
                .add(&v.block_row_broadcast(n))
                .leaky_relu(0.2)
                .block_add_broadcast(&t.constant(mask.clone()))
                .softmax_rows();
            let mixed = grid.block_matmul(
                &t.constant(operator.clone())
                    .repeat_matmul(&v.matmul(&t.constant(Matrix::ones(1, d)))),
                blocks,
            );
            mixed.square().mean()
        };

        let tape = Tape::new();
        let x = tape.leaf(param.clone(), true);
        let loss = forward(&tape, &x);
        tape.backward(&loss);
        let analytic = x.grad().expect("gradient");

        let numeric = finite_difference_grad(
            &param,
            |m| {
                let t = Tape::new();
                let v = t.leaf(m.clone(), true);
                forward(&t, &v).value().get(0, 0)
            },
            1e-2,
        );
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < 5e-2,
            "case {case} (blocks {blocks}, n {n}, d {d}): max grad diff {diff}"
        );
    }
}

#[test]
fn block_matmul_equals_stacked_per_block_products() {
    let mut rng = StdRng::seed_from_u64(0x6E54);
    for _ in 0..24 {
        let blocks = rng.gen_range(1..5usize);
        let p = rng.gen_range(1..4usize);
        let k = rng.gen_range(1..4usize);
        let d = rng.gen_range(1..4usize);
        let a = small_matrix(&mut rng, blocks * p, k);
        let b = small_matrix(&mut rng, blocks * k, d);
        let batched = a.block_matmul(&b, blocks).unwrap();
        for blk in 0..blocks {
            let expected = a
                .slice_rows(blk * p, (blk + 1) * p)
                .unwrap()
                .matmul(&b.slice_rows(blk * k, (blk + 1) * k).unwrap())
                .unwrap();
            assert_eq!(
                batched.slice_rows(blk * p, (blk + 1) * p).unwrap(),
                expected,
                "block results must be bit-identical to the per-block matmul"
            );
        }
    }
}

#[test]
fn matmul_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x6E4E);
    for _ in 0..48 {
        let a = small_matrix(&mut rng, 3, 4);
        let b = small_matrix(&mut rng, 4, 2);
        let c = a.matmul(&b).unwrap();
        for i in 0..3 {
            for j in 0..2 {
                let expected: f32 = (0..4).map(|k| a.get(i, k) * b.get(k, j)).sum();
                assert!((c.get(i, j) - expected).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = StdRng::seed_from_u64(0x6E4F);
    for _ in 0..48 {
        let a = small_matrix(&mut rng, 5, 3);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn softmax_rows_always_normalised() {
    let mut rng = StdRng::seed_from_u64(0x6E50);
    for _ in 0..48 {
        let a = small_matrix(&mut rng, 4, 6);
        let s = a.softmax_rows();
        assert!(s.is_finite());
        for r in 0..s.rows() {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-4);
            assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

#[test]
fn concat_then_slice_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x6E51);
    for _ in 0..48 {
        let a = small_matrix(&mut rng, 3, 2);
        let b = small_matrix(&mut rng, 3, 4);
        let joined = a.concat_cols(&b).unwrap();
        assert_eq!(joined.slice_cols(0, 2).unwrap(), a);
        assert_eq!(joined.slice_cols(2, 6).unwrap(), b);
    }
}

#[test]
fn sum_rows_and_cols_agree_with_total() {
    let mut rng = StdRng::seed_from_u64(0x6E52);
    for _ in 0..48 {
        let a = small_matrix(&mut rng, 4, 5);
        let total = a.sum();
        assert!((a.sum_rows().sum() - total).abs() < 1e-3);
        assert!((a.sum_cols().sum() - total).abs() < 1e-3);
    }
}
