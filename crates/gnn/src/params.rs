//! Parameter storage shared by every layer of a model.
//!
//! Layers do not own their weights directly. Instead the model owns a flat
//! [`ParamStore`] and layers hold [`ParamId`] handles into it. At the start of
//! each forward pass the store is *bound* to an autograd tape
//! ([`ParamStore::bind`]), producing one leaf [`Var`] per parameter; after the
//! backward pass the gradients are read back in the same order and handed to
//! the optimizer ([`ParamStore::apply_gradients`]). This keeps parameter
//! ordering stable — a requirement of the Adam state in `dquag-tensor`.

use dquag_tensor::optim::Adam;
use dquag_tensor::{Matrix, Tape, Var};

/// Handle to one parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Flat, ordered parameter storage.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter and return its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Number of registered parameters (matrices).
    pub fn n_params(&self) -> usize {
        self.values.len()
    }

    /// Total number of scalar weights across all parameters.
    pub fn n_weights(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Read a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Overwrite a parameter value (shape must match).
    pub fn set(&mut self, id: ParamId, value: Matrix) {
        assert_eq!(
            self.values[id.0].shape(),
            value.shape(),
            "ParamStore::set must preserve the parameter shape"
        );
        self.values[id.0] = value;
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Bind every parameter to the tape as a gradient-tracked leaf.
    pub fn bind(&self, tape: &Tape) -> BoundParams {
        BoundParams {
            vars: self
                .values
                .iter()
                .map(|m| tape.leaf(m.clone(), true))
                .collect(),
        }
    }

    /// Apply one optimizer step using the gradients accumulated on `bound`
    /// (call after `tape.backward`). Parameters whose gradient is absent are
    /// left untouched.
    pub fn apply_gradients(&mut self, bound: &BoundParams, optimizer: &mut Adam) {
        let grads: Vec<Option<Matrix>> = bound.vars.iter().map(Var::grad).collect();
        let mut params: Vec<&mut Matrix> = self.values.iter_mut().collect();
        optimizer.step(&mut params, &grads);
    }

    /// Export every parameter as `(name, matrix)` pairs in registration
    /// order — the wire form the persisted-model format stores.
    pub fn export(&self) -> Vec<(String, Matrix)> {
        self.names
            .iter()
            .cloned()
            .zip(self.values.iter().cloned())
            .collect()
    }

    /// Iterate `(name, &matrix)` pairs in registration order without
    /// cloning — the view [`checksum`](Self::checksum) and save paths use.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// Iterate `(name, &mut matrix)` pairs in registration order.
    ///
    /// This is the fault-injection seam used by `dquag-faults`: corrupting a
    /// fitted store through it changes the store's [`checksum`](Self::checksum),
    /// which the inference-session self-checks compare against the checksum
    /// captured at fit time. Normal code never mutates fitted parameters
    /// directly — use [`set`](Self::set) or the optimizer path instead.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Matrix)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter_mut())
    }

    /// Overwrite all parameters from exported `(name, matrix)` pairs.
    ///
    /// The store must already hold the same parameters (same count, names
    /// and shapes, in the same order) — i.e. the model structure must have
    /// been rebuilt from the same config before importing. Any mismatch is
    /// an error naming the offending parameter, so a file from a different
    /// architecture fails loudly instead of silently mis-loading.
    pub fn import(&mut self, params: &[(String, Matrix)]) -> Result<(), String> {
        if params.len() != self.values.len() {
            return Err(format!(
                "parameter count mismatch: store has {}, import has {}",
                self.values.len(),
                params.len()
            ));
        }
        for (i, (name, matrix)) in params.iter().enumerate() {
            if *name != self.names[i] {
                return Err(format!(
                    "parameter {i} name mismatch: store has `{}`, import has `{name}`",
                    self.names[i]
                ));
            }
            if matrix.shape() != self.values[i].shape() {
                return Err(format!(
                    "parameter `{name}` shape mismatch: store has {:?}, import has {:?}",
                    self.values[i].shape(),
                    matrix.shape()
                ));
            }
        }
        for (i, (_, matrix)) in params.iter().enumerate() {
            self.values[i] = matrix.clone();
        }
        Ok(())
    }

    /// Order- and name-sensitive checksum over every parameter's raw bits
    /// (see [`dquag_tensor::params_checksum`]).
    pub fn checksum(&self) -> u64 {
        dquag_tensor::params_checksum(self.iter())
    }

    /// Squared L2 norm of all parameters — handy for regularisation ablations
    /// and for asserting that training actually changes the weights.
    pub fn squared_norm(&self) -> f32 {
        self.values
            .iter()
            .map(|m| {
                let n = m.frobenius_norm();
                n * n
            })
            .sum()
    }
}

/// Tape-bound view of a [`ParamStore`]: one leaf [`Var`] per parameter, in
/// registration order.
#[derive(Debug, Clone)]
pub struct BoundParams {
    vars: Vec<Var>,
}

impl BoundParams {
    /// The bound variable for a parameter.
    pub fn var(&self, id: ParamId) -> &Var {
        &self.vars[id.0]
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if the store was empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dquag_tensor::optim::Adam;

    #[test]
    fn add_get_set_and_counts() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(2, 3));
        let b = store.add("b", Matrix::zeros(1, 3));
        assert_eq!(store.n_params(), 2);
        assert_eq!(store.n_weights(), 9);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.get(b).shape(), (1, 3));
        store.set(w, Matrix::ones(2, 3));
        assert_eq!(store.get(w).sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "preserve the parameter shape")]
    fn set_rejects_shape_change() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::zeros(2, 3));
        store.set(w, Matrix::zeros(3, 2));
    }

    #[test]
    fn bind_and_train_step_updates_parameters() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(1, 1, 5.0));
        let mut adam = Adam::with_learning_rate(0.5);

        for _ in 0..50 {
            let tape = Tape::new();
            let bound = store.bind(&tape);
            // loss = w² → minimum at 0
            let loss = bound.var(w).square().mean();
            tape.backward(&loss);
            store.apply_gradients(&bound, &mut adam);
        }
        assert!(
            store.get(w).get(0, 0).abs() < 0.5,
            "w should approach 0, got {}",
            store.get(w).get(0, 0)
        );
    }

    #[test]
    fn unused_parameters_are_left_untouched() {
        let mut store = ParamStore::new();
        let used = store.add("used", Matrix::filled(1, 1, 1.0));
        let unused = store.add("unused", Matrix::filled(1, 1, 7.0));
        let mut adam = Adam::with_learning_rate(0.1);
        let tape = Tape::new();
        let bound = store.bind(&tape);
        let loss = bound.var(used).square().mean();
        tape.backward(&loss);
        store.apply_gradients(&bound, &mut adam);
        assert_eq!(store.get(unused).get(0, 0), 7.0);
        assert_ne!(store.get(used).get(0, 0), 1.0);
    }

    #[test]
    fn squared_norm_sums_parameters() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::filled(1, 2, 2.0));
        store.add("b", Matrix::filled(1, 1, 3.0));
        assert!((store.squared_norm() - 17.0).abs() < 1e-5);
    }

    #[test]
    fn export_import_round_trips_and_rejects_mismatches() {
        let mut store = ParamStore::new();
        store.add("w", Matrix::filled(2, 3, 1.5));
        store.add("b", Matrix::filled(1, 3, -0.25));
        let exported = store.export();
        let checksum = store.checksum();

        // Same structure, different values → import succeeds, values land.
        let mut fresh = ParamStore::new();
        fresh.add("w", Matrix::zeros(2, 3));
        fresh.add("b", Matrix::zeros(1, 3));
        fresh.import(&exported).unwrap();
        assert_eq!(fresh.checksum(), checksum);
        assert_eq!(fresh.values[0].get(1, 2), 1.5);

        // Wrong name, wrong shape, wrong count each fail loudly.
        let mut renamed = ParamStore::new();
        renamed.add("w", Matrix::zeros(2, 3));
        renamed.add("bias", Matrix::zeros(1, 3));
        assert!(renamed.import(&exported).unwrap_err().contains("name"));

        let mut reshaped = ParamStore::new();
        reshaped.add("w", Matrix::zeros(3, 2));
        reshaped.add("b", Matrix::zeros(1, 3));
        assert!(reshaped.import(&exported).unwrap_err().contains("shape"));

        let mut short = ParamStore::new();
        short.add("w", Matrix::zeros(2, 3));
        assert!(short.import(&exported).unwrap_err().contains("count"));
    }

    #[test]
    fn bound_len_tracks_store() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::zeros(1, 1));
        let tape = Tape::new();
        let bound = store.bind(&tape);
        assert_eq!(bound.len(), 1);
        assert!(!bound.is_empty());
    }
}
