//! Structured model-health violations surfaced by the self-checking runtime.
//!
//! A production replica can go bad without crashing: a bit flip in a fitted
//! parameter, a NaN escaping a kernel, an activation poisoned in flight. The
//! scoring path (see [`crate::InferenceSession`]) detects these and reports a
//! [`HealthError`] instead of returning garbage scores, so the caller can
//! quarantine the replica rather than trust a silently-wrong verdict.

use std::fmt;
use std::sync::Arc;

use dquag_tensor::Matrix;

/// Why a model failed a runtime self-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthError {
    /// The live parameter store no longer hashes to the checksum captured at
    /// fit time — some weight was corrupted after training.
    ChecksumMismatch {
        /// Checksum of the parameters when the model was fitted.
        expected: u64,
        /// Checksum the live parameters hash to now.
        actual: u64,
    },
    /// The SIMD kernel epilogue guard found a NaN/Inf in a matrix-product
    /// output during a forward pass.
    NonFiniteKernel {
        /// Flat index of the first offending element in the product output.
        index: usize,
    },
    /// A decoder output consumed by scoring contained a NaN/Inf value.
    NonFiniteScores {
        /// Which scoring output was poisoned (`"reconstruction_error"` or
        /// `"repair"`).
        stage: &'static str,
        /// Flat index of the first offending element.
        index: usize,
    },
}

impl fmt::Display for HealthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthError::ChecksumMismatch { expected, actual } => write!(
                f,
                "parameter checksum mismatch: fitted model hashed {expected:016x} but live \
                 parameters hash to {actual:016x}"
            ),
            HealthError::NonFiniteKernel { index } => write!(
                f,
                "non-finite kernel output at element {index}: the SIMD epilogue guard tripped"
            ),
            HealthError::NonFiniteScores { stage, index } => {
                write!(f, "non-finite {stage} output at element {index}")
            }
        }
    }
}

/// An activation-corruption hook installed on an [`crate::InferenceSession`]
/// — the activation-level fault-injection seam used by `dquag-faults`.
///
/// The hook receives the decoder's output matrix for each scored tile and may
/// mutate it in place (e.g. poison elements with NaN). It runs *after* the
/// forward pass and *before* the session's non-finite output scan, so an
/// injected poison value exercises exactly the detection path a real
/// corrupted activation would.
#[derive(Clone)]
pub struct ActivationFault(pub Arc<dyn Fn(&mut Matrix) + Send + Sync>);

impl ActivationFault {
    /// Wrap a corruption function.
    pub fn new(f: impl Fn(&mut Matrix) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }
}

impl fmt::Debug for ActivationFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ActivationFault(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_violation() {
        let checksum = HealthError::ChecksumMismatch {
            expected: 0xdead,
            actual: 0xbeef,
        };
        let text = checksum.to_string();
        assert!(text.contains("000000000000dead"), "{text}");
        assert!(text.contains("000000000000beef"), "{text}");

        let kernel = HealthError::NonFiniteKernel { index: 7 }.to_string();
        assert!(kernel.contains("element 7"), "{kernel}");

        let scores = HealthError::NonFiniteScores {
            stage: "repair",
            index: 3,
        }
        .to_string();
        assert!(scores.contains("repair"), "{scores}");
    }

    #[test]
    fn activation_fault_mutates_in_place() {
        let fault = ActivationFault::new(|m| m.set(0, 0, f32::NAN));
        let mut m = Matrix::zeros(2, 1);
        (fault.0)(&mut m);
        assert!(m.get(0, 0).is_nan());
        assert_eq!(m.get(1, 0), 0.0);
    }
}
