//! Encoder stacks: the paper's GAT+GIN interleaving and the ablation
//! architectures of Table 2 (Graph2Vec, GCN, GCN+GAT, GCN+GIN).

use crate::context::BoundGraph;
use crate::layers::{GatLayer, GcnLayer, GinLayer, Mlp};
use crate::params::{BoundParams, ParamStore};
use dquag_graph::FeatureGraph;
use dquag_tensor::init::InitRng;
use dquag_tensor::{Matrix, Var};

/// The encoder architecture. Variants match Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EncoderKind {
    /// Structural Graph2Vec-style embedding followed by an MLP (no message
    /// passing conditioned on the sample values).
    Graph2Vec,
    /// Homogeneous GCN stack.
    Gcn,
    /// Alternating GCN and GAT layers.
    GcnGat,
    /// Alternating GCN and GIN layers.
    GcnGin,
    /// Alternating GAT and GIN layers — the paper's proposed encoder
    /// (GAT-GIN-GAT-GIN with four layers).
    GatGin,
}

impl EncoderKind {
    /// All encoder kinds, in the order Table 2 reports them.
    pub const ALL: [EncoderKind; 5] = [
        EncoderKind::Graph2Vec,
        EncoderKind::Gcn,
        EncoderKind::GcnGat,
        EncoderKind::GcnGin,
        EncoderKind::GatGin,
    ];

    /// Short label used in experiment output (matches the paper's column
    /// headers).
    pub fn label(&self) -> &'static str {
        match self {
            EncoderKind::Graph2Vec => "Graph2Vec",
            EncoderKind::Gcn => "GCN",
            EncoderKind::GcnGat => "GCN+GAT",
            EncoderKind::GcnGin => "GCN+GIN",
            EncoderKind::GatGin => "GAT+GIN",
        }
    }
}

/// One layer of a message-passing encoder.
#[derive(Debug, Clone)]
enum AnyLayer {
    Gat(GatLayer),
    Gin(GinLayer),
    Gcn(GcnLayer),
}

impl AnyLayer {
    fn forward_batch(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        batch: usize,
    ) -> Var {
        match self {
            AnyLayer::Gat(l) => l.forward_batch(params, graph, h, batch),
            AnyLayer::Gin(l) => l.forward_batch(params, graph, h, batch),
            AnyLayer::Gcn(l) => l.forward_batch(params, graph, h, batch),
        }
    }

    /// Forward pass with the inter-layer ReLU fused into the layer's final
    /// kernel pass.
    fn forward_batch_relu(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        batch: usize,
    ) -> Var {
        match self {
            AnyLayer::Gat(l) => l.forward_batch_relu(params, graph, h, batch),
            AnyLayer::Gin(l) => l.forward_batch_relu(params, graph, h, batch),
            AnyLayer::Gcn(l) => l.forward_batch_relu(params, graph, h, batch),
        }
    }
}

/// Structural (sample-independent) node features used by the Graph2Vec-style
/// encoder: normalised degree plus two rounds of Weisfeiler-Lehman colour
/// refinement hashed into `[0, 1]`.
fn structural_features(graph: &FeatureGraph) -> Matrix {
    let n = graph.n_nodes();
    let mut colors: Vec<u64> = (0..n).map(|i| graph.degree(i) as u64).collect();
    let mut features = Matrix::zeros(n, 3);
    for i in 0..n {
        features.set(i, 0, graph.degree(i) as f32 / n.max(1) as f32);
    }
    for round in 0..2 {
        let mut next = vec![0u64; n];
        for i in 0..n {
            let mut neighbour_colors: Vec<u64> = graph.neighbors(i).map(|j| colors[j]).collect();
            neighbour_colors.sort_unstable();
            let mut hash = colors[i].wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for c in neighbour_colors {
                hash = hash
                    .rotate_left(13)
                    .wrapping_add(c.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            }
            next[i] = hash;
            features.set(i, 1 + round, (hash as f64 / u64::MAX as f64) as f32);
        }
        colors = next;
    }
    features
}

/// The shared GNN encoder producing feature embeddings `Z ∈ R^{n × h}`.
#[derive(Debug, Clone)]
pub struct Encoder {
    kind: EncoderKind,
    layers: Vec<AnyLayer>,
    graph2vec: Option<Graph2VecPath>,
    hidden_dim: usize,
}

/// The non-message-passing path for [`EncoderKind::Graph2Vec`].
#[derive(Debug, Clone)]
struct Graph2VecPath {
    structural: Matrix,
    mlp: Mlp,
}

impl Encoder {
    /// Build an encoder of `n_layers` layers with hidden dimension
    /// `hidden_dim` over the given feature graph. The paper's configuration is
    /// four layers of 64 units.
    pub fn new(
        kind: EncoderKind,
        graph: &FeatureGraph,
        hidden_dim: usize,
        n_layers: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        assert!(n_layers >= 1, "encoder needs at least one layer");
        assert!(hidden_dim >= 1, "hidden dimension must be positive");
        if kind == EncoderKind::Graph2Vec {
            let structural = structural_features(graph);
            // input per node: its value (1) plus the 3 structural features
            let mlp = Mlp::new("encoder.graph2vec", 4, hidden_dim, hidden_dim, store, rng);
            return Self {
                kind,
                layers: Vec::new(),
                graph2vec: Some(Graph2VecPath { structural, mlp }),
                hidden_dim,
            };
        }

        let mut layers = Vec::with_capacity(n_layers);
        for i in 0..n_layers {
            let in_dim = if i == 0 { 1 } else { hidden_dim };
            let name = format!("encoder.layer{i}");
            let layer = match kind {
                EncoderKind::Gcn => {
                    AnyLayer::Gcn(GcnLayer::new(&name, in_dim, hidden_dim, store, rng))
                }
                EncoderKind::GcnGat => {
                    if i % 2 == 0 {
                        AnyLayer::Gcn(GcnLayer::new(&name, in_dim, hidden_dim, store, rng))
                    } else {
                        AnyLayer::Gat(GatLayer::new(&name, in_dim, hidden_dim, store, rng))
                    }
                }
                EncoderKind::GcnGin => {
                    if i % 2 == 0 {
                        AnyLayer::Gcn(GcnLayer::new(&name, in_dim, hidden_dim, store, rng))
                    } else {
                        AnyLayer::Gin(GinLayer::new(&name, in_dim, hidden_dim, store, rng))
                    }
                }
                EncoderKind::GatGin => {
                    if i % 2 == 0 {
                        AnyLayer::Gat(GatLayer::new(&name, in_dim, hidden_dim, store, rng))
                    } else {
                        AnyLayer::Gin(GinLayer::new(&name, in_dim, hidden_dim, store, rng))
                    }
                }
                EncoderKind::Graph2Vec => unreachable!("handled above"),
            };
            layers.push(layer);
        }
        Self {
            kind,
            layers,
            graph2vec: None,
            hidden_dim,
        }
    }

    /// The encoder architecture.
    pub fn kind(&self) -> EncoderKind {
        self.kind
    }

    /// Embedding dimensionality `h`.
    pub fn out_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of message-passing layers (0 for Graph2Vec).
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass: per-sample node features `x ∈ R^{n × 1}` → embeddings
    /// `Z ∈ R^{n × h}`.
    pub fn forward(&self, params: &BoundParams, graph: &BoundGraph, x: &Var) -> Var {
        self.forward_batch(params, graph, x, 1)
    }

    /// Batched forward pass: `batch` samples stacked vertically,
    /// `x ∈ R^{(B·n) × 1}` → embeddings `Z ∈ R^{(B·n) × h}`. Every layer
    /// confines message passing to its own `n`-row block, so block `b` of the
    /// result equals `forward` of sample `b` alone.
    pub fn forward_batch(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        x: &Var,
        batch: usize,
    ) -> Var {
        if let Some(path) = &self.graph2vec {
            let structural = x.tape().constant(path.structural.tile_rows(batch));
            let features = x.concat_cols(&structural);
            return path.mlp.forward_relu(params, &features);
        }
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = if i != last {
                // inter-layer ReLU fused into the layer's last kernel pass
                layer.forward_batch_relu(params, graph, &h, batch)
            } else {
                layer.forward_batch(params, graph, &h, batch)
            };
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GraphContext;
    use dquag_tensor::Tape;

    fn graph() -> FeatureGraph {
        let mut g = FeatureGraph::new(vec!["a", "b", "c", "d", "e"]);
        for (i, j) in [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)] {
            g.add_edge(i, j).unwrap();
        }
        g
    }

    fn run_encoder(kind: EncoderKind, values: &[f32]) -> Matrix {
        let g = graph();
        let ctx = GraphContext::new(&g);
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(7);
        let encoder = Encoder::new(kind, &g, 8, 4, &mut store, &mut rng);
        let tape = Tape::new();
        let bound = store.bind(&tape);
        let graph_bound = ctx.bind(&tape);
        let x = tape.leaf(Matrix::col_vector(values), false);
        encoder.forward(&bound, &graph_bound, &x).value()
    }

    #[test]
    fn every_architecture_produces_finite_embeddings_of_right_shape() {
        for kind in EncoderKind::ALL {
            let z = run_encoder(kind, &[0.1, 0.4, 0.9, 0.2, 0.7]);
            assert_eq!(z.shape(), (5, 8), "{kind:?}");
            assert!(z.is_finite(), "{kind:?} produced non-finite values");
        }
    }

    #[test]
    fn labels_match_paper_table() {
        let labels: Vec<&str> = EncoderKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["Graph2Vec", "GCN", "GCN+GAT", "GCN+GIN", "GAT+GIN"]
        );
    }

    #[test]
    fn gat_gin_alternation_has_expected_layer_count_and_params() {
        let g = graph();
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(1);
        let enc = Encoder::new(EncoderKind::GatGin, &g, 16, 4, &mut store, &mut rng);
        assert_eq!(enc.n_layers(), 4);
        assert_eq!(enc.kind(), EncoderKind::GatGin);
        assert_eq!(enc.out_dim(), 16);
        // 2 GAT layers: 3 params each; 2 GIN layers: 5 params each (2×(w+b) + eps)
        assert_eq!(store.n_params(), 2 * 3 + 2 * 5);
    }

    #[test]
    fn graph2vec_ignores_message_passing_but_uses_structure() {
        let g = graph();
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(5);
        let enc = Encoder::new(EncoderKind::Graph2Vec, &g, 8, 4, &mut store, &mut rng);
        assert_eq!(enc.n_layers(), 0);
        let ctx = GraphContext::new(&g);
        let tape = Tape::new();
        let bound = store.bind(&tape);
        let graph_bound = ctx.bind(&tape);
        let x = tape.leaf(Matrix::col_vector(&[0.5, 0.5, 0.5, 0.5, 0.5]), false);
        let z = enc.forward(&bound, &graph_bound, &x).value();
        assert_eq!(z.shape(), (5, 8));
    }

    #[test]
    fn embeddings_depend_on_input_values() {
        let a = run_encoder(EncoderKind::GatGin, &[0.1, 0.2, 0.3, 0.4, 0.5]);
        let b = run_encoder(EncoderKind::GatGin, &[0.9, 0.2, 0.3, 0.4, 0.5]);
        assert!(
            a.max_abs_diff(&b) > 1e-5,
            "changing a feature must change embeddings"
        );
    }

    #[test]
    fn structural_features_are_deterministic_and_bounded() {
        let g = graph();
        let f1 = structural_features(&g);
        let f2 = structural_features(&g);
        assert_eq!(f1, f2);
        assert_eq!(f1.shape(), (5, 3));
        assert!(f1.min().unwrap() >= 0.0);
        assert!(f1.max().unwrap() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layer_encoder_is_rejected() {
        let g = graph();
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(1);
        Encoder::new(EncoderKind::Gcn, &g, 8, 0, &mut store, &mut rng);
    }
}
