//! The complete DQuaG network: shared GNN encoder + dual decoders, plus the
//! multi-task loss that ties them together.
//!
//! The training *procedure* (epoch loop, threshold calibration, phase-2
//! validation logic) lives in `dquag-core`; this module owns the
//! differentiable part: forward passes and loss construction.

use crate::context::{BoundGraph, GraphContext};
use crate::decoder::DualDecoder;
use crate::encoder::{Encoder, EncoderKind};
use crate::health::{ActivationFault, HealthError};
use crate::params::{BoundParams, ParamStore};
use dquag_graph::FeatureGraph;
use dquag_tensor::init::InitRng;
use dquag_tensor::optim::Adam;
use dquag_tensor::{Matrix, Tape, Var};

/// Hyper-parameters of the network. Defaults reproduce the paper's §4.4
/// setting: four layers, hidden dimension 64, GAT+GIN interleaving,
/// α = β = 1.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Hidden embedding width `h`.
    pub hidden_dim: usize,
    /// Number of encoder layers.
    pub n_layers: usize,
    /// Encoder architecture.
    pub encoder: EncoderKind,
    /// Weight of the validation (weighted reconstruction) loss.
    pub alpha: f32,
    /// Weight of the repair loss.
    pub beta: f32,
    /// Sharpness of the normalcy weighting in the validation loss; 0 degrades
    /// to a plain (unweighted) reconstruction loss, which is the
    /// `ablation_weighted_loss` setting.
    pub weight_sharpness: f32,
    /// Seed for parameter initialisation.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            n_layers: 4,
            encoder: EncoderKind::GatGin,
            alpha: 1.0,
            beta: 1.0,
            weight_sharpness: 2.0,
            seed: 42,
        }
    }
}

impl ModelConfig {
    /// A reduced configuration for unit tests and quick experiments: smaller
    /// hidden dimension, same architecture.
    pub fn small() -> Self {
        Self {
            hidden_dim: 16,
            ..Self::default()
        }
    }
}

/// Output of a single-sample forward pass.
#[derive(Debug, Clone)]
pub struct SampleOutput {
    /// The input node features (`n × 1`), kept for loss construction.
    pub input: Var,
    /// Validation-decoder reconstruction (`n × 1`).
    pub reconstruction: Var,
    /// Repair-decoder output (`n × 1`).
    pub repair: Var,
}

impl SampleOutput {
    /// Squared reconstruction error per feature (the per-feature error list
    /// `e_i = [e_i1 … e_in]` of §3.2.1).
    pub fn per_feature_errors(&self) -> Vec<f32> {
        let x = self.input.value();
        let r = self.reconstruction.value();
        (0..x.rows())
            .map(|i| {
                let d = x.get(i, 0) - r.get(i, 0);
                d * d
            })
            .collect()
    }

    /// Mean squared reconstruction error of the sample (the instance-level
    /// reconstruction error `e_i`).
    pub fn total_error(&self) -> f32 {
        let errors = self.per_feature_errors();
        if errors.is_empty() {
            0.0
        } else {
            errors.iter().sum::<f32>() / errors.len() as f32
        }
    }

    /// The repair decoder's proposed feature values.
    pub fn repair_values(&self) -> Vec<f32> {
        let r = self.repair.value();
        (0..r.rows()).map(|i| r.get(i, 0)).collect()
    }
}

/// Output of a batched forward pass: `B` samples stacked vertically into
/// `(B·n) × 1` column matrices. Values still live on the forward tape; call
/// [`BatchOutput::detach`] to lift them off before truncating the tape.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The stacked input features (`B·n × 1`).
    pub input: Var,
    /// Validation-decoder reconstruction (`B·n × 1`).
    pub reconstruction: Var,
    /// Repair-decoder output (`B·n × 1`).
    pub repair: Var,
    n_features: usize,
    batch: usize,
}

impl BatchOutput {
    /// Number of samples in the batch.
    pub fn batch_len(&self) -> usize {
        self.batch
    }

    /// Copy the values off the tape into a standalone [`BatchScores`] —
    /// per-feature errors are computed here, so only the error and repair
    /// buffers survive — and the forward tape can be truncated and reused
    /// for the next batch.
    pub fn detach(&self) -> BatchScores {
        let mut errors = Vec::new();
        extend_squared_errors(
            &self.input.value(),
            &self.reconstruction.value(),
            &mut errors,
        );
        BatchScores {
            n_features: self.n_features,
            errors,
            repair: self.repair.value().into_vec(),
        }
    }
}

/// Append element-wise `(x − r)²` — the per-feature reconstruction errors —
/// to `out`. The single definition shared by [`BatchOutput::detach`] and the
/// tiled scoring hot path.
fn extend_squared_errors(x: &Matrix, r: &Matrix, out: &mut Vec<f32>) {
    out.reserve(x.len());
    out.extend(x.as_slice().iter().zip(r.as_slice().iter()).map(|(x, r)| {
        let d = x - r;
        d * d
    }));
}

/// Tape-independent scores of a batched forward pass: per-feature squared
/// reconstruction errors and repair values, row-major with stride
/// `n_features`, plus per-sample accessors.
#[derive(Debug, Clone)]
pub struct BatchScores {
    n_features: usize,
    errors: Vec<f32>,
    repair: Vec<f32>,
}

impl BatchScores {
    fn empty(n_features: usize) -> Self {
        Self {
            n_features,
            errors: Vec::new(),
            repair: Vec::new(),
        }
    }

    /// Number of samples scored.
    pub fn len(&self) -> usize {
        self.errors
            .len()
            .max(self.repair.len())
            .checked_div(self.n_features)
            .unwrap_or(0)
    }

    /// True for the empty batch.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty() && self.repair.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Squared reconstruction error per feature of sample `i` — identical in
    /// meaning to [`SampleOutput::per_feature_errors`].
    pub fn per_feature_errors(&self, i: usize) -> Vec<f32> {
        self.errors[i * self.n_features..(i + 1) * self.n_features].to_vec()
    }

    /// Copy every sample's per-feature squared errors, row-major, into
    /// `out` (`len() × n_features` elements) — the allocation-free bulk form
    /// of [`BatchScores::per_feature_errors`] for consumers scoring large
    /// dataframes.
    pub fn write_feature_errors(&self, out: &mut [f32]) {
        out.copy_from_slice(&self.errors);
    }

    /// Mean squared reconstruction error of every sample, in batch order —
    /// identical in meaning to [`SampleOutput::total_error`].
    pub fn instance_errors(&self) -> Vec<f32> {
        if self.n_features == 0 {
            return Vec::new();
        }
        self.errors
            .chunks(self.n_features)
            .map(|errors| errors.iter().sum::<f32>() / errors.len() as f32)
            .collect()
    }

    /// The repair decoder's proposed feature values for sample `i`.
    pub fn repair_values(&self, i: usize) -> Vec<f32> {
        self.repair[i * self.n_features..(i + 1) * self.n_features].to_vec()
    }
}

/// A reusable inference context: a no-grad tape with the network parameters
/// and graph constants bound exactly once.
///
/// Binding clones every parameter matrix onto the tape; doing that per sample
/// used to dominate the phase-2 hot path. A session hoists the binding: each
/// [`DquagNetwork::score_matrix`] call appends O(layers) value-only nodes for
/// the forward pass and rewinds the tape to the bound baseline afterwards, so
/// the session never grows across batches.
///
/// Sessions are single-threaded (the tape is `Rc`-based); parallel validation
/// workers each create their own from a shared `&DquagNetwork`.
#[derive(Debug)]
pub struct InferenceSession {
    tape: Tape,
    params: BoundParams,
    graph: BoundGraph,
    base_len: usize,
    forward_passes: std::cell::Cell<u64>,
    rows_scored: std::cell::Cell<u64>,
    self_check: std::cell::Cell<Option<SelfCheck>>,
    health: std::cell::RefCell<Option<HealthError>>,
    activation_fault: std::cell::RefCell<Option<ActivationFault>>,
}

/// Periodic self-check configuration armed on a session.
#[derive(Debug, Clone, Copy)]
struct SelfCheck {
    /// Checksum the network's parameter store hashed to at fit time.
    expected: u64,
    /// Verify the store checksum every this many forward passes. The check
    /// always fires on the *first* pass of a session, so every scoring call
    /// re-verifies the store it just bound from.
    period: u64,
}

impl InferenceSession {
    /// Current node count of the inference tape (== [`Self::base_len`]
    /// between batches; used by tape-growth regression tests).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Node count right after binding — the truncation baseline.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Matrix-level forward passes (one per cache-sized tile) executed on
    /// this session since it was opened.
    pub fn forward_passes(&self) -> u64 {
        self.forward_passes.get()
    }

    /// Encoded rows scored through this session since it was opened.
    pub fn rows_scored(&self) -> u64 {
        self.rows_scored.get()
    }

    /// Arm the runtime self-checks on this session.
    ///
    /// `expected` is the parameter-store checksum captured at fit time;
    /// `period` (≥ 1) is how many forward passes may elapse between checksum
    /// re-verifications. Arming also enables the process-wide SIMD-epilogue
    /// finite guard ([`dquag_tensor::set_finite_guard`]) and clears any stale
    /// guard trip latched on this thread, so a trip observed later is
    /// attributable to this session's own forward passes (sessions are
    /// single-threaded).
    pub fn arm_self_check(&self, expected: u64, period: u64) {
        self.self_check.set(Some(SelfCheck {
            expected,
            period: period.max(1),
        }));
        dquag_tensor::set_finite_guard(true);
        let _ = dquag_tensor::take_finite_guard_trip();
    }

    /// Whether self-checks are armed.
    pub fn self_check_armed(&self) -> bool {
        self.self_check.get().is_some()
    }

    /// Install (or clear) an activation-corruption hook — the activation-level
    /// fault-injection seam. See [`ActivationFault`].
    pub fn set_activation_fault(&self, fault: Option<ActivationFault>) {
        *self.activation_fault.borrow_mut() = fault;
    }

    /// The first health violation recorded on this session, if any. Once a
    /// violation is recorded, further scoring through the session
    /// short-circuits to empty results, so callers must check this after
    /// every scoring call before trusting the scores.
    pub fn health_violation(&self) -> Option<HealthError> {
        self.health.borrow().clone()
    }

    /// Take (and clear) the recorded health violation.
    pub fn take_health_violation(&self) -> Option<HealthError> {
        self.health.borrow_mut().take()
    }

    fn record_health(&self, error: HealthError) {
        let mut slot = self.health.borrow_mut();
        if slot.is_none() {
            *slot = Some(error);
        }
    }
}

/// The multi-task objective `L_total = α·L_validation + β·L_repair`.
#[derive(Debug, Clone, Copy)]
pub struct MultiTaskLoss {
    /// Weight of the validation loss.
    pub alpha: f32,
    /// Weight of the repair loss.
    pub beta: f32,
}

impl MultiTaskLoss {
    /// Build the loss for a batch of forward outputs.
    ///
    /// `weights[i]` is the normalcy weight `w_i` of sample `i` in the
    /// validation term; the repair term is always unweighted (the paper trains
    /// it directly towards the clean values).
    pub fn batch_loss(&self, tape: &Tape, outputs: &[SampleOutput], weights: &[f32]) -> Var {
        assert_eq!(
            outputs.len(),
            weights.len(),
            "one weight per sample is required"
        );
        assert!(!outputs.is_empty(), "batch loss needs at least one sample");
        let n = outputs.len() as f32;
        let mut total: Option<Var> = None;
        for (out, &w) in outputs.iter().zip(weights.iter()) {
            let diff_val = out.reconstruction.sub(&out.input).square().mean();
            let diff_rep = out.repair.sub(&out.input).square().mean();
            let sample_loss = diff_val
                .scale(self.alpha * w / n)
                .add(&diff_rep.scale(self.beta / n));
            total = Some(match total {
                Some(t) => t.add(&sample_loss),
                None => sample_loss,
            });
        }
        let _ = tape; // the loss already lives on the callers' tape via the outputs
        total.expect("non-empty batch")
    }
}

/// Normalcy weights from per-sample reconstruction errors: samples whose error
/// is below the batch mean get weights above 1, clearly abnormal samples get
/// weights pushed towards 0 (§3.1.2, validation-decoder loss).
pub fn normalcy_weights(errors: &[f32], sharpness: f32) -> Vec<f32> {
    if errors.is_empty() {
        return Vec::new();
    }
    if sharpness <= 0.0 {
        return vec![1.0; errors.len()];
    }
    let mean = errors.iter().sum::<f32>() / errors.len() as f32;
    let scale = mean.max(1e-8);
    let raw: Vec<f32> = errors
        .iter()
        .map(|&e| (-sharpness * (e / scale - 1.0)).exp().clamp(0.05, 20.0))
        .collect();
    // Renormalise to mean 1 so the loss magnitude stays comparable across
    // batches regardless of the weight distribution.
    let raw_mean = raw.iter().sum::<f32>() / raw.len() as f32;
    raw.iter().map(|w| w / raw_mean).collect()
}

/// The full DQuaG network over a fixed feature graph.
#[derive(Debug, Clone)]
pub struct DquagNetwork {
    config: ModelConfig,
    params: ParamStore,
    encoder: Encoder,
    decoder: DualDecoder,
    context: GraphContext,
    n_features: usize,
}

impl DquagNetwork {
    /// Build a network for the given feature graph.
    pub fn new(graph: &FeatureGraph, config: ModelConfig) -> Self {
        let mut params = ParamStore::new();
        let mut rng = InitRng::seeded(config.seed);
        let encoder = Encoder::new(
            config.encoder,
            graph,
            config.hidden_dim,
            config.n_layers,
            &mut params,
            &mut rng,
        );
        let decoder = DualDecoder::new(config.hidden_dim, &mut params, &mut rng);
        Self {
            config,
            params,
            encoder,
            decoder,
            context: GraphContext::new(graph),
            n_features: graph.n_nodes(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of input features (graph nodes).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of scalar weights in the model.
    pub fn n_weights(&self) -> usize {
        self.params.n_weights()
    }

    /// The parameter store (read access, e.g. for checkpoint-style tests).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Mutable access to the parameter store — the fault-injection seam used
    /// by `dquag-faults` to flip bits in fitted weights. Mutating a fitted
    /// store invalidates the checksum captured at fit time, which is exactly
    /// what the session self-checks detect; normal code goes through
    /// [`DquagNetwork::import_params`] or the optimizer instead.
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.params
    }

    /// Overwrite the network's parameters with exported `(name, matrix)`
    /// pairs (see [`ParamStore::import`]).
    ///
    /// The network must have been built from the same `ModelConfig` and
    /// feature graph as the exporting network — `DquagNetwork::new` is
    /// deterministic in those inputs, so rebuild-then-import reconstructs a
    /// fitted network exactly. Structural mismatches are rejected with an
    /// error naming the offending parameter.
    pub fn import_params(&mut self, params: &[(String, Matrix)]) -> Result<(), String> {
        self.params.import(params)
    }

    /// Bind parameters and graph constants to a fresh forward tape.
    pub fn bind(&self, tape: &Tape) -> (BoundParams, BoundGraph) {
        (self.params.bind(tape), self.context.bind(tape))
    }

    /// Forward pass for one sample (encoded feature vector of length
    /// `n_features`).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features` — callers always derive the
    /// vector from the same schema the graph was built on.
    pub fn forward_sample(
        &self,
        tape: &Tape,
        params: &BoundParams,
        graph: &BoundGraph,
        features: &[f32],
    ) -> SampleOutput {
        assert_eq!(
            features.len(),
            self.n_features,
            "expected {} features, got {}",
            self.n_features,
            features.len()
        );
        let input = tape.constant(Matrix::col_vector(features));
        let z = self.encoder.forward(params, graph, &input);
        let reconstruction = self.decoder.reconstruct(params, &z);
        let repair = self.decoder.repair(params, &z);
        SampleOutput {
            input,
            reconstruction,
            repair,
        }
    }

    /// Batched forward pass: `rows` samples stacked vertically into one
    /// `(B·n) × 1` matrix, run through encoder, GNN layers and both decoders
    /// exactly once. Block `b` of every output equals a
    /// [`DquagNetwork::forward_sample`] of row `b` alone — the equivalence
    /// suite in `tests/batched_forward.rs` holds the two paths together.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or any row length differs from
    /// [`DquagNetwork::n_features`].
    pub fn forward_batch<R: AsRef<[f32]>>(
        &self,
        tape: &Tape,
        params: &BoundParams,
        graph: &BoundGraph,
        rows: &[R],
    ) -> BatchOutput {
        assert!(!rows.is_empty(), "forward_batch needs at least one row");
        let batch = rows.len();
        let input = tape.constant(self.stack_rows(rows));
        let z = self.encoder.forward_batch(params, graph, &input, batch);
        let reconstruction = self.decoder.reconstruct(params, &z);
        let repair = self.decoder.repair(params, &z);
        BatchOutput {
            input,
            reconstruction,
            repair,
            n_features: self.n_features,
            batch,
        }
    }

    /// Open a reusable inference session: a no-grad tape with parameters and
    /// graph constants bound once, for use with
    /// [`DquagNetwork::score_matrix`].
    pub fn inference_session(&self) -> InferenceSession {
        dquag_tensor::tune_allocator_for_inference();
        let tape = Tape::no_grad();
        let (params, graph) = self.bind(&tape);
        let base_len = tape.len();
        InferenceSession {
            tape,
            params,
            graph,
            base_len,
            forward_passes: std::cell::Cell::new(0),
            rows_scored: std::cell::Cell::new(0),
            self_check: std::cell::Cell::new(None),
            health: std::cell::RefCell::new(None),
            activation_fault: std::cell::RefCell::new(None),
        }
    }

    /// Samples per matrix-level forward pass such that one activation matrix
    /// (`tile · n × hidden`) stays within ~128 KiB. Beyond that the stacked
    /// intermediates fall out of L2 and every elementwise pass pays
    /// last-level-cache latency — measured as a ~15% throughput loss at
    /// B = 256 on a 2 MiB-L2 part.
    fn inference_tile_rows(&self) -> usize {
        const ELEMS_BUDGET: usize = 32 * 1024; // 128 KiB of f32
        (ELEMS_BUDGET / (self.n_features * self.config.hidden_dim).max(1)).max(1)
    }

    /// Score a batch of encoded rows through matrix-level forward passes on
    /// the session's cached bindings, returning detached [`BatchScores`]
    /// with both reconstruction errors and repair values. Large batches are
    /// processed in cache-sized tiles (row results are position-independent,
    /// so tiling is invisible — see `tests/batched_forward.rs`). The session
    /// tape is rewound to its baseline before returning, so repeated calls
    /// never grow it. The empty batch yields empty scores without touching
    /// the tape.
    pub fn score_matrix<R: AsRef<[f32]>>(
        &self,
        session: &InferenceSession,
        rows: &[R],
    ) -> BatchScores {
        self.score_tiled(session, rows, true, true)
    }

    /// Like [`DquagNetwork::score_matrix`] but skips the repair decoder —
    /// the validation scoring hot path, where only reconstruction errors are
    /// consumed and the repair head would be ~8% wasted compute per row.
    /// The returned scores carry no repair values
    /// ([`BatchScores::repair_values`] would panic); use
    /// [`DquagNetwork::score_matrix`] when repairs are needed.
    pub fn score_errors<R: AsRef<[f32]>>(
        &self,
        session: &InferenceSession,
        rows: &[R],
    ) -> BatchScores {
        self.score_tiled(session, rows, true, false)
    }

    /// Like [`DquagNetwork::score_matrix`] but skips the validation decoder
    /// and the error computation — the repair hot path, where only the
    /// repair head's suggestions are consumed. The returned scores carry no
    /// reconstruction errors ([`BatchScores::per_feature_errors`] would
    /// panic).
    pub fn score_repairs<R: AsRef<[f32]>>(
        &self,
        session: &InferenceSession,
        rows: &[R],
    ) -> BatchScores {
        self.score_tiled(session, rows, false, true)
    }

    fn score_tiled<R: AsRef<[f32]>>(
        &self,
        session: &InferenceSession,
        rows: &[R],
        with_errors: bool,
        with_repair: bool,
    ) -> BatchScores {
        if rows.is_empty() || session.health.borrow().is_some() {
            // A session with a recorded health violation is poisoned: keep
            // returning empty scores until the caller notices rather than
            // hand out numbers from a model known to be corrupt.
            return BatchScores::empty(self.n_features);
        }
        let check = session.self_check.get();
        // Split into equally sized cache-resident tiles (a trailing 1-row
        // tile would pay a whole pass of fixed costs for one sample).
        let n_tiles = rows.len().div_ceil(self.inference_tile_rows());
        let tile = rows.len().div_ceil(n_tiles);
        let stacked = rows.len() * self.n_features;
        let mut errors = Vec::with_capacity(if with_errors { stacked } else { 0 });
        let mut repair = Vec::with_capacity(if with_repair { stacked } else { 0 });
        for chunk in rows.chunks(tile) {
            if let Some(check) = check {
                // Re-verify the store every `period` passes, including pass
                // zero: corruption between validate calls is caught before
                // this call's first tile is trusted.
                if session.forward_passes.get().is_multiple_of(check.period) {
                    let actual = self.params.checksum();
                    if actual != check.expected {
                        session.record_health(HealthError::ChecksumMismatch {
                            expected: check.expected,
                            actual,
                        });
                        break;
                    }
                }
            }
            let errors_before = errors.len();
            let repair_before = repair.len();
            let input = session.tape.constant(self.stack_rows(chunk));
            let z =
                self.encoder
                    .forward_batch(&session.params, &session.graph, &input, chunk.len());
            if with_errors {
                let reconstruction = self.decoder.reconstruct(&session.params, &z);
                let mut reconstruction = reconstruction.value();
                if let Some(fault) = session.activation_fault.borrow().as_ref() {
                    (fault.0)(&mut reconstruction);
                }
                extend_squared_errors(&input.value(), &reconstruction, &mut errors);
            }
            if with_repair {
                let mut proposed = self.decoder.repair(&session.params, &z).value();
                if let Some(fault) = session.activation_fault.borrow().as_ref() {
                    (fault.0)(&mut proposed);
                }
                repair.extend_from_slice(proposed.as_slice());
            }
            session.tape.truncate(session.base_len);
            session.forward_passes.set(session.forward_passes.get() + 1);
            session
                .rows_scored
                .set(session.rows_scored.get() + chunk.len() as u64);
            if check.is_some() {
                if let Some(trip) = dquag_tensor::take_finite_guard_trip() {
                    session.record_health(HealthError::NonFiniteKernel { index: trip.index });
                    break;
                }
                // The kernel guard cannot see poison introduced after the
                // product (activations, softmax); scan what scoring actually
                // consumes. NaN propagates through (x − r)², so one pass over
                // the tile's new error/repair elements covers both operands.
                if let Some(i) = errors[errors_before..].iter().position(|v| !v.is_finite()) {
                    session.record_health(HealthError::NonFiniteScores {
                        stage: "reconstruction_error",
                        index: errors_before + i,
                    });
                    break;
                }
                if let Some(i) = repair[repair_before..].iter().position(|v| !v.is_finite()) {
                    session.record_health(HealthError::NonFiniteScores {
                        stage: "repair",
                        index: repair_before + i,
                    });
                    break;
                }
            }
        }
        if session.health.borrow().is_some() {
            // Never hand partially scored buffers to a caller: a truncated
            // error vector would silently mis-align `write_feature_errors`.
            return BatchScores::empty(self.n_features);
        }
        BatchScores {
            n_features: self.n_features,
            errors,
            repair,
        }
    }

    /// Stack encoded rows into one `(B·n) × 1` column matrix, validating
    /// every row length.
    fn stack_rows<R: AsRef<[f32]>>(&self, rows: &[R]) -> Matrix {
        let mut stacked = Vec::with_capacity(rows.len() * self.n_features);
        for row in rows {
            let row = row.as_ref();
            assert_eq!(
                row.len(),
                self.n_features,
                "expected {} features, got {}",
                self.n_features,
                row.len()
            );
            stacked.extend_from_slice(row);
        }
        Matrix::from_vec(rows.len() * self.n_features, 1, stacked)
            .expect("stacked batch has B·n entries")
    }

    /// Inference-only helper: per-feature squared reconstruction errors for a
    /// sample. Creates a private tape, so it can be called from parallel
    /// validation workers.
    pub fn reconstruction_errors(&self, features: &[f32]) -> Vec<f32> {
        let tape = Tape::new();
        let (params, graph) = self.bind(&tape);
        self.forward_sample(&tape, &params, &graph, features)
            .per_feature_errors()
    }

    /// Inference-only helper: the repair decoder's proposed values for a
    /// sample.
    pub fn repair_values(&self, features: &[f32]) -> Vec<f32> {
        let tape = Tape::new();
        let (params, graph) = self.bind(&tape);
        self.forward_sample(&tape, &params, &graph, features)
            .repair_values()
    }

    /// One optimisation step on a mini-batch of encoded samples.
    ///
    /// Returns `(total_loss, per_sample_errors)` where the errors are the
    /// *pre-update* instance reconstruction errors (used by the trainer to
    /// collect the error statistics of §3.1.4).
    pub fn train_batch(&mut self, batch: &[Vec<f32>], optimizer: &mut Adam) -> (f32, Vec<f32>) {
        assert!(!batch.is_empty(), "train_batch needs at least one sample");
        let tape = Tape::new();
        let (params, graph) = self.bind(&tape);
        let outputs: Vec<SampleOutput> = batch
            .iter()
            .map(|row| self.forward_sample(&tape, &params, &graph, row))
            .collect();
        let errors: Vec<f32> = outputs.iter().map(SampleOutput::total_error).collect();
        let weights = normalcy_weights(&errors, self.config.weight_sharpness);
        let loss = MultiTaskLoss {
            alpha: self.config.alpha,
            beta: self.config.beta,
        }
        .batch_loss(&tape, &outputs, &weights);
        let loss_value = loss.value().get(0, 0);
        tape.backward(&loss);
        self.params.apply_gradients(&params, optimizer);
        (loss_value, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> FeatureGraph {
        let mut g = FeatureGraph::new(vec!["a", "b", "c", "d"]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(0, 3).unwrap();
        g
    }

    /// Clean samples follow the pattern b = 1 - a, c = a, d = 0.5.
    fn clean_sample(i: usize) -> Vec<f32> {
        let a = (i % 10) as f32 / 10.0;
        vec![a, 1.0 - a, a, 0.5]
    }

    #[test]
    fn network_construction_and_shapes() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        assert_eq!(net.n_features(), 4);
        assert!(net.n_weights() > 0);
        assert_eq!(net.config().hidden_dim, 16);

        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        let out = net.forward_sample(&tape, &params, &graph, &clean_sample(3));
        assert_eq!(out.reconstruction.shape(), (4, 1));
        assert_eq!(out.repair.shape(), (4, 1));
        assert_eq!(out.per_feature_errors().len(), 4);
        assert!(out.total_error().is_finite());
        assert_eq!(out.repair_values().len(), 4);
    }

    #[test]
    #[should_panic(expected = "expected 4 features")]
    fn wrong_feature_count_panics() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        net.forward_sample(&tape, &params, &graph, &[0.1, 0.2]);
    }

    #[test]
    fn training_reduces_reconstruction_error_on_clean_data() {
        let mut config = ModelConfig::small();
        config.n_layers = 2;
        config.hidden_dim = 12;
        let mut net = DquagNetwork::new(&small_graph(), config);
        let mut adam = Adam::with_learning_rate(0.01);
        let batch: Vec<Vec<f32>> = (0..32).map(clean_sample).collect();

        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let (loss, _) = net.train_batch(&batch, &mut adam);
            first.get_or_insert(loss);
            last = loss;
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.5,
            "training should halve the loss: first {first}, last {last}"
        );
    }

    #[test]
    fn anomalous_sample_has_higher_error_after_training() {
        let mut config = ModelConfig::small();
        config.n_layers = 2;
        config.hidden_dim = 12;
        let mut net = DquagNetwork::new(&small_graph(), config);
        let mut adam = Adam::with_learning_rate(0.01);
        let batch: Vec<Vec<f32>> = (0..40).map(clean_sample).collect();
        for _ in 0..120 {
            net.train_batch(&batch, &mut adam);
        }
        let clean_err: f32 = (0..10)
            .map(|i| {
                net.reconstruction_errors(&clean_sample(i))
                    .iter()
                    .sum::<f32>()
            })
            .sum::<f32>()
            / 10.0;
        // violate the a/b dependency and push a value far out of range
        let dirty_err: f32 = net
            .reconstruction_errors(&[0.9, 0.9, 0.1, 3.0])
            .iter()
            .sum();
        assert!(
            dirty_err > clean_err * 2.0,
            "dirty error {dirty_err} should clearly exceed clean error {clean_err}"
        );
    }

    #[test]
    fn normalcy_weights_favour_low_error_samples() {
        let errors = vec![0.01, 0.02, 0.015, 0.5];
        let w = normalcy_weights(&errors, 2.0);
        assert_eq!(w.len(), 4);
        let mean: f32 = w.iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-4, "weights renormalised to mean 1");
        assert!(w[3] < w[0], "the abnormal sample gets the smallest weight");
        assert!(w[3] < 0.5);
    }

    #[test]
    fn zero_sharpness_disables_weighting() {
        let w = normalcy_weights(&[0.1, 5.0, 0.2], 0.0);
        assert_eq!(w, vec![1.0, 1.0, 1.0]);
        assert!(normalcy_weights(&[], 2.0).is_empty());
    }

    #[test]
    fn multi_task_loss_combines_both_terms() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        let out = net.forward_sample(&tape, &params, &graph, &clean_sample(1));
        let only_val = MultiTaskLoss {
            alpha: 1.0,
            beta: 0.0,
        }
        .batch_loss(&tape, std::slice::from_ref(&out), &[1.0])
        .value()
        .get(0, 0);
        let only_rep = MultiTaskLoss {
            alpha: 0.0,
            beta: 1.0,
        }
        .batch_loss(&tape, std::slice::from_ref(&out), &[1.0])
        .value()
        .get(0, 0);
        let both = MultiTaskLoss {
            alpha: 1.0,
            beta: 1.0,
        }
        .batch_loss(&tape, std::slice::from_ref(&out), &[1.0])
        .value()
        .get(0, 0);
        assert!((both - (only_val + only_rep)).abs() < 1e-5);
    }

    #[test]
    fn armed_session_scores_identically_and_detects_corruption() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let fitted = net.params().checksum();
        let rows: Vec<Vec<f32>> = (0..8).map(clean_sample).collect();

        // A healthy armed session returns exactly what an unarmed one does.
        let unarmed = net.inference_session();
        let clean = net.score_matrix(&unarmed, &rows);
        let armed = net.inference_session();
        armed.arm_self_check(fitted, 4);
        assert!(armed.self_check_armed());
        let checked = net.score_matrix(&armed, &rows);
        assert_eq!(checked.instance_errors(), clean.instance_errors());
        assert_eq!(armed.health_violation(), None);

        // A single flipped weight bit fails the checksum re-verification; the
        // poisoned session returns empty scores instead of wrong ones.
        let mut flipped = net.clone();
        let (_, m) = flipped.params_mut().iter_mut().next().unwrap();
        let bits = m.get(0, 0).to_bits() ^ (1 << 30);
        m.set(0, 0, f32::from_bits(bits));
        let session = flipped.inference_session();
        session.arm_self_check(fitted, 4);
        let scores = flipped.score_matrix(&session, &rows);
        assert!(scores.is_empty());
        assert!(matches!(
            session.health_violation(),
            Some(HealthError::ChecksumMismatch { expected, .. }) if expected == fitted
        ));
        // Further scoring through the poisoned session stays empty.
        assert!(flipped.score_matrix(&session, &rows).is_empty());
        assert!(session.take_health_violation().is_some());
        assert_eq!(session.health_violation(), None);
    }

    #[test]
    fn armed_session_surfaces_nan_weights_via_kernel_guard() {
        // Poison a *decoder* weight with NaN and arm against the poisoned
        // store's own checksum, so the checksum check passes and detection
        // must come from the finite guards instead.
        let mut net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let (_, m) = net.params_mut().iter_mut().last().unwrap();
        m.set(0, 0, f32::NAN);
        let poisoned_checksum = net.params().checksum();
        let rows: Vec<Vec<f32>> = (0..4).map(clean_sample).collect();
        let session = net.inference_session();
        session.arm_self_check(poisoned_checksum, 4);
        let scores = net.score_matrix(&session, &rows);
        assert!(scores.is_empty());
        assert!(matches!(
            session.health_violation(),
            Some(HealthError::NonFiniteKernel { .. } | HealthError::NonFiniteScores { .. })
        ));
    }

    #[test]
    fn activation_fault_hook_is_caught_by_output_scan() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let fitted = net.params().checksum();
        let rows: Vec<Vec<f32>> = (0..4).map(clean_sample).collect();
        let session = net.inference_session();
        session.arm_self_check(fitted, 4);
        session.set_activation_fault(Some(crate::health::ActivationFault::new(|m| {
            m.set(0, 0, f32::NAN)
        })));
        let scores = net.score_matrix(&session, &rows);
        assert!(scores.is_empty());
        assert!(matches!(
            session.health_violation(),
            Some(HealthError::NonFiniteScores { .. })
        ));

        // Without arming, the hook corrupts scores but nothing is recorded —
        // the knob that separates injection from detection.
        let blind = net.inference_session();
        blind.set_activation_fault(Some(crate::health::ActivationFault::new(|m| {
            m.set(0, 0, f32::NAN)
        })));
        let scores = net.score_matrix(&blind, &rows);
        assert!(!scores.is_empty());
        assert_eq!(blind.health_violation(), None);
    }

    #[test]
    fn inference_helpers_are_deterministic() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let sample = clean_sample(4);
        assert_eq!(
            net.reconstruction_errors(&sample),
            net.reconstruction_errors(&sample)
        );
        assert_eq!(net.repair_values(&sample), net.repair_values(&sample));
    }
}
