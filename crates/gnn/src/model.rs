//! The complete DQuaG network: shared GNN encoder + dual decoders, plus the
//! multi-task loss that ties them together.
//!
//! The training *procedure* (epoch loop, threshold calibration, phase-2
//! validation logic) lives in `dquag-core`; this module owns the
//! differentiable part: forward passes and loss construction.

use crate::context::{BoundGraph, GraphContext};
use crate::decoder::DualDecoder;
use crate::encoder::{Encoder, EncoderKind};
use crate::params::{BoundParams, ParamStore};
use dquag_graph::FeatureGraph;
use dquag_tensor::init::InitRng;
use dquag_tensor::optim::Adam;
use dquag_tensor::{Matrix, Tape, Var};

/// Hyper-parameters of the network. Defaults reproduce the paper's §4.4
/// setting: four layers, hidden dimension 64, GAT+GIN interleaving,
/// α = β = 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Hidden embedding width `h`.
    pub hidden_dim: usize,
    /// Number of encoder layers.
    pub n_layers: usize,
    /// Encoder architecture.
    pub encoder: EncoderKind,
    /// Weight of the validation (weighted reconstruction) loss.
    pub alpha: f32,
    /// Weight of the repair loss.
    pub beta: f32,
    /// Sharpness of the normalcy weighting in the validation loss; 0 degrades
    /// to a plain (unweighted) reconstruction loss, which is the
    /// `ablation_weighted_loss` setting.
    pub weight_sharpness: f32,
    /// Seed for parameter initialisation.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 64,
            n_layers: 4,
            encoder: EncoderKind::GatGin,
            alpha: 1.0,
            beta: 1.0,
            weight_sharpness: 2.0,
            seed: 42,
        }
    }
}

impl ModelConfig {
    /// A reduced configuration for unit tests and quick experiments: smaller
    /// hidden dimension, same architecture.
    pub fn small() -> Self {
        Self {
            hidden_dim: 16,
            ..Self::default()
        }
    }
}

/// Output of a single-sample forward pass.
#[derive(Debug, Clone)]
pub struct SampleOutput {
    /// The input node features (`n × 1`), kept for loss construction.
    pub input: Var,
    /// Validation-decoder reconstruction (`n × 1`).
    pub reconstruction: Var,
    /// Repair-decoder output (`n × 1`).
    pub repair: Var,
}

impl SampleOutput {
    /// Squared reconstruction error per feature (the per-feature error list
    /// `e_i = [e_i1 … e_in]` of §3.2.1).
    pub fn per_feature_errors(&self) -> Vec<f32> {
        let x = self.input.value();
        let r = self.reconstruction.value();
        (0..x.rows())
            .map(|i| {
                let d = x.get(i, 0) - r.get(i, 0);
                d * d
            })
            .collect()
    }

    /// Mean squared reconstruction error of the sample (the instance-level
    /// reconstruction error `e_i`).
    pub fn total_error(&self) -> f32 {
        let errors = self.per_feature_errors();
        if errors.is_empty() {
            0.0
        } else {
            errors.iter().sum::<f32>() / errors.len() as f32
        }
    }

    /// The repair decoder's proposed feature values.
    pub fn repair_values(&self) -> Vec<f32> {
        let r = self.repair.value();
        (0..r.rows()).map(|i| r.get(i, 0)).collect()
    }
}

/// The multi-task objective `L_total = α·L_validation + β·L_repair`.
#[derive(Debug, Clone, Copy)]
pub struct MultiTaskLoss {
    /// Weight of the validation loss.
    pub alpha: f32,
    /// Weight of the repair loss.
    pub beta: f32,
}

impl MultiTaskLoss {
    /// Build the loss for a batch of forward outputs.
    ///
    /// `weights[i]` is the normalcy weight `w_i` of sample `i` in the
    /// validation term; the repair term is always unweighted (the paper trains
    /// it directly towards the clean values).
    pub fn batch_loss(&self, tape: &Tape, outputs: &[SampleOutput], weights: &[f32]) -> Var {
        assert_eq!(
            outputs.len(),
            weights.len(),
            "one weight per sample is required"
        );
        assert!(!outputs.is_empty(), "batch loss needs at least one sample");
        let n = outputs.len() as f32;
        let mut total: Option<Var> = None;
        for (out, &w) in outputs.iter().zip(weights.iter()) {
            let diff_val = out.reconstruction.sub(&out.input).square().mean();
            let diff_rep = out.repair.sub(&out.input).square().mean();
            let sample_loss = diff_val
                .scale(self.alpha * w / n)
                .add(&diff_rep.scale(self.beta / n));
            total = Some(match total {
                Some(t) => t.add(&sample_loss),
                None => sample_loss,
            });
        }
        let _ = tape; // the loss already lives on the callers' tape via the outputs
        total.expect("non-empty batch")
    }
}

/// Normalcy weights from per-sample reconstruction errors: samples whose error
/// is below the batch mean get weights above 1, clearly abnormal samples get
/// weights pushed towards 0 (§3.1.2, validation-decoder loss).
pub fn normalcy_weights(errors: &[f32], sharpness: f32) -> Vec<f32> {
    if errors.is_empty() {
        return Vec::new();
    }
    if sharpness <= 0.0 {
        return vec![1.0; errors.len()];
    }
    let mean = errors.iter().sum::<f32>() / errors.len() as f32;
    let scale = mean.max(1e-8);
    let raw: Vec<f32> = errors
        .iter()
        .map(|&e| (-sharpness * (e / scale - 1.0)).exp().clamp(0.05, 20.0))
        .collect();
    // Renormalise to mean 1 so the loss magnitude stays comparable across
    // batches regardless of the weight distribution.
    let raw_mean = raw.iter().sum::<f32>() / raw.len() as f32;
    raw.iter().map(|w| w / raw_mean).collect()
}

/// The full DQuaG network over a fixed feature graph.
#[derive(Debug, Clone)]
pub struct DquagNetwork {
    config: ModelConfig,
    params: ParamStore,
    encoder: Encoder,
    decoder: DualDecoder,
    context: GraphContext,
    n_features: usize,
}

impl DquagNetwork {
    /// Build a network for the given feature graph.
    pub fn new(graph: &FeatureGraph, config: ModelConfig) -> Self {
        let mut params = ParamStore::new();
        let mut rng = InitRng::seeded(config.seed);
        let encoder = Encoder::new(
            config.encoder,
            graph,
            config.hidden_dim,
            config.n_layers,
            &mut params,
            &mut rng,
        );
        let decoder = DualDecoder::new(config.hidden_dim, &mut params, &mut rng);
        Self {
            config,
            params,
            encoder,
            decoder,
            context: GraphContext::new(graph),
            n_features: graph.n_nodes(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of input features (graph nodes).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of scalar weights in the model.
    pub fn n_weights(&self) -> usize {
        self.params.n_weights()
    }

    /// The parameter store (read access, e.g. for checkpoint-style tests).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Bind parameters and graph constants to a fresh forward tape.
    pub fn bind(&self, tape: &Tape) -> (BoundParams, BoundGraph) {
        (self.params.bind(tape), self.context.bind(tape))
    }

    /// Forward pass for one sample (encoded feature vector of length
    /// `n_features`).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != n_features` — callers always derive the
    /// vector from the same schema the graph was built on.
    pub fn forward_sample(
        &self,
        tape: &Tape,
        params: &BoundParams,
        graph: &BoundGraph,
        features: &[f32],
    ) -> SampleOutput {
        assert_eq!(
            features.len(),
            self.n_features,
            "expected {} features, got {}",
            self.n_features,
            features.len()
        );
        let input = tape.constant(Matrix::col_vector(features));
        let z = self.encoder.forward(params, graph, &input);
        let reconstruction = self.decoder.reconstruct(params, &z);
        let repair = self.decoder.repair(params, &z);
        SampleOutput {
            input,
            reconstruction,
            repair,
        }
    }

    /// Inference-only helper: per-feature squared reconstruction errors for a
    /// sample. Creates a private tape, so it can be called from parallel
    /// validation workers.
    pub fn reconstruction_errors(&self, features: &[f32]) -> Vec<f32> {
        let tape = Tape::new();
        let (params, graph) = self.bind(&tape);
        self.forward_sample(&tape, &params, &graph, features)
            .per_feature_errors()
    }

    /// Inference-only helper: the repair decoder's proposed values for a
    /// sample.
    pub fn repair_values(&self, features: &[f32]) -> Vec<f32> {
        let tape = Tape::new();
        let (params, graph) = self.bind(&tape);
        self.forward_sample(&tape, &params, &graph, features)
            .repair_values()
    }

    /// One optimisation step on a mini-batch of encoded samples.
    ///
    /// Returns `(total_loss, per_sample_errors)` where the errors are the
    /// *pre-update* instance reconstruction errors (used by the trainer to
    /// collect the error statistics of §3.1.4).
    pub fn train_batch(&mut self, batch: &[Vec<f32>], optimizer: &mut Adam) -> (f32, Vec<f32>) {
        assert!(!batch.is_empty(), "train_batch needs at least one sample");
        let tape = Tape::new();
        let (params, graph) = self.bind(&tape);
        let outputs: Vec<SampleOutput> = batch
            .iter()
            .map(|row| self.forward_sample(&tape, &params, &graph, row))
            .collect();
        let errors: Vec<f32> = outputs.iter().map(SampleOutput::total_error).collect();
        let weights = normalcy_weights(&errors, self.config.weight_sharpness);
        let loss = MultiTaskLoss {
            alpha: self.config.alpha,
            beta: self.config.beta,
        }
        .batch_loss(&tape, &outputs, &weights);
        let loss_value = loss.value().get(0, 0);
        tape.backward(&loss);
        self.params.apply_gradients(&params, optimizer);
        (loss_value, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> FeatureGraph {
        let mut g = FeatureGraph::new(vec!["a", "b", "c", "d"]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(0, 3).unwrap();
        g
    }

    /// Clean samples follow the pattern b = 1 - a, c = a, d = 0.5.
    fn clean_sample(i: usize) -> Vec<f32> {
        let a = (i % 10) as f32 / 10.0;
        vec![a, 1.0 - a, a, 0.5]
    }

    #[test]
    fn network_construction_and_shapes() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        assert_eq!(net.n_features(), 4);
        assert!(net.n_weights() > 0);
        assert_eq!(net.config().hidden_dim, 16);

        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        let out = net.forward_sample(&tape, &params, &graph, &clean_sample(3));
        assert_eq!(out.reconstruction.shape(), (4, 1));
        assert_eq!(out.repair.shape(), (4, 1));
        assert_eq!(out.per_feature_errors().len(), 4);
        assert!(out.total_error().is_finite());
        assert_eq!(out.repair_values().len(), 4);
    }

    #[test]
    #[should_panic(expected = "expected 4 features")]
    fn wrong_feature_count_panics() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        net.forward_sample(&tape, &params, &graph, &[0.1, 0.2]);
    }

    #[test]
    fn training_reduces_reconstruction_error_on_clean_data() {
        let mut config = ModelConfig::small();
        config.n_layers = 2;
        config.hidden_dim = 12;
        let mut net = DquagNetwork::new(&small_graph(), config);
        let mut adam = Adam::with_learning_rate(0.01);
        let batch: Vec<Vec<f32>> = (0..32).map(clean_sample).collect();

        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let (loss, _) = net.train_batch(&batch, &mut adam);
            first.get_or_insert(loss);
            last = loss;
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.5,
            "training should halve the loss: first {first}, last {last}"
        );
    }

    #[test]
    fn anomalous_sample_has_higher_error_after_training() {
        let mut config = ModelConfig::small();
        config.n_layers = 2;
        config.hidden_dim = 12;
        let mut net = DquagNetwork::new(&small_graph(), config);
        let mut adam = Adam::with_learning_rate(0.01);
        let batch: Vec<Vec<f32>> = (0..40).map(clean_sample).collect();
        for _ in 0..120 {
            net.train_batch(&batch, &mut adam);
        }
        let clean_err: f32 = (0..10)
            .map(|i| {
                net.reconstruction_errors(&clean_sample(i))
                    .iter()
                    .sum::<f32>()
            })
            .sum::<f32>()
            / 10.0;
        // violate the a/b dependency and push a value far out of range
        let dirty_err: f32 = net
            .reconstruction_errors(&[0.9, 0.9, 0.1, 3.0])
            .iter()
            .sum();
        assert!(
            dirty_err > clean_err * 2.0,
            "dirty error {dirty_err} should clearly exceed clean error {clean_err}"
        );
    }

    #[test]
    fn normalcy_weights_favour_low_error_samples() {
        let errors = vec![0.01, 0.02, 0.015, 0.5];
        let w = normalcy_weights(&errors, 2.0);
        assert_eq!(w.len(), 4);
        let mean: f32 = w.iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-4, "weights renormalised to mean 1");
        assert!(w[3] < w[0], "the abnormal sample gets the smallest weight");
        assert!(w[3] < 0.5);
    }

    #[test]
    fn zero_sharpness_disables_weighting() {
        let w = normalcy_weights(&[0.1, 5.0, 0.2], 0.0);
        assert_eq!(w, vec![1.0, 1.0, 1.0]);
        assert!(normalcy_weights(&[], 2.0).is_empty());
    }

    #[test]
    fn multi_task_loss_combines_both_terms() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        let out = net.forward_sample(&tape, &params, &graph, &clean_sample(1));
        let only_val = MultiTaskLoss {
            alpha: 1.0,
            beta: 0.0,
        }
        .batch_loss(&tape, std::slice::from_ref(&out), &[1.0])
        .value()
        .get(0, 0);
        let only_rep = MultiTaskLoss {
            alpha: 0.0,
            beta: 1.0,
        }
        .batch_loss(&tape, std::slice::from_ref(&out), &[1.0])
        .value()
        .get(0, 0);
        let both = MultiTaskLoss {
            alpha: 1.0,
            beta: 1.0,
        }
        .batch_loss(&tape, std::slice::from_ref(&out), &[1.0])
        .value()
        .get(0, 0);
        assert!((both - (only_val + only_rep)).abs() < 1e-5);
    }

    #[test]
    fn inference_helpers_are_deterministic() {
        let net = DquagNetwork::new(&small_graph(), ModelConfig::small());
        let sample = clean_sample(4);
        assert_eq!(
            net.reconstruction_errors(&sample),
            net.reconstruction_errors(&sample)
        );
        assert_eq!(net.repair_values(&sample), net.repair_values(&sample));
    }
}
