//! Neural layers: dense, MLP, GAT, GIN and GCN.
//!
//! Every layer registers its weights in a shared [`ParamStore`] at
//! construction time and performs its forward pass against the
//! [`BoundParams`]/[`BoundGraph`] views created for the current tape. Layers
//! operate on node-feature matrices of shape `n_features × channels`, or —
//! through each message-passing layer's `forward_batch` — on `B` samples
//! stacked vertically into a `(B·n_features) × channels` matrix. The
//! per-sample `forward` is the `batch = 1` case of the batched path, so the
//! two can never drift apart.

use crate::context::BoundGraph;
use crate::params::{BoundParams, ParamId, ParamStore};
use dquag_tensor::init::{he_normal, uniform_symmetric, xavier_uniform, InitRng};
use dquag_tensor::{Matrix, Var};

/// Negative slope of the LeakyReLU used inside GAT attention (PyG default).
pub const GAT_LEAKY_SLOPE: f32 = 0.2;

/// A dense (fully connected) layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a new dense layer with Xavier-initialised weights.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        let weight = store.add(
            format!("{name}.weight"),
            xavier_uniform(in_dim, out_dim, rng),
        );
        let bias = store.add(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Create a dense layer with He-initialised weights (for ReLU MLPs).
    pub fn new_he(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        let weight = store.add(format!("{name}.weight"), he_normal(in_dim, out_dim, rng));
        let bias = store.add(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass: `x (r × in) → r × out`, as one fused
    /// matmul-plus-bias kernel pass.
    pub fn forward(&self, params: &BoundParams, x: &Var) -> Var {
        x.matmul_bias(params.var(self.weight), params.var(self.bias))
    }

    /// Forward pass with a fused ReLU epilogue: `relu(x · W + b)` in one
    /// kernel pass.
    pub fn forward_relu(&self, params: &BoundParams, x: &Var) -> Var {
        x.matmul_bias_relu(params.var(self.weight), params.var(self.bias))
    }
}

/// A two-layer perceptron with ReLU in between, used inside GIN layers and as
/// the decoder trunk.
#[derive(Debug, Clone)]
pub struct Mlp {
    first: Linear,
    second: Linear,
}

impl Mlp {
    /// Create an MLP `in_dim → hidden_dim → out_dim`.
    pub fn new(
        name: &str,
        in_dim: usize,
        hidden_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        Self {
            first: Linear::new_he(&format!("{name}.0"), in_dim, hidden_dim, store, rng),
            second: Linear::new(&format!("{name}.1"), hidden_dim, out_dim, store, rng),
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.second.out_dim()
    }

    /// Forward pass with a ReLU after the first layer (fused into the first
    /// layer's kernel pass).
    pub fn forward(&self, params: &BoundParams, x: &Var) -> Var {
        self.second
            .forward(params, &self.first.forward_relu(params, x))
    }

    /// Forward pass with ReLUs after both layers, each fused into its
    /// layer's kernel pass.
    pub fn forward_relu(&self, params: &BoundParams, x: &Var) -> Var {
        self.second
            .forward_relu(params, &self.first.forward_relu(params, x))
    }
}

/// Graph Attention Network layer (Veličković et al., 2018), single head.
///
/// Attention logits use the additive formulation
/// `e_ij = LeakyReLU(a_src·(W h_i) + a_dst·(W h_j))`, masked to the graph's
/// edges (plus self-loops) and normalised row-wise with a softmax. The paper
/// highlights that attention makes manual edge-weight assignment unnecessary.
#[derive(Debug, Clone)]
pub struct GatLayer {
    weight: ParamId,
    attn_src: ParamId,
    attn_dst: ParamId,
    out_dim: usize,
}

impl GatLayer {
    /// Create a GAT layer.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        let limit = (6.0 / (out_dim + 1) as f32).sqrt();
        Self {
            weight: store.add(
                format!("{name}.weight"),
                xavier_uniform(in_dim, out_dim, rng),
            ),
            attn_src: store.add(
                format!("{name}.attn_src"),
                uniform_symmetric(out_dim, 1, limit, rng),
            ),
            attn_dst: store.add(
                format!("{name}.attn_dst"),
                uniform_symmetric(out_dim, 1, limit, rng),
            ),
            out_dim,
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass: `h (n × in) → n × out`.
    pub fn forward(&self, params: &BoundParams, graph: &BoundGraph, h: &Var) -> Var {
        self.forward_batch(params, graph, h, 1)
    }

    /// Batched forward pass over `batch` vertically stacked samples:
    /// `h (B·n × in) → B·n × out`. Attention is computed per block — sample
    /// `b`'s nodes only attend within their own `n × n` grid — so the result
    /// is bit-identical to `batch` independent [`GatLayer::forward`] calls.
    pub fn forward_batch(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        batch: usize,
    ) -> Var {
        let hw = h.matmul(params.var(self.weight)); // B·n × out
        let src = hw.matmul(params.var(self.attn_src)); // B·n × 1
        let dst = hw.matmul(params.var(self.attn_dst)); // B·n × 1

        // One fused pass builds the per-block n × n logit grids:
        // logits[b·n + i][j] = leaky(src[b·n + i] + dst[b·n + j]) + mask[i][j]
        let logits = src.attention_logits(&dst, &graph.attention_mask, GAT_LEAKY_SLOPE);
        let attention = logits.softmax_rows(); // rows sum to 1 over N(i) ∪ {i}
        attention.block_matmul(&hw, batch)
    }

    /// [`GatLayer::forward_batch`] with a fused trailing ReLU — the
    /// inter-layer activation rides the attention-mixing kernel's store
    /// epilogue instead of a separate pass.
    pub fn forward_batch_relu(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        batch: usize,
    ) -> Var {
        let hw = h.matmul(params.var(self.weight));
        let src = hw.matmul(params.var(self.attn_src));
        let dst = hw.matmul(params.var(self.attn_dst));
        let logits = src.attention_logits(&dst, &graph.attention_mask, GAT_LEAKY_SLOPE);
        logits.softmax_rows().block_matmul_relu(&hw, batch)
    }

    /// The attention matrix itself (useful for interpretability tests).
    pub fn attention(&self, params: &BoundParams, graph: &BoundGraph, h: &Var) -> Var {
        let hw = h.matmul(params.var(self.weight));
        let src = hw.matmul(params.var(self.attn_src));
        let dst = hw.matmul(params.var(self.attn_dst));
        src.attention_logits(&dst, &graph.attention_mask, GAT_LEAKY_SLOPE)
            .softmax_rows()
    }
}

/// Graph Isomorphism Network layer (Xu et al., 2019).
///
/// `h_i' = MLP((1 + ε)·h_i + Σ_{j ∈ N(i)} h_j)` with a learnable ε.
#[derive(Debug, Clone)]
pub struct GinLayer {
    mlp: Mlp,
    epsilon: ParamId,
    out_dim: usize,
}

impl GinLayer {
    /// Create a GIN layer whose MLP maps `in_dim → out_dim → out_dim`.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        Self {
            mlp: Mlp::new(&format!("{name}.mlp"), in_dim, out_dim, out_dim, store, rng),
            epsilon: store.add(format!("{name}.eps"), Matrix::zeros(1, 1)),
            out_dim,
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass: `h (n × in) → n × out`.
    pub fn forward(&self, params: &BoundParams, graph: &BoundGraph, h: &Var) -> Var {
        self.forward_batch(params, graph, h, 1)
    }

    /// Batched forward pass over vertically stacked samples: the shared
    /// adjacency aggregates neighbours within each `n`-row block, the
    /// `(1 + ε)` self-term and the MLP are row-wise and batch transparently.
    pub fn forward_batch(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        _batch: usize,
    ) -> Var {
        let neighbour_sum = graph.adjacency.repeat_matmul(h); // B·n × in
                                                              // (1 + ε)·h — ε is a learnable scalar initialised to zero,
                                                              // folded into the aggregation as one fused pass.
        let one = h.tape().constant(Matrix::ones(1, 1));
        let scale = params.var(self.epsilon).add(&one);
        self.mlp
            .forward(params, &neighbour_sum.scaled_add(h, &scale))
    }

    /// [`GinLayer::forward_batch`] with a fused trailing ReLU on the MLP's
    /// output layer.
    pub fn forward_batch_relu(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        _batch: usize,
    ) -> Var {
        let neighbour_sum = graph.adjacency.repeat_matmul(h);
        let one = h.tape().constant(Matrix::ones(1, 1));
        let scale = params.var(self.epsilon).add(&one);
        self.mlp
            .forward_relu(params, &neighbour_sum.scaled_add(h, &scale))
    }
}

/// Graph Convolutional Network layer (Kipf & Welling, 2017):
/// `h' = Â · h · W + b` with the symmetric-normalised adjacency `Â`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    linear: Linear,
}

impl GcnLayer {
    /// Create a GCN layer.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        store: &mut ParamStore,
        rng: &mut InitRng,
    ) -> Self {
        Self {
            linear: Linear::new(name, in_dim, out_dim, store, rng),
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.linear.out_dim()
    }

    /// Forward pass: `h (n × in) → n × out`.
    pub fn forward(&self, params: &BoundParams, graph: &BoundGraph, h: &Var) -> Var {
        self.forward_batch(params, graph, h, 1)
    }

    /// Batched forward pass: the normalised adjacency propagates within each
    /// `n`-row block, the dense layer is row-wise.
    pub fn forward_batch(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        _batch: usize,
    ) -> Var {
        self.linear
            .forward(params, &graph.gcn_adjacency.repeat_matmul(h))
    }

    /// [`GcnLayer::forward_batch`] with a fused trailing ReLU.
    pub fn forward_batch_relu(
        &self,
        params: &BoundParams,
        graph: &BoundGraph,
        h: &Var,
        _batch: usize,
    ) -> Var {
        self.linear
            .forward_relu(params, &graph.gcn_adjacency.repeat_matmul(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::GraphContext;
    use dquag_graph::FeatureGraph;
    use dquag_tensor::optim::Adam;
    use dquag_tensor::Tape;

    fn triangle_plus_leaf() -> FeatureGraph {
        // 0-1, 1-2, 0-2 triangle, 3 attached to 0
        let mut g = FeatureGraph::new(vec!["a", "b", "c", "d"]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(0, 3).unwrap();
        g
    }

    fn setup() -> (ParamStore, InitRng, GraphContext) {
        (
            ParamStore::new(),
            InitRng::seeded(13),
            GraphContext::new(&triangle_plus_leaf()),
        )
    }

    fn node_features(tape: &Tape, values: &[f32]) -> Var {
        tape.leaf(Matrix::col_vector(values), false)
    }

    #[test]
    fn linear_and_mlp_shapes() {
        let (mut store, mut rng, _) = setup();
        let linear = Linear::new("lin", 3, 5, &mut store, &mut rng);
        let mlp = Mlp::new("mlp", 5, 8, 2, &mut store, &mut rng);
        assert_eq!(linear.in_dim(), 3);
        assert_eq!(linear.out_dim(), 5);
        assert_eq!(mlp.out_dim(), 2);

        let tape = Tape::new();
        let bound = store.bind(&tape);
        let x = tape.leaf(Matrix::ones(4, 3), false);
        let y = linear.forward(&bound, &x);
        assert_eq!(y.shape(), (4, 5));
        let z = mlp.forward(&bound, &y);
        assert_eq!(z.shape(), (4, 2));
        assert!(z.value().is_finite());
    }

    #[test]
    fn gat_layer_shapes_and_attention_properties() {
        let (mut store, mut rng, ctx) = setup();
        let gat = GatLayer::new("gat", 1, 6, &mut store, &mut rng);
        assert_eq!(gat.out_dim(), 6);

        let tape = Tape::new();
        let bound = store.bind(&tape);
        let graph = ctx.bind(&tape);
        let x = node_features(&tape, &[0.1, 0.5, 0.9, 0.3]);
        let out = gat.forward(&bound, &graph, &x);
        assert_eq!(out.shape(), (4, 6));
        assert!(out.value().is_finite());

        let attention = gat.attention(&bound, &graph, &x).value();
        // each row sums to one
        for r in 0..4 {
            let total: f32 = attention.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-4);
        }
        // attention respects the mask: node 3 only sees node 0 and itself
        assert_eq!(attention.get(3, 1), 0.0);
        assert_eq!(attention.get(3, 2), 0.0);
        assert!(attention.get(3, 0) > 0.0);
        assert!(attention.get(3, 3) > 0.0);
    }

    #[test]
    fn gin_layer_aggregates_neighbours() {
        let (mut store, mut rng, ctx) = setup();
        let gin = GinLayer::new("gin", 1, 4, &mut store, &mut rng);
        assert_eq!(gin.out_dim(), 4);
        let tape = Tape::new();
        let bound = store.bind(&tape);
        let graph = ctx.bind(&tape);
        let x = node_features(&tape, &[1.0, 2.0, 3.0, 4.0]);
        let out = gin.forward(&bound, &graph, &x);
        assert_eq!(out.shape(), (4, 4));
        assert!(out.value().is_finite());
    }

    #[test]
    fn gcn_layer_propagates_and_keeps_shape() {
        let (mut store, mut rng, ctx) = setup();
        let gcn = GcnLayer::new("gcn", 1, 3, &mut store, &mut rng);
        let tape = Tape::new();
        let bound = store.bind(&tape);
        let graph = ctx.bind(&tape);
        let x = node_features(&tape, &[1.0, 0.0, 0.0, 0.0]);
        let out = gcn.forward(&bound, &graph, &x);
        assert_eq!(out.shape(), (4, 3));
        assert_eq!(gcn.out_dim(), 3);
    }

    #[test]
    fn isolated_information_does_not_leak_through_gcn() {
        // In a graph with two disconnected pairs, perturbing a node in one
        // component must not change the GCN output of the other component.
        let mut g = FeatureGraph::new(vec!["a", "b", "c", "d"]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        let ctx = GraphContext::new(&g);
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(3);
        let gcn = GcnLayer::new("gcn", 1, 2, &mut store, &mut rng);

        let run = |values: &[f32]| {
            let tape = Tape::new();
            let bound = store.bind(&tape);
            let graph = ctx.bind(&tape);
            let x = node_features(&tape, values);
            gcn.forward(&bound, &graph, &x).value()
        };
        let base = run(&[0.2, 0.4, 0.6, 0.8]);
        let perturbed = run(&[5.0, 0.4, 0.6, 0.8]);
        // rows 2 and 3 (the other component) are unchanged
        for r in 2..4 {
            for c in 0..2 {
                assert!((base.get(r, c) - perturbed.get(r, c)).abs() < 1e-6);
            }
        }
        // row 0 is definitely changed
        assert!((base.get(0, 0) - perturbed.get(0, 0)).abs() > 1e-4);
    }

    #[test]
    fn gat_layer_is_trainable_end_to_end() {
        // A one-layer GAT + linear head must be able to fit a trivial target.
        let (mut store, mut rng, ctx) = setup();
        let gat = GatLayer::new("gat", 1, 4, &mut store, &mut rng);
        let head = Linear::new("head", 4, 1, &mut store, &mut rng);
        let mut adam = Adam::with_learning_rate(0.05);

        let target = Matrix::col_vector(&[0.9, 0.1, 0.5, 0.7]);
        let input = [0.2f32, 0.8, 0.4, 0.6];
        let mut last_loss = f32::INFINITY;
        let mut first_loss = None;
        for _ in 0..120 {
            let tape = Tape::new();
            let bound = store.bind(&tape);
            let graph = ctx.bind(&tape);
            let x = node_features(&tape, &input);
            let z = gat.forward(&bound, &graph, &x);
            let pred = head.forward(&bound, &z);
            let loss = pred.mse(&tape.constant(target.clone()));
            last_loss = loss.value().get(0, 0);
            first_loss.get_or_insert(last_loss);
            tape.backward(&loss);
            store.apply_gradients(&bound, &mut adam);
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.2,
            "training should cut the loss: first {first_loss:?}, last {last_loss}"
        );
    }
}
