//! Per-tape constants derived from the feature graph.
//!
//! Every forward pass needs the same graph-derived matrices — the GIN
//! aggregation adjacency, the GCN-normalised adjacency and the GAT
//! attention mask. They are constants (no gradient), but they must live on
//! the *current* tape, so [`GraphContext::bind`] materialises them per tape
//! from a reusable [`GraphContext`].

use dquag_graph::FeatureGraph;
use dquag_tensor::{Matrix, Tape, Var};

/// Value used to mask out non-edges in attention logits before the softmax.
pub const ATTENTION_MASK_VALUE: f32 = -1.0e9;

/// Precomputed dense graph operators for a fixed [`FeatureGraph`].
#[derive(Debug, Clone)]
pub struct GraphContext {
    n_nodes: usize,
    adjacency: Matrix,
    gcn_adjacency: Matrix,
    attention_mask: Matrix,
}

impl GraphContext {
    /// Precompute the operators for a feature graph.
    pub fn new(graph: &FeatureGraph) -> Self {
        let n = graph.n_nodes();
        let adjacency = Matrix::from_vec(n, n, graph.adjacency_matrix(false))
            .expect("adjacency has n*n entries");
        let gcn_adjacency = Matrix::from_vec(n, n, graph.gcn_normalized_adjacency())
            .expect("normalised adjacency has n*n entries");
        let attention_mask = Matrix::from_vec(n, n, graph.attention_mask(ATTENTION_MASK_VALUE))
            .expect("attention mask has n*n entries");
        Self {
            n_nodes: n,
            adjacency,
            gcn_adjacency,
            attention_mask,
        }
    }

    /// Number of graph nodes (= dataset features).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Materialise the operators as constants on the given tape.
    pub fn bind(&self, tape: &Tape) -> BoundGraph {
        BoundGraph {
            n_nodes: self.n_nodes,
            adjacency: tape.constant(self.adjacency.clone()),
            gcn_adjacency: tape.constant(self.gcn_adjacency.clone()),
            attention_mask: tape.constant(self.attention_mask.clone()),
        }
    }
}

/// Tape-bound graph operators used by the layers during one forward pass.
#[derive(Debug, Clone)]
pub struct BoundGraph {
    n_nodes: usize,
    /// Binary adjacency without self-loops (GIN neighbour aggregation).
    pub adjacency: Var,
    /// Symmetric-normalised adjacency with self-loops (GCN propagation).
    pub gcn_adjacency: Var,
    /// Additive attention mask: 0 on edges/self-loops, −1e9 elsewhere (GAT).
    pub attention_mask: Var,
}

impl BoundGraph {
    /// Number of graph nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> FeatureGraph {
        let mut g = FeatureGraph::new(vec!["a", "b", "c"]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g
    }

    #[test]
    fn context_shapes_match_graph() {
        let ctx = GraphContext::new(&chain_graph());
        assert_eq!(ctx.n_nodes(), 3);
        assert_eq!(ctx.adjacency.shape(), (3, 3));
        assert_eq!(ctx.gcn_adjacency.shape(), (3, 3));
        assert_eq!(ctx.attention_mask.shape(), (3, 3));
    }

    #[test]
    fn adjacency_has_no_self_loops_but_mask_allows_them() {
        let ctx = GraphContext::new(&chain_graph());
        assert_eq!(ctx.adjacency.get(0, 0), 0.0);
        assert_eq!(ctx.adjacency.get(0, 1), 1.0);
        assert_eq!(ctx.attention_mask.get(0, 0), 0.0);
        assert_eq!(ctx.attention_mask.get(0, 2), ATTENTION_MASK_VALUE);
    }

    #[test]
    fn gcn_adjacency_rows_are_normalised() {
        let ctx = GraphContext::new(&chain_graph());
        // middle node has degree 3 with self-loop; entries are 1/sqrt(d_i d_j)
        let expected = 1.0 / (3.0f32.sqrt() * 2.0f32.sqrt());
        assert!((ctx.gcn_adjacency.get(0, 1) - expected).abs() < 1e-6);
        assert_eq!(ctx.gcn_adjacency.get(0, 2), 0.0);
    }

    #[test]
    fn binding_creates_tape_constants() {
        let ctx = GraphContext::new(&chain_graph());
        let tape = Tape::new();
        let bound = ctx.bind(&tape);
        assert_eq!(bound.n_nodes(), 3);
        assert_eq!(tape.len(), 3, "three constants per binding");
        // constants never expose gradients
        let x = tape.leaf(Matrix::ones(3, 1), true);
        let loss = bound.gcn_adjacency.matmul(&x).square().mean();
        tape.backward(&loss);
        assert!(bound.gcn_adjacency.grad().is_none());
        assert!(x.grad().is_some());
    }
}
