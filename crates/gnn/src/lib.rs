//! # dquag-gnn
//!
//! Graph-neural-network building blocks for the DQuaG reproduction
//! (EDBT 2025, "Automated Data Quality Validation in an End-to-End GNN
//! Framework").
//!
//! The paper's model is:
//!
//! * an **encoder** of four alternating layers — GAT, GIN, GAT, GIN — over the
//!   feature graph, hidden dimension 64 ([`encoder::Encoder`],
//!   [`encoder::EncoderKind::GatGin`]);
//! * a **dual decoder**: a *data-quality validation decoder* that reconstructs
//!   the input features (reconstruction error drives detection) and a *data
//!   repair decoder* that proposes corrected values
//!   ([`decoder::DualDecoder`]);
//! * a **multi-task loss** `L_total = α·L_validation + β·L_repair`, where the
//!   validation term weights each sample by how "normal" it looks
//!   ([`model::MultiTaskLoss`]).
//!
//! For the encoder-architecture ablation (Table 2 of the paper) the crate
//! also ships GCN layers, the homogeneous GCN stack, the GCN+GAT and GCN+GIN
//! hybrids, and a Graph2Vec-style structural encoder.
//!
//! Every sample of a tabular dataset becomes one tiny graph: node `i` carries
//! the (encoded, normalised) value of feature `i`, edges come from the
//! feature graph built by `dquag-graph`. Layers therefore operate on
//! `n_features × hidden` matrices via the `dquag-tensor` autograd tape.
//!
//! For inference, `B` samples are stacked vertically into one
//! `(B·n_features) × hidden` matrix and pushed through the whole network in a
//! single matrix-level forward pass ([`model::DquagNetwork::forward_batch`]),
//! with parameters bound once per [`model::InferenceSession`] instead of once
//! per sample. The batched and per-sample paths are held equivalent by the
//! seeded randomized suite in `tests/batched_forward.rs`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod decoder;
pub mod encoder;
pub mod health;
pub mod layers;
pub mod model;
pub mod params;

pub use context::GraphContext;
pub use decoder::DualDecoder;
pub use encoder::{Encoder, EncoderKind};
pub use health::{ActivationFault, HealthError};
pub use model::{
    BatchOutput, BatchScores, DquagNetwork, InferenceSession, ModelConfig, MultiTaskLoss,
    SampleOutput,
};
pub use params::{BoundParams, ParamId, ParamStore};
