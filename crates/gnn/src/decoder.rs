//! The dual-decoder head: data-quality validation and data repair.
//!
//! Both decoders consume the shared embeddings `Z ∈ R^{n × h}` produced by the
//! encoder, but are optimised with different objectives (§3.1.2 of the
//! paper):
//!
//! * the **validation decoder** reconstructs the original feature values and
//!   is trained with a *weighted* reconstruction loss that emphasises samples
//!   that already look normal, sharpening the clean/abnormal separation;
//! * the **repair decoder** outputs replacement values and is trained with a
//!   plain reconstruction loss towards the clean values.
//!
//! Keeping the decoders separate avoids the conflicting-objective problem the
//! paper describes: one head is allowed to be a harsh critic while the other
//! learns to produce plausible in-distribution values.

use crate::layers::Mlp;
use crate::params::{BoundParams, ParamStore};
use dquag_tensor::init::InitRng;
use dquag_tensor::Var;

/// The two task-specific decoders.
#[derive(Debug, Clone)]
pub struct DualDecoder {
    validation: Mlp,
    repair: Mlp,
    hidden_dim: usize,
}

impl DualDecoder {
    /// Create both decoders for embeddings of width `hidden_dim`. Each decoder
    /// is an MLP `h → h/2 → 1` applied node-wise.
    pub fn new(hidden_dim: usize, store: &mut ParamStore, rng: &mut InitRng) -> Self {
        let bottleneck = (hidden_dim / 2).max(1);
        Self {
            validation: Mlp::new("decoder.validation", hidden_dim, bottleneck, 1, store, rng),
            repair: Mlp::new("decoder.repair", hidden_dim, bottleneck, 1, store, rng),
            hidden_dim,
        }
    }

    /// Embedding dimensionality expected by both decoders.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Validation decoder: reconstruct the input features, `Z (n × h) → n × 1`.
    pub fn reconstruct(&self, params: &BoundParams, z: &Var) -> Var {
        self.validation.forward(params, z)
    }

    /// Repair decoder: propose corrected feature values, `Z (n × h) → n × 1`.
    pub fn repair(&self, params: &BoundParams, z: &Var) -> Var {
        self.repair.forward(params, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dquag_tensor::optim::Adam;
    use dquag_tensor::{Matrix, Tape};

    #[test]
    fn decoders_produce_one_value_per_node() {
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(3);
        let decoder = DualDecoder::new(16, &mut store, &mut rng);
        assert_eq!(decoder.hidden_dim(), 16);

        let tape = Tape::new();
        let bound = store.bind(&tape);
        let z = tape.leaf(Matrix::from_fn(6, 16, |r, c| ((r + c) as f32).sin()), false);
        let recon = decoder.reconstruct(&bound, &z);
        let repair = decoder.repair(&bound, &z);
        assert_eq!(recon.shape(), (6, 1));
        assert_eq!(repair.shape(), (6, 1));
        assert!(recon.value().is_finite());
        assert!(repair.value().is_finite());
    }

    #[test]
    fn decoders_have_independent_parameters() {
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(3);
        let decoder = DualDecoder::new(8, &mut store, &mut rng);
        // 2 decoders × 2 linear layers × (weight + bias)
        assert_eq!(store.n_params(), 8);

        // Training only the validation head must leave the repair head fixed.
        let mut adam = Adam::with_learning_rate(0.05);
        let z_value = Matrix::from_fn(4, 8, |r, c| 0.1 * (r as f32) - 0.05 * c as f32);
        let target = Matrix::col_vector(&[0.2, 0.4, 0.6, 0.8]);

        let tape = Tape::new();
        let bound = store.bind(&tape);
        let z = tape.constant(z_value.clone());
        let repair_before = decoder.repair(&bound, &z).value();

        let loss = decoder
            .reconstruct(&bound, &z)
            .mse(&tape.constant(target.clone()));
        tape.backward(&loss);
        store.apply_gradients(&bound, &mut adam);

        let tape2 = Tape::new();
        let bound2 = store.bind(&tape2);
        let z2 = tape2.constant(z_value);
        let repair_after = decoder.repair(&bound2, &z2).value();
        assert!(
            repair_before.max_abs_diff(&repair_after) < 1e-7,
            "repair decoder must be unaffected by a validation-only loss"
        );
    }

    #[test]
    fn bottleneck_never_collapses_to_zero() {
        let mut store = ParamStore::new();
        let mut rng = InitRng::seeded(3);
        let decoder = DualDecoder::new(1, &mut store, &mut rng);
        let tape = Tape::new();
        let bound = store.bind(&tape);
        let z = tape.constant(Matrix::ones(2, 1));
        assert_eq!(decoder.reconstruct(&bound, &z).shape(), (2, 1));
    }
}
