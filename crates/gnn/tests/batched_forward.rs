//! Seeded randomized equivalence suite for batched inference.
//!
//! The batched matrix-level forward pass ([`DquagNetwork::score_matrix`])
//! must be indistinguishable from the per-row reference path
//! (`reconstruction_errors` / `repair_values`, one tape per sample): scores
//! agree within 1e-5, flag decisions are identical, and the batched path's
//! tape stays O(layers) regardless of the batch size. Random shapes and
//! parameters across batch sizes {1, 2, 7, 64, 257}, including ragged final
//! chunks and the empty batch.

use dquag_gnn::{DquagNetwork, EncoderKind, ModelConfig};
use dquag_graph::FeatureGraph;
use dquag_tensor::optim::Adam;
use dquag_tensor::Tape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tolerance of the score-level equivalence checks.
const SCORE_TOL: f32 = 1e-5;

fn random_graph(rng: &mut StdRng) -> FeatureGraph {
    let n = rng.gen_range(3..9usize);
    let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let mut graph = FeatureGraph::new(names);
    // A ring keeps every node connected; random chords vary the topology.
    for i in 0..n {
        graph.add_edge(i, (i + 1) % n).expect("ring edge");
    }
    for _ in 0..n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let _ = graph.add_edge(a, b);
        }
    }
    graph
}

fn random_rows(rng: &mut StdRng, n_rows: usize, n_features: usize) -> Vec<Vec<f32>> {
    (0..n_rows)
        .map(|_| {
            (0..n_features)
                .map(|_| rng.gen_range(-2.0f32..2.0))
                .collect()
        })
        .collect()
}

/// Assert that one batched `score_matrix` call over `rows` reproduces the
/// per-row reference path: per-feature errors and repair values within
/// [`SCORE_TOL`], and identical flag decisions at a data-derived threshold.
fn assert_equivalent(net: &DquagNetwork, rows: &[Vec<f32>], context: &str) {
    let session = net.inference_session();
    let scores = net.score_matrix(&session, rows);
    assert_eq!(scores.len(), rows.len(), "{context}: batch length");
    assert_eq!(
        session.tape_len(),
        session.base_len(),
        "{context}: session tape must rewind to its baseline"
    );

    let batched_errors = scores.instance_errors();
    let mut reference_errors = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let reference_features = net.reconstruction_errors(row);
        let batched_features = scores.per_feature_errors(i);
        assert_eq!(reference_features.len(), batched_features.len());
        for (f, (a, b)) in batched_features
            .iter()
            .zip(reference_features.iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() <= SCORE_TOL,
                "{context}: row {i} feature {f}: batched {a} vs per-row {b}"
            );
        }
        let reference_error = if reference_features.is_empty() {
            0.0
        } else {
            reference_features.iter().sum::<f32>() / reference_features.len() as f32
        };
        assert!(
            (batched_errors[i] - reference_error).abs() <= SCORE_TOL,
            "{context}: row {i} instance error: batched {} vs per-row {reference_error}",
            batched_errors[i]
        );
        reference_errors.push(reference_error);

        let reference_repair = net.repair_values(row);
        let batched_repair = scores.repair_values(i);
        for (f, (a, b)) in batched_repair
            .iter()
            .zip(reference_repair.iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() <= SCORE_TOL,
                "{context}: row {i} repair {f}: batched {a} vs per-row {b}"
            );
        }
    }

    // Flag decisions must be identical, not merely close: threshold at the
    // median reference error so both flag outcomes actually occur.
    let mut sorted = reference_errors.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let threshold = sorted[sorted.len() / 2];
    for (i, (batched, reference)) in batched_errors
        .iter()
        .zip(reference_errors.iter())
        .enumerate()
    {
        assert_eq!(
            batched > &threshold,
            reference > &threshold,
            "{context}: row {i} flag decision differs (batched {batched}, \
             per-row {reference}, threshold {threshold})"
        );
    }
}

#[test]
fn small_batches_match_per_row_across_random_shapes_and_encoders() {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    for case in 0..6 {
        let graph = random_graph(&mut rng);
        let config = ModelConfig {
            hidden_dim: rng.gen_range(4..13),
            n_layers: rng.gen_range(1..4),
            encoder: EncoderKind::ALL[rng.gen_range(0..EncoderKind::ALL.len())],
            seed: rng.gen_range(0..1_000),
            ..ModelConfig::default()
        };
        let net = DquagNetwork::new(&graph, config);
        for &batch in &[1usize, 2, 7] {
            let rows = random_rows(&mut rng, batch, net.n_features());
            assert_equivalent(
                &net,
                &rows,
                &format!("case {case} B={batch} {:?}", config.encoder),
            );
        }
    }
}

#[test]
fn large_batches_match_per_row() {
    let mut rng = StdRng::seed_from_u64(0xBA7D);
    let graph = random_graph(&mut rng);
    let net = DquagNetwork::new(&graph, ModelConfig::small());
    for &batch in &[64usize, 257] {
        let rows = random_rows(&mut rng, batch, net.n_features());
        assert_equivalent(&net, &rows, &format!("large B={batch}"));
    }
}

#[test]
fn ragged_chunking_matches_one_shot_batching() {
    // 257 rows in chunks of 64 leaves a ragged final chunk of 1 — the shape
    // the pipeline produces whenever a dataset is not a multiple of the
    // inference batch size. Chunked scoring through one session must equal
    // the single-call batched scores exactly.
    let mut rng = StdRng::seed_from_u64(0xBA7E);
    let graph = random_graph(&mut rng);
    let net = DquagNetwork::new(&graph, ModelConfig::small());
    let rows = random_rows(&mut rng, 257, net.n_features());

    let session = net.inference_session();
    let one_shot = net.score_matrix(&session, &rows).instance_errors();
    let mut chunked = Vec::with_capacity(rows.len());
    for chunk in rows.chunks(64) {
        chunked.extend(net.score_matrix(&session, chunk).instance_errors());
        assert_eq!(session.tape_len(), session.base_len());
    }
    assert_eq!(one_shot.len(), chunked.len());
    for (i, (a, b)) in one_shot.iter().zip(chunked.iter()).enumerate() {
        assert!(
            (a - b).abs() <= SCORE_TOL,
            "row {i}: one-shot {a} vs chunked {b}"
        );
    }
}

#[test]
fn score_errors_matches_score_matrix_errors() {
    // The validation-only scoring path must produce exactly the errors of
    // the full path — it merely skips the repair decoder.
    let mut rng = StdRng::seed_from_u64(0xBA82);
    let graph = random_graph(&mut rng);
    let net = DquagNetwork::new(&graph, ModelConfig::small());
    let rows = random_rows(&mut rng, 97, net.n_features());
    let session = net.inference_session();
    let full = net.score_matrix(&session, &rows);
    let errors_only = net.score_errors(&session, &rows);
    assert_eq!(full.len(), errors_only.len());
    assert_eq!(full.instance_errors(), errors_only.instance_errors());
    for i in 0..rows.len() {
        assert_eq!(
            full.per_feature_errors(i),
            errors_only.per_feature_errors(i)
        );
    }
    assert_eq!(session.tape_len(), session.base_len());
}

#[test]
fn empty_batch_yields_empty_scores() {
    let mut rng = StdRng::seed_from_u64(0xBA7F);
    let graph = random_graph(&mut rng);
    let net = DquagNetwork::new(&graph, ModelConfig::small());
    let session = net.inference_session();
    let scores = net.score_matrix(&session, &Vec::<Vec<f32>>::new());
    assert!(scores.is_empty());
    assert_eq!(scores.len(), 0);
    assert!(scores.instance_errors().is_empty());
    assert_eq!(
        session.tape_len(),
        session.base_len(),
        "the empty batch must not touch the tape"
    );
}

#[test]
fn no_grad_inference_allocates_zero_backward_nodes_and_o_layers_tape() {
    let mut rng = StdRng::seed_from_u64(0xBA80);
    let graph = random_graph(&mut rng);
    let net = DquagNetwork::new(&graph, ModelConfig::small());
    let rows = random_rows(&mut rng, 64, net.n_features());

    let tape = Tape::no_grad();
    let (params, bound_graph) = net.bind(&tape);
    let base = tape.len();

    let _ = net.forward_batch(&tape, &params, &bound_graph, &rows[..1]);
    let growth_b1 = tape.len() - base;
    assert_eq!(tape.n_backward_nodes(), 0, "no-grad pass, B=1");
    tape.truncate(base);

    let _ = net.forward_batch(&tape, &params, &bound_graph, &rows);
    let growth_b64 = tape.len() - base;
    assert_eq!(tape.n_backward_nodes(), 0, "no-grad pass, B=64");
    assert_eq!(
        growth_b1, growth_b64,
        "tape node count must be O(layers), independent of the batch size"
    );

    // Control: the same forward on a gradient tape does build a backward
    // graph, so the zero above is the no-grad mode at work.
    let grad_tape = Tape::new();
    let (grad_params, grad_graph) = net.bind(&grad_tape);
    let _ = net.forward_batch(&grad_tape, &grad_params, &grad_graph, &rows[..1]);
    assert!(grad_tape.n_backward_nodes() > 0);
}

#[test]
fn refitting_and_rescoring_do_not_leak_tape_nodes() {
    // Regression test for the hoisted-binding fix: training twice on the same
    // network and scoring through a long-lived session must leave the session
    // tape at its baseline after every batch — nothing accumulates.
    let mut rng = StdRng::seed_from_u64(0xBA81);
    let graph = random_graph(&mut rng);
    let mut net = DquagNetwork::new(&graph, ModelConfig::small());
    let rows = random_rows(&mut rng, 16, net.n_features());

    let mut adam = Adam::with_learning_rate(0.01);
    net.train_batch(&rows, &mut adam);
    net.train_batch(&rows, &mut adam);

    let session = net.inference_session();
    let base = session.base_len();
    for pass in 0..5 {
        let scores = net.score_matrix(&session, &rows);
        assert_eq!(scores.len(), rows.len());
        assert_eq!(
            session.tape_len(),
            base,
            "pass {pass}: session tape must not grow across batches"
        );
    }
}

#[test]
fn session_counters_track_tiles_and_rows() {
    let mut rng = StdRng::seed_from_u64(0xC0C0);
    let graph = random_graph(&mut rng);
    let net = DquagNetwork::new(&graph, ModelConfig::small());
    let rows = random_rows(&mut rng, 23, net.n_features());

    let session = net.inference_session();
    assert_eq!(session.forward_passes(), 0);
    assert_eq!(session.rows_scored(), 0);

    net.score_errors(&session, &rows);
    assert!(session.forward_passes() >= 1);
    assert_eq!(session.rows_scored(), 23);

    // Counters are cumulative across calls and ignore the empty batch.
    net.score_errors(&session, &rows[..5]);
    let after_two = session.forward_passes();
    assert_eq!(session.rows_scored(), 28);
    net.score_errors(&session, &rows[..0]);
    assert_eq!(session.forward_passes(), after_two);
    assert_eq!(session.rows_scored(), 28);
}
