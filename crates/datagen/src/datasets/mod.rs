//! The six evaluation datasets, modelled as correlated synthetic generators.
//!
//! Each module mirrors one of the public datasets the paper evaluates on: the
//! schema uses the real column names the paper references, and the generative
//! process encodes the cross-feature dependencies that (a) the GNN must learn
//! from clean data and (b) the hidden-error injectors violate.

pub mod airbnb;
pub mod bicycle;
pub mod credit;
pub mod hotel;
pub mod nytaxi;
pub mod playstore;

use crate::errors::HiddenError;
use dquag_tabular::{DataFrame, Schema};
use rand::rngs::StdRng;
use rand::Rng;

/// The six evaluation datasets of §4.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Airbnb listings in New York City (real-world errors available).
    Airbnb,
    /// Chicago Divvy bicycle-sharing trips (real-world errors available).
    Bicycle,
    /// Google Play Store apps (real-world errors available).
    PlayStore,
    /// New York taxi trips (clean source; errors injected synthetically).
    NyTaxi,
    /// Hotel bookings (clean source; errors injected synthetically).
    HotelBooking,
    /// Credit-card applications (clean source; errors injected synthetically).
    CreditCard,
}

impl DatasetKind {
    /// All datasets.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::Airbnb,
        DatasetKind::Bicycle,
        DatasetKind::PlayStore,
        DatasetKind::NyTaxi,
        DatasetKind::HotelBooking,
        DatasetKind::CreditCard,
    ];

    /// Datasets whose dirty variant carries "real-world" in-situ errors
    /// (Figure 3 of the paper).
    pub const WITH_REAL_ERRORS: [DatasetKind; 3] = [
        DatasetKind::Airbnb,
        DatasetKind::Bicycle,
        DatasetKind::PlayStore,
    ];

    /// Datasets used with synthetic error injection (Table 1 of the paper).
    pub const WITH_SYNTHETIC_ERRORS: [DatasetKind; 3] = [
        DatasetKind::NyTaxi,
        DatasetKind::HotelBooking,
        DatasetKind::CreditCard,
    ];

    /// Human-readable dataset name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Airbnb => "Airbnb",
            DatasetKind::Bicycle => "Bicycle",
            DatasetKind::PlayStore => "App",
            DatasetKind::NyTaxi => "NY Taxi",
            DatasetKind::HotelBooking => "Hotel Booking",
            DatasetKind::CreditCard => "Credit Card",
        }
    }

    /// The dataset schema.
    pub fn schema(&self) -> Schema {
        match self {
            DatasetKind::Airbnb => airbnb::schema(),
            DatasetKind::Bicycle => bicycle::schema(),
            DatasetKind::PlayStore => playstore::schema(),
            DatasetKind::NyTaxi => nytaxi::schema(nytaxi::FULL_DIMENSIONS),
            DatasetKind::HotelBooking => hotel::schema(),
            DatasetKind::CreditCard => credit::schema(),
        }
    }

    /// Generate a clean dataset of `n_rows` rows.
    pub fn generate_clean(&self, n_rows: usize, seed: u64) -> DataFrame {
        match self {
            DatasetKind::Airbnb => airbnb::generate_clean(n_rows, seed),
            DatasetKind::Bicycle => bicycle::generate_clean(n_rows, seed),
            DatasetKind::PlayStore => playstore::generate_clean(n_rows, seed),
            DatasetKind::NyTaxi => nytaxi::generate_clean(n_rows, nytaxi::FULL_DIMENSIONS, seed),
            DatasetKind::HotelBooking => hotel::generate_clean(n_rows, seed),
            DatasetKind::CreditCard => credit::generate_clean(n_rows, seed),
        }
    }

    /// Generate a dirty dataset of `n_rows` rows.
    ///
    /// For the [`Self::WITH_REAL_ERRORS`] family the errors are realistic
    /// in-situ problems baked into the generator (price outliers, impossible
    /// birth years, category typos, missing cells, broken derived columns).
    /// For the synthetic family this is a convenience that applies the
    /// paper's three ordinary error types at the default 20% rate to the
    /// dataset's standard target columns; the experiment harnesses inject
    /// specific error types themselves.
    pub fn generate_dirty(&self, n_rows: usize, seed: u64) -> DataFrame {
        match self {
            DatasetKind::Airbnb => airbnb::generate_dirty(n_rows, seed),
            DatasetKind::Bicycle => bicycle::generate_dirty(n_rows, seed),
            DatasetKind::PlayStore => playstore::generate_dirty(n_rows, seed),
            _ => {
                use crate::errors::{inject_ordinary, OrdinaryError, PAPER_ERROR_RATE};
                let mut df = self.generate_clean(n_rows, seed);
                let mut rng = crate::rng(seed ^ 0xD1B7);
                let cols = self.default_ordinary_error_columns();
                for (error, col) in OrdinaryError::ALL.iter().zip(cols.iter()) {
                    inject_ordinary(&mut df, *error, &[*col], PAPER_ERROR_RATE, &mut rng);
                }
                df
            }
        }
    }

    /// The three attributes the ordinary-error injectors target by default
    /// (one suited to missing values, one numeric, one categorical).
    pub fn default_ordinary_error_columns(&self) -> Vec<usize> {
        let schema = self.schema();
        let names: Vec<&str> = match self {
            DatasetKind::Airbnb => vec!["reviews_per_month", "price", "neighbourhood"],
            DatasetKind::Bicycle => vec!["gender", "trip_duration_seconds", "events"],
            DatasetKind::PlayStore => vec!["size_mb", "rating", "category"],
            DatasetKind::NyTaxi => vec!["passenger_count", "fare_amount", "payment_type"],
            DatasetKind::HotelBooking => vec!["children", "lead_time", "meal"],
            DatasetKind::CreditCard => {
                vec!["CNT_FAM_MEMBERS", "AMT_INCOME_TOTAL", "OCCUPATION_TYPE"]
            }
        };
        names
            .into_iter()
            .map(|n| {
                schema
                    .index_of(n)
                    .unwrap_or_else(|| panic!("column {n} missing"))
            })
            .collect()
    }

    /// The hidden conflicts the paper injects into this dataset (empty when
    /// the paper defines none).
    pub fn hidden_errors(&self) -> Vec<HiddenError> {
        match self {
            DatasetKind::CreditCard => vec![
                HiddenError::CreditEmploymentBeforeBirth,
                HiddenError::CreditIncomeEducationMismatch,
            ],
            DatasetKind::HotelBooking => vec![HiddenError::HotelGroupWithoutAdults],
            _ => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared generator helpers
// ---------------------------------------------------------------------------

/// Draw from a weighted categorical distribution.
pub(crate) fn weighted_choice<'a>(rng: &mut StdRng, options: &[(&'a str, f64)]) -> &'a str {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total.max(f64::EPSILON));
    for (name, weight) in options {
        if pick < *weight {
            return name;
        }
        pick -= weight;
    }
    options.last().expect("non-empty options").0
}

/// Approximately normal noise with the given standard deviation
/// (Irwin–Hall sum of uniforms; adequate for data generation).
pub(crate) fn gaussian(rng: &mut StdRng, std_dev: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    (sum - 6.0) * std_dev
}

/// Clamp a value into `[min, max]`.
pub(crate) fn clamp(value: f64, min: f64, max: f64) -> f64 {
    value.max(min).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_produce_schema_conforming_clean_data() {
        for kind in DatasetKind::ALL {
            let df = kind.generate_clean(120, 42);
            assert_eq!(df.n_rows(), 120, "{kind:?}");
            assert_eq!(df.schema(), &kind.schema(), "{kind:?}");
            assert_eq!(
                df.total_missing(),
                0,
                "clean {kind:?} data has no missing cells"
            );
        }
    }

    #[test]
    fn all_generators_produce_dirty_variants_with_same_schema() {
        for kind in DatasetKind::ALL {
            let df = kind.generate_dirty(150, 7);
            assert_eq!(df.n_rows(), 150, "{kind:?}");
            assert_eq!(df.schema(), &kind.schema(), "{kind:?}");
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        for kind in DatasetKind::ALL {
            assert_eq!(kind.generate_clean(50, 5), kind.generate_clean(50, 5));
            assert_ne!(kind.generate_clean(50, 5), kind.generate_clean(50, 6));
        }
    }

    #[test]
    fn error_column_defaults_resolve() {
        for kind in DatasetKind::ALL {
            let cols = kind.default_ordinary_error_columns();
            assert_eq!(cols.len(), 3, "{kind:?}");
            let schema = kind.schema();
            assert!(cols.iter().all(|&c| c < schema.len()));
        }
    }

    #[test]
    fn hidden_errors_match_paper_setup() {
        assert_eq!(DatasetKind::CreditCard.hidden_errors().len(), 2);
        assert_eq!(DatasetKind::HotelBooking.hidden_errors().len(), 1);
        assert!(DatasetKind::Airbnb.hidden_errors().is_empty());
    }

    #[test]
    fn dataset_families_partition() {
        for kind in DatasetKind::WITH_REAL_ERRORS {
            assert!(!DatasetKind::WITH_SYNTHETIC_ERRORS.contains(&kind));
        }
        assert_eq!(
            DatasetKind::WITH_REAL_ERRORS.len() + DatasetKind::WITH_SYNTHETIC_ERRORS.len(),
            DatasetKind::ALL.len()
        );
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = crate::rng(1);
        let options = [("common", 0.95), ("rare", 0.05)];
        let picks: Vec<&str> = (0..500)
            .map(|_| weighted_choice(&mut rng, &options))
            .collect();
        let common = picks.iter().filter(|&&p| p == "common").count();
        assert!(common > 400, "common picked {common}/500 times");
    }

    #[test]
    fn gaussian_is_roughly_centred() {
        let mut rng = crate::rng(2);
        let samples: Vec<f64> = (0..2000).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.2);
    }
}
