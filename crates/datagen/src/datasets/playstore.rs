//! Google Play Store apps — a "dataset with ground-truth errors".
//!
//! Dependencies encoded by the clean generator: installs and review counts
//! grow together, ratings concentrate between 3.5 and 4.7, the price is zero
//! exactly when `type == "Free"`, and paid apps have lower install counts.
//! The dirty generator reproduces the notorious problems of the raw Kaggle
//! file: a rating of 19, misplaced columns producing paid apps with price 0,
//! missing sizes, category typos and install counts wildly inconsistent with
//! review counts.

use super::{clamp, gaussian, weighted_choice};
use crate::errors::qwerty_typo;
use dquag_tabular::{DataFrame, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The app schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::categorical("category", "Play Store category of the app"),
        Field::numeric("rating", "average user rating between 1 and 5"),
        Field::numeric("reviews", "number of user reviews"),
        Field::numeric("size_mb", "installation size in megabytes"),
        Field::numeric("installs", "number of installs"),
        Field::categorical("type", "Free or Paid"),
        Field::numeric("price", "price in dollars (0 for free apps)"),
        Field::categorical("content_rating", "audience content rating"),
        Field::numeric("last_update_days", "days since the last update"),
    ])
}

const CATEGORIES: [(&str, f64); 8] = [
    ("FAMILY", 0.19),
    ("GAME", 0.18),
    ("TOOLS", 0.13),
    ("PRODUCTIVITY", 0.10),
    ("FINANCE", 0.09),
    ("LIFESTYLE", 0.11),
    ("PHOTOGRAPHY", 0.09),
    ("HEALTH_AND_FITNESS", 0.11),
];

fn clean_row(rng: &mut StdRng) -> Vec<Value> {
    let category = weighted_choice(rng, &CATEGORIES);
    let is_free = rng.gen_bool(0.92);
    let app_type = if is_free { "Free" } else { "Paid" };
    let price = if is_free {
        0.0
    } else {
        clamp(0.99 + gaussian(rng, 3.0).abs(), 0.99, 29.99)
    };
    // popularity scale drives both installs and reviews
    let popularity = gaussian(rng, 1.3).abs() + if is_free { 1.0 } else { 0.3 };
    let installs = clamp((10f64).powf(2.0 + popularity), 100.0, 5e8).round();
    let reviews = clamp(installs * rng.gen_range(0.005..0.05), 5.0, 5e7).round();
    let rating = clamp(4.1 + gaussian(rng, 0.35), 1.0, 5.0);
    let size_mb = clamp(
        match category {
            "GAME" => 60.0 + gaussian(rng, 30.0).abs(),
            "FAMILY" => 35.0 + gaussian(rng, 20.0).abs(),
            _ => 15.0 + gaussian(rng, 12.0).abs(),
        },
        1.0,
        400.0,
    );
    let content_rating = weighted_choice(
        rng,
        &[
            ("Everyone", 0.8),
            ("Teen", 0.12),
            ("Mature 17+", 0.05),
            ("Everyone 10+", 0.03),
        ],
    );
    let last_update_days = clamp(gaussian(rng, 220.0).abs(), 1.0, 2000.0).round();
    vec![
        Value::Text(category.to_string()),
        Value::Number((rating * 10.0).round() / 10.0),
        Value::Number(reviews),
        Value::Number((size_mb * 10.0).round() / 10.0),
        Value::Number(installs),
        Value::Text(app_type.to_string()),
        Value::Number((price * 100.0).round() / 100.0),
        Value::Text(content_rating.to_string()),
        Value::Number(last_update_days),
    ]
}

/// Generate the cleaned app dataset.
pub fn generate_clean(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        df.push_row(clean_row(&mut rng))
            .expect("generator row matches schema");
    }
    df
}

/// Generate the uncleaned app dataset with realistic in-situ errors
/// (roughly 20% of rows affected).
pub fn generate_dirty(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        let mut row = clean_row(&mut rng);
        if rng.gen_bool(0.20) {
            match rng.gen_range(0..5u8) {
                0 => {
                    // the infamous rating of 19 (column-shift artefact)
                    row[1] = Value::Number(rng.gen_range(6.0_f64..25.0).round());
                }
                1 => {
                    // paid app recorded with price 0, or free app with a price
                    if rng.gen_bool(0.5) {
                        row[5] = Value::Text("Paid".to_string());
                        row[6] = Value::Number(0.0);
                    } else {
                        row[5] = Value::Text("Free".to_string());
                        row[6] = Value::Number(rng.gen_range(0.99..9.99));
                    }
                }
                2 => {
                    // "Varies with device" size → missing
                    row[3] = Value::Null;
                }
                3 => {
                    // category typo
                    if let Value::Text(c) = &row[0] {
                        row[0] = Value::Text(qwerty_typo(c, &mut rng));
                    }
                }
                _ => {
                    // reviews wildly exceeding installs
                    row[4] = Value::Number(rng.gen_range(100.0_f64..1_000.0).round());
                    row[2] = Value::Number(rng.gen_range(1e6_f64..1e7).round());
                }
            }
        }
        df.push_row(row).expect("generator row matches schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_apps_have_valid_ratings_and_price_type_consistency() {
        let df = generate_clean(1000, 23);
        for r in 0..df.n_rows() {
            let rating = df.value(r, 1).unwrap().as_number().unwrap();
            assert!((1.0..=5.0).contains(&rating), "rating {rating}");
            let app_type = df.value(r, 5).unwrap();
            let price = df.value(r, 6).unwrap().as_number().unwrap();
            if app_type.as_text() == Some("Free") {
                assert_eq!(price, 0.0, "free apps cost nothing");
            } else {
                assert!(price > 0.0, "paid apps cost something");
            }
        }
    }

    #[test]
    fn reviews_do_not_exceed_installs_in_clean_data() {
        let df = generate_clean(1500, 29);
        for r in 0..df.n_rows() {
            let reviews = df.value(r, 2).unwrap().as_number().unwrap();
            let installs = df.value(r, 4).unwrap().as_number().unwrap();
            assert!(
                reviews <= installs,
                "reviews {reviews} > installs {installs}"
            );
        }
    }

    #[test]
    fn dirty_apps_contain_out_of_scale_ratings_and_type_conflicts() {
        let df = generate_dirty(3000, 31);
        let mut silly_rating = false;
        let mut type_conflict = false;
        for r in 0..df.n_rows() {
            if let Some(rating) = df.value(r, 1).unwrap().as_number() {
                if rating > 5.0 {
                    silly_rating = true;
                }
            }
            let app_type = df.value(r, 5).unwrap();
            let price = df.value(r, 6).unwrap().as_number().unwrap_or(0.0);
            if app_type.as_text() == Some("Paid") && price == 0.0 {
                type_conflict = true;
            }
        }
        assert!(silly_rating, "dirty data contains ratings above 5");
        assert!(type_conflict, "dirty data contains paid apps priced at 0");
        assert!(df.total_missing() > 0);
    }
}
