//! Credit-card applications — a "dataset without ground-truth errors".
//!
//! Column names follow the Kaggle `application_record.csv` vocabulary the
//! paper cites (`DAYS_BIRTH`, `DAYS_EMPLOYED`, `AMT_INCOME_TOTAL`,
//! `NAME_EDUCATION_TYPE`, `OCCUPATION_TYPE`, …). Dependencies encoded:
//! income rises with education and occupation seniority, employment always
//! starts after the 16th birthday, family size tracks the number of children,
//! and car/realty ownership correlates with income. The two hidden conflicts
//! the paper injects (employment before birth; elite education and occupation
//! with an implausibly low income) violate exactly these dependencies.

use super::{clamp, gaussian, weighted_choice};
use dquag_tabular::{DataFrame, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The application schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::categorical("CODE_GENDER", "gender of the applicant"),
        Field::categorical("FLAG_OWN_CAR", "whether the applicant owns a car"),
        Field::categorical("FLAG_OWN_REALTY", "whether the applicant owns real estate"),
        Field::numeric("CNT_CHILDREN", "number of children"),
        Field::numeric("AMT_INCOME_TOTAL", "annual income"),
        Field::categorical("NAME_EDUCATION_TYPE", "highest education level"),
        Field::categorical("NAME_FAMILY_STATUS", "family status"),
        Field::categorical("NAME_HOUSING_TYPE", "housing situation"),
        Field::numeric(
            "DAYS_BIRTH",
            "days since birth (negative, relative to application)",
        ),
        Field::numeric("DAYS_EMPLOYED", "days since employment started (negative)"),
        Field::categorical("OCCUPATION_TYPE", "occupation of the applicant"),
        Field::numeric("CNT_FAM_MEMBERS", "number of family members"),
    ])
}

const EDUCATION: [(&str, f64); 4] = [
    ("Secondary / secondary special", 0.64),
    ("Higher education", 0.24),
    ("Incomplete higher", 0.09),
    ("Academic degree", 0.03),
];

fn occupations_for(education: &str) -> &'static [(&'static str, f64)] {
    match education {
        "Academic degree" | "Higher education" => &[
            ("Managers", 0.30),
            ("High skill tech staff", 0.25),
            ("Core staff", 0.25),
            ("Accountants", 0.20),
        ],
        "Incomplete higher" => &[
            ("Core staff", 0.4),
            ("Sales staff", 0.3),
            ("Accountants", 0.15),
            ("Laborers", 0.15),
        ],
        _ => &[
            ("Laborers", 0.40),
            ("Sales staff", 0.25),
            ("Drivers", 0.20),
            ("Cleaning staff", 0.15),
        ],
    }
}

fn income_for(education: &str, occupation: &str, rng: &mut StdRng) -> f64 {
    let education_base = match education {
        "Academic degree" => 260_000.0,
        "Higher education" => 210_000.0,
        "Incomplete higher" => 160_000.0,
        _ => 130_000.0,
    };
    let occupation_factor = match occupation {
        "Managers" => 1.35,
        "High skill tech staff" => 1.25,
        "Accountants" => 1.1,
        "Core staff" => 1.0,
        "Sales staff" => 0.9,
        "Drivers" => 0.85,
        _ => 0.75,
    };
    clamp(
        education_base * occupation_factor * (1.0 + gaussian(rng, 0.18)),
        40_000.0,
        600_000.0,
    )
}

fn clean_row(rng: &mut StdRng) -> Vec<Value> {
    let gender = weighted_choice(rng, &[("F", 0.62), ("M", 0.38)]);
    let education = weighted_choice(rng, &EDUCATION);
    let occupation = weighted_choice(rng, occupations_for(education));
    let income = income_for(education, occupation, rng);
    let own_car = if rng.gen_bool(clamp(income / 500_000.0, 0.15, 0.8)) {
        "Y"
    } else {
        "N"
    };
    let own_realty = if rng.gen_bool(0.65) { "Y" } else { "N" };
    let children = clamp(gaussian(rng, 0.9).abs().floor(), 0.0, 5.0);
    let family_status = weighted_choice(
        rng,
        &[
            ("Married", 0.68),
            ("Single / not married", 0.14),
            ("Civil marriage", 0.09),
            ("Separated", 0.06),
            ("Widow", 0.03),
        ],
    );
    let housing = weighted_choice(
        rng,
        &[
            ("House / apartment", 0.89),
            ("With parents", 0.05),
            ("Municipal apartment", 0.03),
            ("Rented apartment", 0.03),
        ],
    );
    // age between 21 and 68 years, employment after the 16th birthday
    let age_days = rng.gen_range(21.0_f64 * 365.0..68.0 * 365.0);
    let days_birth = -age_days.round();
    let max_employment_days = age_days - 16.0 * 365.0;
    let employment_days = clamp(gaussian(rng, 8.0 * 365.0).abs(), 30.0, max_employment_days);
    let days_employed = -employment_days.round();
    let family_members = (1.0
        + children
        + if family_status == "Married" || family_status == "Civil marriage" {
            1.0
        } else {
            0.0
        })
    .round();
    vec![
        Value::Text(gender.to_string()),
        Value::Text(own_car.to_string()),
        Value::Text(own_realty.to_string()),
        Value::Number(children),
        Value::Number(income.round()),
        Value::Text(education.to_string()),
        Value::Text(family_status.to_string()),
        Value::Text(housing.to_string()),
        Value::Number(days_birth),
        Value::Number(days_employed),
        Value::Text(occupation.to_string()),
        Value::Number(family_members),
    ]
}

/// Generate a clean application dataset.
pub fn generate_clean(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        df.push_row(clean_row(&mut rng))
            .expect("generator row matches schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn employment_always_starts_after_birth_in_clean_data() {
        let df = generate_clean(1500, 61);
        let s = schema();
        let birth = s.index_of("DAYS_BIRTH").unwrap();
        let employed = s.index_of("DAYS_EMPLOYED").unwrap();
        for r in 0..df.n_rows() {
            let b = df.value(r, birth).unwrap().as_number().unwrap();
            let e = df.value(r, employed).unwrap().as_number().unwrap();
            assert!(b < 0.0 && e < 0.0, "days are negative offsets");
            assert!(e > b, "employment ({e}) must start after birth ({b})");
        }
    }

    #[test]
    fn income_rises_with_education_in_clean_data() {
        let df = generate_clean(6000, 67);
        let s = schema();
        let income = s.index_of("AMT_INCOME_TOTAL").unwrap();
        let education = s.index_of("NAME_EDUCATION_TYPE").unwrap();
        let mut academic = Vec::new();
        let mut secondary = Vec::new();
        for r in 0..df.n_rows() {
            let inc = df.value(r, income).unwrap().as_number().unwrap();
            match df.value(r, education).unwrap().as_text().unwrap() {
                "Academic degree" | "Higher education" => academic.push(inc),
                "Secondary / secondary special" => secondary.push(inc),
                _ => {}
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&academic) > mean(&secondary) * 1.3);
    }

    #[test]
    fn no_low_income_elite_combination_in_clean_data() {
        let df = generate_clean(4000, 71);
        let s = schema();
        let income = s.index_of("AMT_INCOME_TOTAL").unwrap();
        let education = s.index_of("NAME_EDUCATION_TYPE").unwrap();
        let occupation = s.index_of("OCCUPATION_TYPE").unwrap();
        for r in 0..df.n_rows() {
            let inc = df.value(r, income).unwrap().as_number().unwrap();
            let edu = df.value(r, education).unwrap();
            let occ = df.value(r, occupation).unwrap();
            if edu.as_text() == Some("Academic degree") && occ.as_text() == Some("Managers") {
                assert!(
                    inc > 50_000.0,
                    "elite combination never has tiny income, got {inc}"
                );
            }
        }
    }

    #[test]
    fn family_members_track_children() {
        let df = generate_clean(500, 73);
        let s = schema();
        let children = s.index_of("CNT_CHILDREN").unwrap();
        let family = s.index_of("CNT_FAM_MEMBERS").unwrap();
        for r in 0..df.n_rows() {
            let c = df.value(r, children).unwrap().as_number().unwrap();
            let f = df.value(r, family).unwrap().as_number().unwrap();
            assert!(f >= c + 1.0, "family includes the applicant");
            assert!(f <= c + 2.0, "family is applicant + children (+ partner)");
        }
    }
}
