//! New York taxi trips — the scalability dataset (Figure 4) and one of the
//! "datasets without ground-truth errors".
//!
//! The full schema has 18 columns; the scalability experiment slices it to 5,
//! 10 or 18 dimensions via [`schema`]'s `dimensions` argument (column order is
//! chosen so that every prefix remains a meaningful dataset: the first five
//! columns already contain the core distance/duration/fare dependency).
//!
//! Dependencies encoded: trip duration follows distance at plausible city
//! speeds, fares follow the metered formula plus surcharges, tips correlate
//! with fare and payment type, the total is the sum of its parts, and
//! airport trips are long and tolled.

use super::{clamp, gaussian, weighted_choice};
use dquag_tabular::{DataFrame, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of columns in the full taxi schema.
pub const FULL_DIMENSIONS: usize = 18;

/// The taxi schema truncated to the first `dimensions` columns
/// (5 ≤ `dimensions` ≤ 18 in the paper's Figure 4; any value in
/// `1..=18` is accepted).
pub fn schema(dimensions: usize) -> Schema {
    let all = vec![
        Field::numeric("trip_distance", "trip distance in miles"),
        Field::numeric("trip_duration_min", "trip duration in minutes"),
        Field::numeric("fare_amount", "metered fare in dollars"),
        Field::numeric("passenger_count", "number of passengers"),
        Field::numeric("pickup_hour", "hour of day of the pickup"),
        Field::categorical("payment_type", "payment method"),
        Field::numeric("tip_amount", "tip in dollars"),
        Field::numeric("tolls_amount", "tolls in dollars"),
        Field::numeric("total_amount", "total charged in dollars"),
        Field::categorical("pickup_zone", "pickup zone"),
        Field::categorical("dropoff_zone", "dropoff zone"),
        Field::numeric("pickup_weekday", "day of week of the pickup (0-6)"),
        Field::categorical("rate_code", "metering rate code"),
        Field::numeric("extra_charge", "rush-hour and overnight extras"),
        Field::numeric("avg_speed_mph", "average speed of the trip"),
        Field::numeric("congestion_surcharge", "congestion surcharge in dollars"),
        Field::categorical("vendor_id", "technology vendor of the meter"),
        Field::categorical("airport_trip", "whether the trip serves an airport"),
    ];
    let dims = dimensions.clamp(1, FULL_DIMENSIONS);
    Schema::new(all.into_iter().take(dims).collect())
}

const ZONES: [&str; 7] = [
    "Midtown",
    "Upper East Side",
    "JFK Airport",
    "LaGuardia Airport",
    "Harlem",
    "Financial District",
    "Williamsburg",
];

fn clean_row(rng: &mut StdRng, dimensions: usize) -> Vec<Value> {
    let airport = rng.gen_bool(0.12);
    let trip_distance = if airport {
        clamp(9.0 + gaussian(rng, 4.0).abs(), 6.0, 25.0)
    } else {
        clamp(0.5 + gaussian(rng, 2.2).abs(), 0.4, 12.0)
    };
    let pickup_hour = clamp(13.0 + gaussian(rng, 5.5), 0.0, 23.0).round();
    let rush_hour = (7.0..=9.0).contains(&pickup_hour) || (16.0..=19.0).contains(&pickup_hour);
    let speed = if rush_hour {
        rng.gen_range(7.0..14.0)
    } else {
        rng.gen_range(11.0..24.0)
    };
    let trip_duration_min = clamp(
        trip_distance / speed * 60.0 * (1.0 + gaussian(rng, 0.05)),
        1.5,
        120.0,
    );
    let fare_amount = clamp(
        3.0 + 2.5 * trip_distance + 0.35 * trip_duration_min,
        4.0,
        120.0,
    );
    let passenger_count = clamp(1.0 + gaussian(rng, 1.0).abs().floor(), 1.0, 6.0);
    let payment_type = weighted_choice(
        rng,
        &[("credit_card", 0.7), ("cash", 0.28), ("dispute", 0.02)],
    );
    let tip_amount = if payment_type == "credit_card" {
        clamp(fare_amount * rng.gen_range(0.12..0.28), 0.0, 40.0)
    } else {
        0.0
    };
    let tolls_amount = if airport && rng.gen_bool(0.6) {
        6.55
    } else {
        0.0
    };
    let extra_charge = if rush_hour {
        1.0
    } else if pickup_hour >= 20.0 {
        0.5
    } else {
        0.0
    };
    let congestion = if airport { 0.0 } else { 2.5 };
    let total_amount = fare_amount + tip_amount + tolls_amount + extra_charge + congestion;
    let pickup_zone = if airport {
        if rng.gen_bool(0.5) {
            "JFK Airport"
        } else {
            "LaGuardia Airport"
        }
    } else {
        ZONES[rng.gen_range(0..ZONES.len())]
    };
    let dropoff_zone = ZONES[rng.gen_range(0..ZONES.len())];
    let pickup_weekday = rng.gen_range(0..7) as f64;
    let rate_code = if airport { "JFK" } else { "standard" };
    let avg_speed = trip_distance / (trip_duration_min / 60.0);
    let vendor = weighted_choice(rng, &[("CMT", 0.45), ("VeriFone", 0.55)]);

    let all = vec![
        Value::Number((trip_distance * 100.0).round() / 100.0),
        Value::Number((trip_duration_min * 10.0).round() / 10.0),
        Value::Number((fare_amount * 100.0).round() / 100.0),
        Value::Number(passenger_count),
        Value::Number(pickup_hour),
        Value::Text(payment_type.to_string()),
        Value::Number((tip_amount * 100.0).round() / 100.0),
        Value::Number(tolls_amount),
        Value::Number((total_amount * 100.0).round() / 100.0),
        Value::Text(pickup_zone.to_string()),
        Value::Text(dropoff_zone.to_string()),
        Value::Number(pickup_weekday),
        Value::Text(rate_code.to_string()),
        Value::Number(extra_charge),
        Value::Number((avg_speed * 10.0).round() / 10.0),
        Value::Number(congestion),
        Value::Text(vendor.to_string()),
        Value::Text(if airport { "yes" } else { "no" }.to_string()),
    ];
    all.into_iter()
        .take(dimensions.clamp(1, FULL_DIMENSIONS))
        .collect()
}

/// Generate a clean taxi dataset with the given number of columns.
pub fn generate_clean(n_rows: usize, dimensions: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(dimensions), n_rows);
    for _ in 0..n_rows {
        df.push_row(clean_row(&mut rng, dimensions))
            .expect("generator row matches schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_dimension_slicing() {
        assert_eq!(schema(5).len(), 5);
        assert_eq!(schema(10).len(), 10);
        assert_eq!(schema(18).len(), 18);
        assert_eq!(schema(99).len(), 18);
        assert_eq!(schema(0).len(), 1);
        assert_eq!(schema(FULL_DIMENSIONS), schema(18));
    }

    #[test]
    fn fares_and_totals_are_consistent_in_clean_data() {
        let df = generate_clean(600, 18, 37);
        let s = schema(18);
        let fare = s.index_of("fare_amount").unwrap();
        let tip = s.index_of("tip_amount").unwrap();
        let tolls = s.index_of("tolls_amount").unwrap();
        let extra = s.index_of("extra_charge").unwrap();
        let congestion = s.index_of("congestion_surcharge").unwrap();
        let total = s.index_of("total_amount").unwrap();
        for r in 0..df.n_rows() {
            let get = |c: usize| df.value(r, c).unwrap().as_number().unwrap();
            let expected = get(fare) + get(tip) + get(tolls) + get(extra) + get(congestion);
            assert!(
                (get(total) - expected).abs() < 0.05,
                "total must be the sum of parts"
            );
        }
    }

    #[test]
    fn durations_follow_distance_at_city_speeds() {
        let df = generate_clean(800, 5, 41);
        for r in 0..df.n_rows() {
            let distance = df.value(r, 0).unwrap().as_number().unwrap();
            let duration_h = df.value(r, 1).unwrap().as_number().unwrap() / 60.0;
            let speed = distance / duration_h.max(1e-6);
            assert!((3.0..=40.0).contains(&speed), "implausible speed {speed}");
        }
    }

    #[test]
    fn cash_trips_have_no_recorded_tip() {
        let df = generate_clean(700, 18, 43);
        let s = schema(18);
        let payment = s.index_of("payment_type").unwrap();
        let tip = s.index_of("tip_amount").unwrap();
        for r in 0..df.n_rows() {
            if df.value(r, payment).unwrap().as_text() == Some("cash") {
                assert_eq!(df.value(r, tip).unwrap().as_number(), Some(0.0));
            }
        }
    }

    #[test]
    fn reduced_dimension_generation_matches_prefix_schema() {
        for dims in [5, 10, 18] {
            let df = generate_clean(50, dims, 3);
            assert_eq!(df.schema(), &schema(dims));
            assert_eq!(df.n_rows(), 50);
        }
    }
}
