//! Airbnb New York City listings — a "dataset with ground-truth errors".
//!
//! The clean generator encodes the dependencies present in the real data:
//! coordinates and price depend on the borough (`neighbourhood_group`), the
//! neighbourhood is determined by the borough, price also depends on the room
//! type, and `reviews_per_month` tracks `number_of_reviews`. The dirty
//! generator reproduces the kinds of problems the real uncleaned file
//! contains: zero or absurd prices, `minimum_nights` in the hundreds, missing
//! review statistics, misspelled neighbourhoods and borough/neighbourhood
//! mismatches.

use super::{clamp, gaussian, weighted_choice};
use crate::errors::qwerty_typo;
use dquag_tabular::{DataFrame, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The listing schema (a curated subset of the Kaggle columns).
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::categorical("neighbourhood_group", "borough of the listing"),
        Field::categorical("neighbourhood", "neighbourhood within the borough"),
        Field::numeric("latitude", "latitude of the listing"),
        Field::numeric("longitude", "longitude of the listing"),
        Field::categorical("room_type", "entire home, private room or shared room"),
        Field::numeric("price", "nightly price in dollars"),
        Field::numeric("minimum_nights", "minimum nights per booking"),
        Field::numeric("number_of_reviews", "total number of reviews"),
        Field::numeric("reviews_per_month", "average reviews per month"),
        Field::numeric("availability_365", "days available per year"),
    ])
}

const BOROUGHS: [(&str, f64); 5] = [
    ("Manhattan", 0.40),
    ("Brooklyn", 0.38),
    ("Queens", 0.14),
    ("Bronx", 0.05),
    ("Staten Island", 0.03),
];

fn neighbourhoods(borough: &str) -> &'static [&'static str] {
    match borough {
        "Manhattan" => &[
            "Harlem",
            "Midtown",
            "East Village",
            "Upper West Side",
            "Chelsea",
        ],
        "Brooklyn" => &[
            "Williamsburg",
            "Bedford-Stuyvesant",
            "Bushwick",
            "Park Slope",
        ],
        "Queens" => &["Astoria", "Long Island City", "Flushing"],
        "Bronx" => &["Fordham", "Mott Haven"],
        _ => &["St. George", "Tompkinsville"],
    }
}

fn borough_center(borough: &str) -> (f64, f64) {
    match borough {
        "Manhattan" => (40.78, -73.97),
        "Brooklyn" => (40.65, -73.95),
        "Queens" => (40.73, -73.82),
        "Bronx" => (40.85, -73.88),
        _ => (40.58, -74.10),
    }
}

fn base_price(borough: &str, room_type: &str) -> f64 {
    let borough_factor = match borough {
        "Manhattan" => 1.6,
        "Brooklyn" => 1.1,
        "Queens" => 0.85,
        "Bronx" => 0.7,
        _ => 0.65,
    };
    let room_base = match room_type {
        "Entire home/apt" => 180.0,
        "Private room" => 80.0,
        _ => 50.0,
    };
    room_base * borough_factor
}

fn clean_row(rng: &mut StdRng) -> Vec<Value> {
    let borough = weighted_choice(rng, &BOROUGHS);
    let hood_options = neighbourhoods(borough);
    let hood = hood_options[rng.gen_range(0..hood_options.len())];
    let (lat0, lon0) = borough_center(borough);
    let latitude = lat0 + gaussian(rng, 0.02);
    let longitude = lon0 + gaussian(rng, 0.02);
    let room_type = weighted_choice(
        rng,
        &[
            ("Entire home/apt", 0.52),
            ("Private room", 0.44),
            ("Shared room", 0.04),
        ],
    );
    let price = clamp(
        base_price(borough, room_type) * (1.0 + gaussian(rng, 0.25)),
        20.0,
        900.0,
    )
    .round();
    let minimum_nights = clamp(1.0 + gaussian(rng, 2.0).abs() * 3.0, 1.0, 30.0).round();
    let number_of_reviews = clamp(gaussian(rng, 40.0).abs(), 0.0, 500.0).round();
    let reviews_per_month = clamp(number_of_reviews / 24.0 + gaussian(rng, 0.3), 0.0, 30.0);
    let availability = clamp(60.0 + gaussian(rng, 110.0).abs(), 0.0, 365.0).round();
    vec![
        Value::Text(borough.to_string()),
        Value::Text(hood.to_string()),
        Value::Number((latitude * 1e4).round() / 1e4),
        Value::Number((longitude * 1e4).round() / 1e4),
        Value::Text(room_type.to_string()),
        Value::Number(price),
        Value::Number(minimum_nights),
        Value::Number(number_of_reviews),
        Value::Number((reviews_per_month * 100.0).round() / 100.0),
        Value::Number(availability),
    ]
}

/// Generate the cleaned listings dataset.
pub fn generate_clean(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        df.push_row(clean_row(&mut rng))
            .expect("generator row matches schema");
    }
    df
}

/// Generate the uncleaned listings dataset with realistic in-situ errors.
///
/// Roughly 18% of rows carry at least one problem: zero/absurd prices,
/// extreme `minimum_nights`, missing review statistics, misspelled
/// neighbourhood names, or a borough/neighbourhood mismatch.
pub fn generate_dirty(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        let mut row = clean_row(&mut rng);
        if rng.gen_bool(0.18) {
            match rng.gen_range(0..5u8) {
                0 => {
                    // price of 0 or an absurd outlier
                    row[5] = Value::Number(if rng.gen_bool(0.5) {
                        0.0
                    } else {
                        rng.gen_range(5_000.0_f64..12_000.0).round()
                    });
                }
                1 => {
                    // minimum nights of several years
                    row[6] = Value::Number(rng.gen_range(365.0_f64..1_300.0).round());
                }
                2 => {
                    // missing review statistics
                    row[8] = Value::Null;
                    if rng.gen_bool(0.4) {
                        row[7] = Value::Null;
                    }
                }
                3 => {
                    // misspelled neighbourhood
                    if let Value::Text(name) = &row[1] {
                        row[1] = Value::Text(qwerty_typo(name, &mut rng));
                    }
                }
                _ => {
                    // borough/neighbourhood mismatch (hidden-style conflict)
                    row[0] = Value::Text("Manhattan".to_string());
                    row[1] = Value::Text("St. George".to_string());
                    row[2] = Value::Number(40.58);
                    row[3] = Value::Number(-74.10);
                }
            }
        }
        df.push_row(row).expect("generator row matches schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_respects_domain_invariants() {
        let df = generate_clean(500, 11);
        let schema = schema();
        let price = schema.index_of("price").unwrap();
        let nights = schema.index_of("minimum_nights").unwrap();
        for r in 0..df.n_rows() {
            let p = df.value(r, price).unwrap().as_number().unwrap();
            assert!((20.0..=900.0).contains(&p), "price {p}");
            let n = df.value(r, nights).unwrap().as_number().unwrap();
            assert!((1.0..=30.0).contains(&n), "minimum nights {n}");
        }
    }

    #[test]
    fn neighbourhood_is_consistent_with_borough_in_clean_data() {
        let df = generate_clean(400, 3);
        for r in 0..df.n_rows() {
            let borough = df.value(r, 0).unwrap();
            let hood = df.value(r, 1).unwrap();
            let borough = borough.as_text().unwrap();
            let hood = hood.as_text().unwrap();
            assert!(
                neighbourhoods(borough).contains(&hood),
                "{hood} is not in {borough}"
            );
        }
    }

    #[test]
    fn price_depends_on_borough_and_room_type() {
        let df = generate_clean(3000, 21);
        let mut manhattan_entire = Vec::new();
        let mut bronx_shared = Vec::new();
        for r in 0..df.n_rows() {
            let borough = df.value(r, 0).unwrap();
            let room = df.value(r, 4).unwrap();
            let price = df.value(r, 5).unwrap().as_number().unwrap();
            match (borough.as_text().unwrap(), room.as_text().unwrap()) {
                ("Manhattan", "Entire home/apt") => manhattan_entire.push(price),
                ("Bronx", "Shared room") | ("Bronx", "Private room") => bronx_shared.push(price),
                _ => {}
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&manhattan_entire) > mean(&bronx_shared) * 1.5,
            "Manhattan entire homes must be clearly pricier"
        );
    }

    #[test]
    fn dirty_data_contains_real_world_style_errors() {
        let clean = generate_clean(2000, 5);
        let dirty = generate_dirty(2000, 5);
        let price = schema().index_of("price").unwrap();
        let clean_max = (0..clean.n_rows())
            .map(|r| clean.value(r, price).unwrap().as_number().unwrap())
            .fold(0.0f64, f64::max);
        let dirty_max = (0..dirty.n_rows())
            .map(|r| dirty.value(r, price).unwrap().as_number().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        assert!(dirty_max > clean_max * 2.0, "dirty data has price outliers");
        assert!(dirty.total_missing() > 0, "dirty data has missing cells");
        assert_eq!(clean.total_missing(), 0);
    }
}
