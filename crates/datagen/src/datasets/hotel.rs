//! Hotel booking demand — a "dataset without ground-truth errors".
//!
//! Dependencies encoded: the average daily rate depends on the hotel type and
//! the season, group bookings involve several adults, babies only appear in
//! bookings that also contain adults, and the lead time is longer for resort
//! stays. The paper's hidden conflict for this dataset — a `Group` booking
//! with zero adults but babies — violates exactly those dependencies.

use super::{clamp, gaussian, weighted_choice};
use dquag_tabular::{DataFrame, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The booking schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::categorical("hotel", "City Hotel or Resort Hotel"),
        Field::numeric("lead_time", "days between booking and arrival"),
        Field::categorical("arrival_month", "month of arrival"),
        Field::numeric("stays_weekend_nights", "weekend nights booked"),
        Field::numeric("stays_week_nights", "week nights booked"),
        Field::numeric("adults", "number of adults"),
        Field::numeric("children", "number of children"),
        Field::numeric("babies", "number of babies"),
        Field::categorical("meal", "meal package"),
        Field::categorical(
            "customer_type",
            "Transient, Contract, Group or Transient-Party",
        ),
        Field::numeric("adr", "average daily rate in euros"),
        Field::numeric("required_car_parking_spaces", "parking spaces requested"),
        Field::categorical("is_repeated_guest", "whether the guest stayed before"),
    ])
}

const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

fn month_season_factor(month: &str) -> f64 {
    match month {
        "July" | "August" => 1.45,
        "May" | "June" | "September" => 1.2,
        "December" => 1.1,
        "January" | "February" | "November" => 0.8,
        _ => 1.0,
    }
}

fn clean_row(rng: &mut StdRng) -> Vec<Value> {
    let hotel = weighted_choice(rng, &[("City Hotel", 0.66), ("Resort Hotel", 0.34)]);
    let month = MONTHS[rng.gen_range(0..MONTHS.len())];
    let customer_type = weighted_choice(
        rng,
        &[
            ("Transient", 0.75),
            ("Transient-Party", 0.17),
            ("Contract", 0.05),
            ("Group", 0.03),
        ],
    );
    let adults = match customer_type {
        "Group" => clamp(4.0 + gaussian(rng, 3.0).abs(), 2.0, 20.0).round(),
        _ => clamp(1.0 + gaussian(rng, 0.9).abs(), 1.0, 4.0).round(),
    };
    let children = if rng.gen_bool(0.12) {
        clamp(1.0 + gaussian(rng, 1.0).abs(), 1.0, 3.0).round()
    } else {
        0.0
    };
    let babies = if adults >= 1.0 && rng.gen_bool(0.05) {
        if rng.gen_bool(0.15) {
            2.0
        } else {
            1.0
        }
    } else {
        0.0
    };
    let lead_time = if hotel == "Resort Hotel" {
        clamp(30.0 + gaussian(rng, 80.0).abs(), 0.0, 500.0).round()
    } else {
        clamp(10.0 + gaussian(rng, 55.0).abs(), 0.0, 400.0).round()
    };
    let weekend_nights = clamp(gaussian(rng, 1.2).abs(), 0.0, 6.0).round();
    let week_nights = clamp(1.0 + gaussian(rng, 2.0).abs(), 0.0, 12.0).round();
    let base_rate = if hotel == "City Hotel" { 105.0 } else { 90.0 };
    let adr = clamp(
        base_rate * month_season_factor(month) * (1.0 + gaussian(rng, 0.18))
            + 12.0 * children
            + 6.0 * babies,
        25.0,
        400.0,
    );
    let meal = weighted_choice(
        rng,
        &[("BB", 0.77), ("HB", 0.12), ("SC", 0.08), ("FB", 0.03)],
    );
    let parking = if rng.gen_bool(0.06) { 1.0 } else { 0.0 };
    let repeated = if rng.gen_bool(0.04) { "yes" } else { "no" };
    vec![
        Value::Text(hotel.to_string()),
        Value::Number(lead_time),
        Value::Text(month.to_string()),
        Value::Number(weekend_nights),
        Value::Number(week_nights),
        Value::Number(adults),
        Value::Number(children),
        Value::Number(babies),
        Value::Text(meal.to_string()),
        Value::Text(customer_type.to_string()),
        Value::Number((adr * 100.0).round() / 100.0),
        Value::Number(parking),
        Value::Text(repeated.to_string()),
    ]
}

/// Generate a clean booking dataset.
pub fn generate_clean(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        df.push_row(clean_row(&mut rng))
            .expect("generator row matches schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_bookings_never_contain_the_group_conflict() {
        let df = generate_clean(2000, 51);
        let s = schema();
        let ct = s.index_of("customer_type").unwrap();
        let adults = s.index_of("adults").unwrap();
        let babies = s.index_of("babies").unwrap();
        for r in 0..df.n_rows() {
            let is_group = df.value(r, ct).unwrap().as_text() == Some("Group");
            let a = df.value(r, adults).unwrap().as_number().unwrap();
            let b = df.value(r, babies).unwrap().as_number().unwrap();
            if is_group {
                assert!(a >= 2.0, "group bookings involve several adults");
            }
            if b > 0.0 {
                assert!(a >= 1.0, "babies never travel without adults");
            }
        }
    }

    #[test]
    fn rates_follow_season_in_clean_data() {
        let df = generate_clean(5000, 53);
        let s = schema();
        let month = s.index_of("arrival_month").unwrap();
        let adr = s.index_of("adr").unwrap();
        let mut august = Vec::new();
        let mut january = Vec::new();
        for r in 0..df.n_rows() {
            let m = df.value(r, month).unwrap();
            let rate = df.value(r, adr).unwrap().as_number().unwrap();
            match m.as_text().unwrap() {
                "August" => august.push(rate),
                "January" => january.push(rate),
                _ => {}
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&august) > mean(&january) * 1.2,
            "summer rates are higher"
        );
    }

    #[test]
    fn adults_and_lead_time_stay_in_domain() {
        let df = generate_clean(800, 57);
        let s = schema();
        let adults = s.index_of("adults").unwrap();
        let lead = s.index_of("lead_time").unwrap();
        for r in 0..df.n_rows() {
            let a = df.value(r, adults).unwrap().as_number().unwrap();
            assert!((1.0..=20.0).contains(&a));
            let l = df.value(r, lead).unwrap().as_number().unwrap();
            assert!((0.0..=500.0).contains(&l));
        }
    }
}
