//! Chicago Divvy bicycle-sharing trips — a "dataset with ground-truth errors".
//!
//! Dependencies encoded by the clean generator: trip duration tracks
//! distance, average speed stays in a plausible range, weather events are
//! consistent with the temperature, and subscriber birth years fall in a
//! sensible interval. The dirty generator reproduces the real file's
//! problems: negative or day-long durations, birth years in the 1880s,
//! missing gender, weather typos and duration/distance combinations that are
//! physically impossible.

use super::{clamp, gaussian, weighted_choice};
use crate::errors::qwerty_typo;
use dquag_tabular::{DataFrame, Field, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The trip schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        Field::numeric("trip_duration_seconds", "trip duration in seconds"),
        Field::numeric("distance_km", "trip distance in kilometres"),
        Field::numeric("start_hour", "hour of day the trip started"),
        Field::categorical("start_station", "station where the trip started"),
        Field::categorical("end_station", "station where the trip ended"),
        Field::categorical("usertype", "Subscriber or Customer"),
        Field::categorical("gender", "rider gender (subscribers only)"),
        Field::numeric("birthyear", "rider birth year"),
        Field::numeric("temperature_c", "temperature during the trip"),
        Field::categorical("events", "weather events during the trip"),
    ])
}

const STATIONS: [&str; 8] = [
    "Clark St & Elm St",
    "Canal St & Adams St",
    "Streeter Dr & Grand Ave",
    "Michigan Ave & Oak St",
    "Theater on the Lake",
    "Lake Shore Dr & Monroe St",
    "Wells St & Concord Ln",
    "Clinton St & Washington Blvd",
];

fn clean_row(rng: &mut StdRng) -> Vec<Value> {
    let distance_km = clamp(0.5 + gaussian(rng, 1.8).abs(), 0.3, 15.0);
    // average speed between 8 and 20 km/h, with mild multiplicative timing noise
    let speed = rng.gen_range(8.0..20.0);
    let duration = clamp(
        distance_km / speed * 3600.0 * (1.0 + gaussian(rng, 0.04)),
        60.0,
        7200.0,
    );
    let start_hour = clamp(8.0 + gaussian(rng, 4.5), 0.0, 23.0).round();
    let start = STATIONS[rng.gen_range(0..STATIONS.len())];
    let mut end = STATIONS[rng.gen_range(0..STATIONS.len())];
    if end == start {
        end = STATIONS[(rng.gen_range(0..STATIONS.len()) + 1) % STATIONS.len()];
    }
    let usertype = weighted_choice(rng, &[("Subscriber", 0.77), ("Customer", 0.23)]);
    let gender = if usertype == "Subscriber" {
        weighted_choice(rng, &[("Male", 0.62), ("Female", 0.38)])
    } else {
        "Unknown"
    };
    let birthyear = clamp(1985.0 + gaussian(rng, 10.0), 1945.0, 2004.0).round();
    let temperature = clamp(12.0 + gaussian(rng, 10.0), -15.0, 36.0);
    let events = if temperature < 0.0 {
        weighted_choice(rng, &[("snow", 0.6), ("cloudy", 0.3), ("clear", 0.1)])
    } else if temperature < 12.0 {
        weighted_choice(rng, &[("rain", 0.35), ("cloudy", 0.40), ("clear", 0.25)])
    } else {
        weighted_choice(rng, &[("clear", 0.6), ("cloudy", 0.3), ("rain", 0.1)])
    };
    vec![
        Value::Number(duration.round()),
        Value::Number((distance_km * 100.0).round() / 100.0),
        Value::Number(start_hour),
        Value::Text(start.to_string()),
        Value::Text(end.to_string()),
        Value::Text(usertype.to_string()),
        Value::Text(gender.to_string()),
        Value::Number(birthyear),
        Value::Number((temperature * 10.0).round() / 10.0),
        Value::Text(events.to_string()),
    ]
}

/// Generate the cleaned trips dataset.
pub fn generate_clean(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        df.push_row(clean_row(&mut rng))
            .expect("generator row matches schema");
    }
    df
}

/// Generate the uncleaned trips dataset with realistic in-situ errors
/// (roughly 22% of rows affected).
pub fn generate_dirty(n_rows: usize, seed: u64) -> DataFrame {
    let mut rng = crate::rng(seed);
    let mut df = DataFrame::with_capacity(schema(), n_rows);
    for _ in 0..n_rows {
        let mut row = clean_row(&mut rng);
        if rng.gen_bool(0.22) {
            match rng.gen_range(0..5u8) {
                0 => {
                    // negative or multi-day duration from clock glitches
                    row[0] = Value::Number(if rng.gen_bool(0.5) {
                        -rng.gen_range(60.0_f64..3_000.0).round()
                    } else {
                        rng.gen_range(90_000.0_f64..400_000.0).round()
                    });
                }
                1 => {
                    // impossible birth year
                    row[7] = Value::Number(rng.gen_range(1880.0_f64..1910.0).round());
                }
                2 => {
                    // missing gender and birth year
                    row[6] = Value::Null;
                    if rng.gen_bool(0.5) {
                        row[7] = Value::Null;
                    }
                }
                3 => {
                    // weather event typo
                    if let Value::Text(e) = &row[9] {
                        row[9] = Value::Text(qwerty_typo(e, &mut rng));
                    }
                }
                _ => {
                    // physically impossible distance/duration combination
                    row[1] = Value::Number(rng.gen_range(40.0..120.0));
                    row[0] = Value::Number(rng.gen_range(90.0..240.0));
                }
            }
        }
        df.push_row(row).expect("generator row matches schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trips_have_plausible_speed_and_years() {
        let df = generate_clean(800, 13);
        for r in 0..df.n_rows() {
            let duration = df.value(r, 0).unwrap().as_number().unwrap();
            let distance = df.value(r, 1).unwrap().as_number().unwrap();
            assert!(duration > 0.0);
            let speed_kmh = distance / (duration / 3600.0);
            assert!(
                (1.0..=30.0).contains(&speed_kmh),
                "implausible speed {speed_kmh}"
            );
            let birthyear = df.value(r, 7).unwrap().as_number().unwrap();
            assert!((1945.0..=2004.0).contains(&birthyear));
        }
    }

    #[test]
    fn weather_is_consistent_with_temperature_in_clean_data() {
        let df = generate_clean(2000, 17);
        for r in 0..df.n_rows() {
            let temp = df.value(r, 8).unwrap().as_number().unwrap();
            let events = df.value(r, 9).unwrap();
            if events.as_text() == Some("snow") {
                assert!(temp < 0.5, "snow at {temp}°C");
            }
        }
    }

    #[test]
    fn dirty_trips_contain_negative_durations_and_old_birthyears() {
        let df = generate_dirty(3000, 19);
        let mut negative_duration = false;
        let mut ancient_rider = false;
        for r in 0..df.n_rows() {
            if let Some(d) = df.value(r, 0).unwrap().as_number() {
                if d < 0.0 {
                    negative_duration = true;
                }
            }
            if let Some(y) = df.value(r, 7).unwrap().as_number() {
                if y < 1920.0 {
                    ancient_rider = true;
                }
            }
        }
        assert!(
            negative_duration,
            "dirty data should contain negative durations"
        );
        assert!(
            ancient_rider,
            "dirty data should contain impossible birth years"
        );
        assert!(df.total_missing() > 0);
    }
}
