//! Error injection — §4.1.2 of the paper.
//!
//! Three **ordinary errors** affect 20% of the values of three selected
//! attributes:
//!
//! * *missing values* — cells emptied, as happens with collection or
//!   integration failures;
//! * *numeric anomalies* — out-of-range values produced by sensor or scaling
//!   faults;
//! * *string typos* — letters replaced by neighbouring keys on a QWERTY
//!   keyboard.
//!
//! Two kinds of **hidden errors** create logically impossible combinations
//! across attributes: the Credit Card conflicts (employment before birth;
//! high education and advanced occupation with an implausibly low income) and
//! the Hotel Booking conflict (a `Group` booking with zero adults but
//! babies).

use dquag_tabular::{DataFrame, DataType, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Fraction of values corrupted by ordinary-error injection in the paper.
pub const PAPER_ERROR_RATE: f64 = 0.20;

/// The three ordinary error types of §4.1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrdinaryError {
    /// Empty cells.
    MissingValues,
    /// Out-of-range numeric values.
    NumericAnomalies,
    /// QWERTY-neighbour typos in categorical values.
    StringTypos,
}

impl OrdinaryError {
    /// All ordinary error types.
    pub const ALL: [OrdinaryError; 3] = [
        OrdinaryError::MissingValues,
        OrdinaryError::NumericAnomalies,
        OrdinaryError::StringTypos,
    ];

    /// Short label used in experiment tables (`N`, `S`, `M` in Table 1).
    pub fn label(&self) -> &'static str {
        match self {
            OrdinaryError::MissingValues => "M",
            OrdinaryError::NumericAnomalies => "N",
            OrdinaryError::StringTypos => "S",
        }
    }
}

/// The hidden (cross-attribute) conflicts used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HiddenError {
    /// Credit Card conflict 1: `DAYS_EMPLOYED` exceeds `DAYS_BIRTH`, implying
    /// employment before birth.
    CreditEmploymentBeforeBirth,
    /// Credit Card conflict 2: high education and an advanced occupation
    /// combined with an extremely low `AMT_INCOME_TOTAL`.
    CreditIncomeEducationMismatch,
    /// Hotel Booking conflict: `customer_type = "Group"` with zero `adults`
    /// and more than zero `babies`.
    HotelGroupWithoutAdults,
}

impl HiddenError {
    /// Human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            HiddenError::CreditEmploymentBeforeBirth => "Conflicts-1",
            HiddenError::CreditIncomeEducationMismatch => "Conflicts-2",
            HiddenError::HotelGroupWithoutAdults => "Conflicts",
        }
    }
}

/// What an injection pass actually touched — used as ground truth when
/// scoring instance-level detection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Rows that received at least one corrupted cell.
    pub affected_rows: Vec<usize>,
    /// Every corrupted `(row, column)` cell.
    pub affected_cells: Vec<(usize, usize)>,
}

impl InjectionReport {
    /// Number of corrupted rows.
    pub fn n_rows(&self) -> usize {
        self.affected_rows.len()
    }

    /// Number of corrupted cells.
    pub fn n_cells(&self) -> usize {
        self.affected_cells.len()
    }

    fn record(&mut self, row: usize, col: usize) {
        if self.affected_rows.last() != Some(&row) && !self.affected_rows.contains(&row) {
            self.affected_rows.push(row);
        }
        self.affected_cells.push((row, col));
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: InjectionReport) {
        for (row, col) in other.affected_cells {
            self.record(row, col);
        }
    }
}

/// Inject one ordinary error type into `fraction` of the values of the given
/// columns. Columns whose type does not match the error (e.g. typos on a
/// numeric column) are skipped, mirroring how the paper picks three suitable
/// attributes per dataset.
pub fn inject_ordinary(
    df: &mut DataFrame,
    error: OrdinaryError,
    columns: &[usize],
    fraction: f64,
    rng: &mut StdRng,
) -> InjectionReport {
    let mut report = InjectionReport::default();
    let fields: Vec<DataType> = df.schema().fields().iter().map(|f| f.dtype).collect();
    for &col in columns {
        let Some(&dtype) = fields.get(col) else {
            continue;
        };
        let applicable = match error {
            OrdinaryError::MissingValues => true,
            OrdinaryError::NumericAnomalies => dtype == DataType::Numeric,
            OrdinaryError::StringTypos => dtype == DataType::Categorical,
        };
        if !applicable {
            continue;
        }
        // Column-level scale used to construct out-of-range anomalies.
        let (col_min, col_max) = numeric_range(df, col);
        for row in 0..df.n_rows() {
            if !rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                continue;
            }
            let current = df.value(row, col).expect("row/col in range");
            let corrupted = match error {
                OrdinaryError::MissingValues => Some(Value::Null),
                OrdinaryError::NumericAnomalies => match current {
                    Value::Number(_) | Value::Null => {
                        Some(Value::Number(anomalous_value(col_min, col_max, rng)))
                    }
                    Value::Text(_) => None,
                },
                OrdinaryError::StringTypos => match current {
                    Value::Text(s) if !s.is_empty() => Some(Value::Text(qwerty_typo(&s, rng))),
                    _ => None,
                },
            };
            if let Some(value) = corrupted {
                df.set_value(row, col, value)
                    .expect("type-compatible corruption");
                report.record(row, col);
            }
        }
    }
    report
}

/// Inject one hidden conflict into `fraction` of the rows. The dataframe must
/// contain the columns the conflict involves (it is a usage error otherwise,
/// reported through a panic naming the missing column).
pub fn inject_hidden(
    df: &mut DataFrame,
    error: HiddenError,
    fraction: f64,
    rng: &mut StdRng,
) -> InjectionReport {
    let col = |name: &str| {
        df.schema()
            .index_of(name)
            .unwrap_or_else(|| panic!("hidden-error injection requires column `{name}`"))
    };
    let mut report = InjectionReport::default();
    match error {
        HiddenError::CreditEmploymentBeforeBirth => {
            let days_birth = col("DAYS_BIRTH");
            let days_employed = col("DAYS_EMPLOYED");
            for row in 0..df.n_rows() {
                if !rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                let birth = df
                    .value(row, days_birth)
                    .expect("row in range")
                    .as_number()
                    .unwrap_or(-12_000.0);
                // Employment started before birth: even more negative than DAYS_BIRTH.
                let employed = birth - rng.gen_range(500.0..6_000.0);
                df.set_value(row, days_employed, Value::Number(employed))
                    .expect("numeric column");
                report.record(row, days_employed);
                report.record(row, days_birth);
            }
        }
        HiddenError::CreditIncomeEducationMismatch => {
            let income = col("AMT_INCOME_TOTAL");
            let education = col("NAME_EDUCATION_TYPE");
            let occupation = col("OCCUPATION_TYPE");
            for row in 0..df.n_rows() {
                if !rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                df.set_value(row, education, Value::Text("Academic degree".into()))
                    .expect("categorical column");
                df.set_value(row, occupation, Value::Text("Managers".into()))
                    .expect("categorical column");
                df.set_value(row, income, Value::Number(rng.gen_range(1_000.0..4_000.0)))
                    .expect("numeric column");
                report.record(row, income);
                report.record(row, education);
                report.record(row, occupation);
            }
        }
        HiddenError::HotelGroupWithoutAdults => {
            let customer_type = col("customer_type");
            let adults = col("adults");
            let babies = col("babies");
            for row in 0..df.n_rows() {
                if !rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    continue;
                }
                df.set_value(row, customer_type, Value::Text("Group".into()))
                    .expect("categorical column");
                df.set_value(row, adults, Value::Number(0.0))
                    .expect("numeric column");
                // The baby count itself stays inside the clean per-column range
                // (1 or 2); only the combination with `Group` and zero adults is
                // impossible, which is what makes this a *hidden* error.
                df.set_value(row, babies, Value::Number(rng.gen_range(1..=2) as f64))
                    .expect("numeric column");
                report.record(row, customer_type);
                report.record(row, adults);
                report.record(row, babies);
            }
        }
    }
    report
}

/// Replace each alphabetic character with probability ~1/3 by a neighbouring
/// key on a QWERTY keyboard (at least one character is always replaced).
pub fn qwerty_typo(text: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = text.chars().collect();
    let letter_positions: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_ascii_alphabetic())
        .map(|(i, _)| i)
        .collect();
    if letter_positions.is_empty() {
        // Nothing typable: append a stray character instead.
        return format!("{text}x");
    }
    let forced = letter_positions[rng.gen_range(0..letter_positions.len())];
    let mut out = String::with_capacity(text.len());
    for (i, &c) in chars.iter().enumerate() {
        let mutate = i == forced || (c.is_ascii_alphabetic() && rng.gen_bool(0.15));
        if mutate {
            out.push(qwerty_neighbor(c, rng));
        } else {
            out.push(c);
        }
    }
    out
}

/// A random QWERTY neighbour of `c`, preserving case.
fn qwerty_neighbor(c: char, rng: &mut StdRng) -> char {
    const NEIGHBORS: [(&str, &str); 26] = [
        ("a", "qwsz"),
        ("b", "vghn"),
        ("c", "xdfv"),
        ("d", "serfcx"),
        ("e", "wsdr"),
        ("f", "drtgvc"),
        ("g", "ftyhbv"),
        ("h", "gyujnb"),
        ("i", "ujko"),
        ("j", "huikmn"),
        ("k", "jiolm"),
        ("l", "kop"),
        ("m", "njk"),
        ("n", "bhjm"),
        ("o", "iklp"),
        ("p", "ol"),
        ("q", "wa"),
        ("r", "edft"),
        ("s", "awedxz"),
        ("t", "rfgy"),
        ("u", "yhji"),
        ("v", "cfgb"),
        ("w", "qase"),
        ("x", "zsdc"),
        ("y", "tghu"),
        ("z", "asx"),
    ];
    let lower = c.to_ascii_lowercase();
    let Some((_, neighbors)) = NEIGHBORS.iter().find(|(k, _)| k.starts_with(lower)) else {
        return c;
    };
    let bytes = neighbors.as_bytes();
    let pick = bytes[rng.gen_range(0..bytes.len())] as char;
    if c.is_ascii_uppercase() {
        pick.to_ascii_uppercase()
    } else {
        pick
    }
}

/// Min and max of a numeric column (ignoring missing values); `(0, 1)` when
/// the column is categorical or empty.
fn numeric_range(df: &DataFrame, col: usize) -> (f64, f64) {
    let column = df.column(col).expect("column in range");
    match column.numeric_values() {
        Some(values) => {
            let present: Vec<f64> = values.iter().flatten().copied().collect();
            if present.is_empty() {
                (0.0, 1.0)
            } else {
                (
                    present.iter().copied().fold(f64::INFINITY, f64::min),
                    present.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            }
        }
        None => (0.0, 1.0),
    }
}

/// An out-of-range value well outside `[min, max]`, in either direction —
/// the "sensor malfunction or scaling issue" of the paper.
fn anomalous_value(min: f64, max: f64, rng: &mut StdRng) -> f64 {
    let span = (max - min).abs().max(1.0);
    if rng.gen_bool(0.5) {
        max + span * rng.gen_range(3.0..15.0)
    } else {
        min - span * rng.gen_range(3.0..15.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dquag_tabular::{Field, Schema};

    fn frame(n: usize) -> DataFrame {
        let schema = Schema::new(vec![
            Field::numeric("amount", "amount"),
            Field::categorical("city", "city"),
            Field::numeric("age", "age"),
        ]);
        let mut df = DataFrame::new(schema);
        for i in 0..n {
            df.push_row(vec![
                Value::Number(100.0 + i as f64),
                Value::Text(if i % 2 == 0 { "Paris" } else { "London" }.into()),
                Value::Number(20.0 + (i % 50) as f64),
            ])
            .unwrap();
        }
        df
    }

    fn credit_frame(n: usize) -> DataFrame {
        let schema = Schema::new(vec![
            Field::numeric("DAYS_BIRTH", "days since birth (negative)"),
            Field::numeric("DAYS_EMPLOYED", "days since employment start (negative)"),
            Field::numeric("AMT_INCOME_TOTAL", "annual income"),
            Field::categorical("NAME_EDUCATION_TYPE", "education level"),
            Field::categorical("OCCUPATION_TYPE", "occupation"),
        ]);
        let mut df = DataFrame::new(schema);
        for i in 0..n {
            df.push_row(vec![
                Value::Number(-15_000.0 - i as f64),
                Value::Number(-3_000.0 - i as f64),
                Value::Number(150_000.0),
                Value::Text("Higher education".into()),
                Value::Text("Managers".into()),
            ])
            .unwrap();
        }
        df
    }

    #[test]
    fn missing_value_injection_hits_roughly_the_requested_fraction() {
        let mut df = frame(1000);
        let mut rng = crate::rng(1);
        let report = inject_ordinary(
            &mut df,
            OrdinaryError::MissingValues,
            &[0, 1],
            0.2,
            &mut rng,
        );
        let rate = report.n_cells() as f64 / (2.0 * 1000.0);
        assert!((rate - 0.2).abs() < 0.05, "rate {rate}");
        assert_eq!(df.total_missing(), report.n_cells());
        assert!(report.n_rows() > 0);
    }

    #[test]
    fn numeric_anomalies_fall_outside_the_clean_range() {
        let mut df = frame(400);
        let mut rng = crate::rng(2);
        let report = inject_ordinary(
            &mut df,
            OrdinaryError::NumericAnomalies,
            &[0],
            0.3,
            &mut rng,
        );
        assert!(report.n_cells() > 50);
        for &(row, col) in &report.affected_cells {
            let v = df.value(row, col).unwrap().as_number().unwrap();
            assert!(
                !(100.0..=500.0).contains(&v),
                "anomaly {v} should be outside the clean range"
            );
        }
    }

    #[test]
    fn numeric_anomalies_skip_categorical_columns() {
        let mut df = frame(50);
        let mut rng = crate::rng(3);
        let report = inject_ordinary(
            &mut df,
            OrdinaryError::NumericAnomalies,
            &[1],
            1.0,
            &mut rng,
        );
        assert_eq!(report.n_cells(), 0);
    }

    #[test]
    fn typos_change_text_and_skip_numeric_columns() {
        let mut df = frame(200);
        let mut rng = crate::rng(4);
        let report = inject_ordinary(&mut df, OrdinaryError::StringTypos, &[0, 1], 0.5, &mut rng);
        assert!(report.n_cells() > 30);
        for &(row, col) in &report.affected_cells {
            assert_eq!(col, 1, "typos only in the categorical column");
            let v = df.value(row, col).unwrap();
            let text = v.as_text().unwrap();
            assert!(
                !text.is_empty(),
                "typos must keep the cell a non-empty string"
            );
        }
        // at least one value actually differs from the originals
        let changed = report.affected_cells.iter().any(|&(row, col)| {
            let t = df.value(row, col).unwrap();
            t.as_text()
                .map(|s| s != "Paris" && s != "London")
                .unwrap_or(false)
        });
        assert!(changed);
    }

    #[test]
    fn qwerty_typo_always_changes_something() {
        let mut rng = crate::rng(5);
        for word in ["Paris", "a", "Entire home/apt", "X"] {
            let typo = qwerty_typo(word, &mut rng);
            assert_ne!(typo, word, "typo must differ for {word}");
            assert_eq!(typo.chars().count(), word.chars().count().max(1));
        }
        assert_eq!(qwerty_typo("123", &mut rng), "123x");
    }

    #[test]
    fn qwerty_neighbors_preserve_case() {
        let mut rng = crate::rng(6);
        let upper = qwerty_neighbor('A', &mut rng);
        assert!(upper.is_ascii_uppercase());
        let lower = qwerty_neighbor('k', &mut rng);
        assert!(lower.is_ascii_lowercase());
        assert_eq!(qwerty_neighbor('é', &mut rng), 'é');
    }

    #[test]
    fn credit_conflict_one_puts_employment_before_birth() {
        let mut df = credit_frame(300);
        let mut rng = crate::rng(7);
        let report = inject_hidden(
            &mut df,
            HiddenError::CreditEmploymentBeforeBirth,
            0.3,
            &mut rng,
        );
        assert!(report.n_rows() > 40);
        for &row in &report.affected_rows {
            let birth = df.value(row, 0).unwrap().as_number().unwrap();
            let employed = df.value(row, 1).unwrap().as_number().unwrap();
            assert!(
                employed < birth,
                "employment ({employed}) must precede birth ({birth})"
            );
        }
    }

    #[test]
    fn credit_conflict_two_creates_income_mismatch() {
        let mut df = credit_frame(200);
        let mut rng = crate::rng(8);
        let report = inject_hidden(
            &mut df,
            HiddenError::CreditIncomeEducationMismatch,
            0.25,
            &mut rng,
        );
        for &row in &report.affected_rows {
            let income = df.value(row, 2).unwrap().as_number().unwrap();
            assert!(income < 5_000.0);
            assert_eq!(
                df.value(row, 3).unwrap(),
                Value::Text("Academic degree".into())
            );
        }
    }

    #[test]
    fn hotel_conflict_creates_impossible_group_bookings() {
        let schema = Schema::new(vec![
            Field::categorical("customer_type", "type of booking"),
            Field::numeric("adults", "number of adults"),
            Field::numeric("babies", "number of babies"),
        ]);
        let mut df = DataFrame::new(schema);
        for _ in 0..150 {
            df.push_row(vec![
                Value::Text("Transient".into()),
                Value::Number(2.0),
                Value::Number(0.0),
            ])
            .unwrap();
        }
        let mut rng = crate::rng(9);
        let report = inject_hidden(&mut df, HiddenError::HotelGroupWithoutAdults, 0.2, &mut rng);
        assert!(report.n_rows() > 10);
        for &row in &report.affected_rows {
            assert_eq!(df.value(row, 0).unwrap(), Value::Text("Group".into()));
            assert_eq!(df.value(row, 1).unwrap(), Value::Number(0.0));
            assert!(df.value(row, 2).unwrap().as_number().unwrap() >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "requires column")]
    fn hidden_injection_panics_on_missing_columns() {
        let mut df = frame(10);
        let mut rng = crate::rng(10);
        inject_hidden(&mut df, HiddenError::HotelGroupWithoutAdults, 0.5, &mut rng);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(OrdinaryError::MissingValues.label(), "M");
        assert_eq!(OrdinaryError::NumericAnomalies.label(), "N");
        assert_eq!(OrdinaryError::StringTypos.label(), "S");
        assert_eq!(
            HiddenError::CreditEmploymentBeforeBirth.label(),
            "Conflicts-1"
        );
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = InjectionReport::default();
        a.record(1, 0);
        let mut b = InjectionReport::default();
        b.record(2, 1);
        b.record(1, 2);
        a.merge(b);
        assert_eq!(a.n_rows(), 2);
        assert_eq!(a.n_cells(), 3);
    }

    #[test]
    fn zero_fraction_injects_nothing() {
        let mut df = frame(100);
        let before = df.clone();
        let mut rng = crate::rng(11);
        let report = inject_ordinary(
            &mut df,
            OrdinaryError::MissingValues,
            &[0, 1, 2],
            0.0,
            &mut rng,
        );
        assert_eq!(report.n_cells(), 0);
        assert_eq!(df, before);
    }
}
