//! # dquag-datagen
//!
//! Synthetic dataset generators and error injection for the DQuaG evaluation
//! (EDBT 2025).
//!
//! The paper evaluates on six public datasets (Airbnb NYC, Chicago Divvy
//! bicycle sharing, Google Play Store apps, New York Taxi trips, Hotel
//! Bookings, Credit Card applications). Those files cannot be downloaded in
//! this environment, so each dataset is modelled by a generator that
//! reproduces its schema (the column names the paper references, e.g.
//! `DAYS_BIRTH`, `DAYS_EMPLOYED`, `customer_type`, `adults`, `babies`) and a
//! correlated generative process, so that the cross-feature dependencies the
//! GNN must learn — and the hidden conflicts the evaluation injects — exist in
//! the data. See DESIGN.md §4 for the substitution rationale.
//!
//! Two families of datasets mirror the paper's §4.1.1:
//!
//! * **Datasets with ground-truth errors** (Airbnb, Bicycle, Play Store):
//!   [`DatasetKind::generate_dirty`] produces an "uncleaned" variant carrying
//!   realistic in-situ errors (price outliers, impossible birth years,
//!   category typos, missing cells, broken duration/distance consistency).
//! * **Datasets without ground-truth errors** (NY Taxi, Hotel Booking, Credit
//!   Card): generated clean; the §4.1.2 injectors in [`errors`] corrupt them
//!   with ordinary errors (missing values, numeric anomalies, qwerty typos at
//!   20% of three selected attributes) and the paper's hidden logical
//!   conflicts.
//!
//! [`batches`] reproduces the batch protocol of §4.2: sample 10% of a dataset
//! to build 50 clean and 50 dirty test batches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batches;
pub mod datasets;
pub mod errors;

pub use batches::{make_test_batches, sample_fraction, Batch, BatchProtocol};
pub use datasets::DatasetKind;
pub use errors::{inject_hidden, inject_ordinary, HiddenError, InjectionReport, OrdinaryError};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create the deterministic RNG used throughout the generators.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
