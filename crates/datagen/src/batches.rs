//! Batch protocol of the evaluation (§4.2 of the paper).
//!
//! "We used a clean dataset, randomly sampling 10% to generate 50 batches of
//! clean data, and did the same with a dirty dataset to generate 50 batches of
//! dirty data. We then used these 100 batches to test our method and
//! baselines."

use dquag_tabular::DataFrame;
use rand::rngs::StdRng;
use rand::Rng;

/// A labelled test batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The sampled rows.
    pub data: DataFrame,
    /// Ground truth: true if the batch was drawn from the dirty dataset.
    pub is_dirty: bool,
}

/// Parameters of the batch protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchProtocol {
    /// Number of clean batches (paper: 50).
    pub n_clean: usize,
    /// Number of dirty batches (paper: 50).
    pub n_dirty: usize,
    /// Fraction of the source dataset sampled into each batch (paper: 10%).
    pub fraction: f64,
    /// Optional hard cap on rows per batch (None = no cap). Used by the
    /// sample-size experiment (Table 3), which fixes the batch size instead
    /// of the fraction.
    pub max_rows: Option<usize>,
}

impl Default for BatchProtocol {
    fn default() -> Self {
        Self {
            n_clean: 50,
            n_dirty: 50,
            fraction: 0.10,
            max_rows: None,
        }
    }
}

impl BatchProtocol {
    /// Protocol variant with a fixed number of rows per batch (Table 3).
    pub fn fixed_size(n_clean: usize, n_dirty: usize, rows: usize) -> Self {
        Self {
            n_clean,
            n_dirty,
            fraction: 1.0,
            max_rows: Some(rows),
        }
    }

    fn rows_per_batch(&self, source_rows: usize) -> usize {
        let by_fraction = ((source_rows as f64) * self.fraction).round() as usize;
        let rows = by_fraction.max(1);
        match self.max_rows {
            Some(cap) => rows.min(cap).max(1).min(source_rows.max(1)),
            None => rows.min(source_rows.max(1)),
        }
    }
}

/// Randomly sample `fraction` of the rows (with replacement-free selection).
pub fn sample_fraction(df: &DataFrame, fraction: f64, rng: &mut StdRng) -> DataFrame {
    let target = (((df.n_rows() as f64) * fraction.clamp(0.0, 1.0)).round() as usize)
        .clamp(1, df.n_rows().max(1));
    sample_rows(df, target, rng)
}

/// Randomly sample exactly `n` distinct rows (or all rows if `n` exceeds the
/// frame size).
pub fn sample_rows(df: &DataFrame, n: usize, rng: &mut StdRng) -> DataFrame {
    let n = n.min(df.n_rows());
    // partial Fisher-Yates over an index vector
    let mut indices: Vec<usize> = (0..df.n_rows()).collect();
    for i in 0..n {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(n);
    df.select_rows(&indices).expect("indices in range")
}

/// Build the 50 + 50 labelled test batches of the evaluation protocol.
pub fn make_test_batches(
    clean: &DataFrame,
    dirty: &DataFrame,
    protocol: BatchProtocol,
    rng: &mut StdRng,
) -> Vec<Batch> {
    let mut batches = Vec::with_capacity(protocol.n_clean + protocol.n_dirty);
    let clean_rows = protocol.rows_per_batch(clean.n_rows());
    for _ in 0..protocol.n_clean {
        batches.push(Batch {
            data: sample_rows(clean, clean_rows, rng),
            is_dirty: false,
        });
    }
    let dirty_rows = protocol.rows_per_batch(dirty.n_rows());
    for _ in 0..protocol.n_dirty {
        batches.push(Batch {
            data: sample_rows(dirty, dirty_rows, rng),
            is_dirty: true,
        });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use dquag_tabular::{Field, Schema, Value};

    fn frame(n: usize, offset: f64) -> DataFrame {
        let schema = Schema::new(vec![Field::numeric("x", "value")]);
        let mut df = DataFrame::new(schema);
        for i in 0..n {
            df.push_row(vec![Value::Number(offset + i as f64)]).unwrap();
        }
        df
    }

    #[test]
    fn sample_fraction_size_and_distinctness() {
        let df = frame(200, 0.0);
        let mut rng = crate::rng(1);
        let sample = sample_fraction(&df, 0.1, &mut rng);
        assert_eq!(sample.n_rows(), 20);
        let mut values: Vec<f64> = (0..sample.n_rows())
            .map(|r| sample.value(r, 0).unwrap().as_number().unwrap())
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values.dedup();
        assert_eq!(values.len(), 20, "sampling is without replacement");
    }

    #[test]
    fn sample_rows_caps_at_frame_size() {
        let df = frame(5, 0.0);
        let mut rng = crate::rng(2);
        assert_eq!(sample_rows(&df, 50, &mut rng).n_rows(), 5);
        assert_eq!(sample_rows(&df, 0, &mut rng).n_rows(), 0);
    }

    #[test]
    fn default_protocol_matches_paper() {
        let p = BatchProtocol::default();
        assert_eq!(p.n_clean, 50);
        assert_eq!(p.n_dirty, 50);
        assert!((p.fraction - 0.10).abs() < 1e-12);
    }

    #[test]
    fn make_test_batches_labels_and_counts() {
        let clean = frame(300, 0.0);
        let dirty = frame(300, 10_000.0);
        let mut rng = crate::rng(3);
        let batches = make_test_batches(&clean, &dirty, BatchProtocol::default(), &mut rng);
        assert_eq!(batches.len(), 100);
        assert_eq!(batches.iter().filter(|b| b.is_dirty).count(), 50);
        for b in &batches {
            assert_eq!(b.data.n_rows(), 30);
            let first = b.data.value(0, 0).unwrap().as_number().unwrap();
            if b.is_dirty {
                assert!(first >= 10_000.0);
            } else {
                assert!(first < 10_000.0);
            }
        }
    }

    #[test]
    fn fixed_size_protocol_caps_rows() {
        let clean = frame(500, 0.0);
        let dirty = frame(500, 1.0);
        let mut rng = crate::rng(4);
        let protocol = BatchProtocol::fixed_size(3, 3, 20);
        let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
        assert_eq!(batches.len(), 6);
        assert!(batches.iter().all(|b| b.data.n_rows() == 20));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let df = frame(100, 0.0);
        let a = sample_rows(&df, 10, &mut crate::rng(7));
        let b = sample_rows(&df, 10, &mut crate::rng(7));
        let c = sample_rows(&df, 10, &mut crate::rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
