//! # dquag-bench
//!
//! Experiment harnesses that regenerate every table and figure of the paper's
//! evaluation (§4), plus shared plumbing for the Criterion micro-benchmarks.
//!
//! Each experiment lives in [`experiments`] and is exposed both as a library
//! function (returning structured rows, so the integration tests can assert
//! on the *shape* of the results) and as a binary that prints the same rows
//! the paper reports:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — accuracy/recall of synthetic-error detection (Hotel Booking, Credit Card) |
//! | `table2` | Table 2 — encoder-architecture comparison (difference in % flagged) |
//! | `table3` | Table 3 — accuracy vs validation sample size |
//! | `figure3` | Figure 3 — accuracy on datasets with real-world errors (Airbnb, Bicycle, App) |
//! | `figure4` | Figure 4 — validation time vs data size and dimensionality (NY Taxi) |
//! | `repair_eval` | §4.6 — error rate before/after repair |
//! | `ablations` | DESIGN.md ablations — feature graph, weighted loss, threshold |
//! | `reproduce_all` | all of the above, in sequence |
//!
//! Every binary accepts `--full` (or `DQUAG_SCALE=full`) to run at a scale
//! closer to the paper's; the default `quick` scale exercises the same code
//! paths in a few minutes on a laptop. `--smoke` shrinks everything further
//! and is what the harness tests use.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod methods;
pub mod scale;

pub use dquag_validate::ValidatorKind;
pub use methods::{evaluate_method, evaluate_method_streaming, fit_validator, MethodResult};
pub use scale::Scale;

/// Render a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["Method", "Acc."],
            &[
                vec!["DQuaG".to_string(), "1.000".to_string()],
                vec!["Deequ auto".to_string(), "0.530".to_string()],
            ],
        );
        assert!(table.contains("Method"));
        assert!(table.contains("Deequ auto"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
    }
}
