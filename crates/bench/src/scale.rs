//! Experiment scales: smoke (tests), quick (default) and full (paper-like).

use dquag_core::DquagConfig;

/// How much work each experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny configuration used by the harness's own tests.
    Smoke,
    /// Default: the same protocol at laptop-friendly sizes (minutes).
    Quick,
    /// Paper-like sizes (tens of minutes on CPU).
    Full,
}

impl Scale {
    /// Resolve the scale from CLI arguments and the `DQUAG_SCALE` environment
    /// variable (`--full` / `--smoke` take precedence).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        if args.iter().any(|a| a == "--full") {
            return Scale::Full;
        }
        if args.iter().any(|a| a == "--smoke") {
            return Scale::Smoke;
        }
        match std::env::var("DQUAG_SCALE").ok().as_deref() {
            Some("full") => Scale::Full,
            Some("smoke") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Rows in each generated source dataset.
    pub fn dataset_rows(&self) -> usize {
        match self {
            Scale::Smoke => 600,
            Scale::Quick => 3_000,
            Scale::Full => 20_000,
        }
    }

    /// Number of clean (and dirty) test batches.
    pub fn n_batches_per_class(&self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Quick => 10,
            Scale::Full => 50,
        }
    }

    /// The DQuaG pipeline configuration for this scale.
    pub fn dquag_config(&self) -> DquagConfig {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let builder = match self {
            Scale::Smoke => DquagConfig::builder()
                .epochs(8)
                .batch_size(64)
                .hidden_dim(12)
                .n_layers(2),
            Scale::Quick => DquagConfig::builder()
                .epochs(15)
                .batch_size(128)
                .hidden_dim(24)
                .n_layers(4),
            Scale::Full => DquagConfig::builder().epochs(30).batch_size(128),
        };
        builder
            .validation_threads(threads)
            .build()
            .expect("scale configurations are in range")
    }

    /// Sample sizes for the Table 3 sweep.
    pub fn table3_sample_sizes(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![10, 50, 200],
            _ => vec![10, 20, 50, 100, 500, 1000],
        }
    }

    /// Row counts for the Figure 4 scalability sweep.
    pub fn figure4_row_counts(&self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![500, 1_000],
            Scale::Quick => vec![1_000, 5_000, 10_000, 20_000],
            Scale::Full => vec![10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000],
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_override_environment() {
        assert_eq!(Scale::from_args(["--full".to_string()]), Scale::Full);
        assert_eq!(Scale::from_args(["--smoke".to_string()]), Scale::Smoke);
    }

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Smoke.dataset_rows() < Scale::Quick.dataset_rows());
        assert!(Scale::Quick.dataset_rows() < Scale::Full.dataset_rows());
        assert!(
            Scale::Full.n_batches_per_class() == 50,
            "paper uses 50+50 batches"
        );
    }

    #[test]
    fn full_config_matches_paper_hyperparameters() {
        let config = Scale::Full.dquag_config();
        assert_eq!(config.model.hidden_dim, 64);
        assert_eq!(config.model.n_layers, 4);
        assert_eq!(config.batch_size, 128);
    }
}
