//! The experiment implementations, one sub-module per table/figure of the
//! paper's evaluation (§4) plus the DESIGN.md ablations.

use crate::methods::{evaluate_method, fit_validator};
use crate::render_table;
use crate::scale::Scale;
use dquag_datagen::errors::PAPER_ERROR_RATE;
use dquag_datagen::{
    inject_hidden, inject_ordinary, make_test_batches, Batch, BatchProtocol, DatasetKind,
    HiddenError, OrdinaryError,
};
use dquag_tabular::DataFrame;
use dquag_validate::{Validator, ValidatorKind};

/// Reuse the expensive pre-fitted DQuaG validator for the DQuaG rows and fit
/// the (cheap) baselines fresh.
fn prefitted_for(kind: ValidatorKind, dquag: &dyn Validator) -> Option<&dyn Validator> {
    (kind == ValidatorKind::Dquag).then_some(dquag)
}

/// Build the 50/50 (scale-dependent) labelled batch set for a clean/dirty
/// dataset pair.
fn batches_for(clean: &DataFrame, dirty: &DataFrame, scale: Scale, seed: u64) -> Vec<Batch> {
    let protocol = BatchProtocol {
        n_clean: scale.n_batches_per_class(),
        n_dirty: scale.n_batches_per_class(),
        fraction: 0.10,
        max_rows: None,
    };
    let mut rng = dquag_datagen::rng(seed);
    make_test_batches(clean, dirty, protocol, &mut rng)
}

/// A dirty copy of `clean` with one ordinary error type injected at the
/// paper's 20% rate into the dataset's standard target columns.
fn with_ordinary_error(
    clean: &DataFrame,
    kind: DatasetKind,
    error: OrdinaryError,
    seed: u64,
) -> DataFrame {
    let mut dirty = clean.clone();
    let mut rng = dquag_datagen::rng(seed);
    let columns = kind.default_ordinary_error_columns();
    inject_ordinary(&mut dirty, error, &columns, PAPER_ERROR_RATE, &mut rng);
    dirty
}

/// A dirty copy of `clean` with one hidden conflict injected at the paper's
/// 20% rate.
fn with_hidden_error(clean: &DataFrame, error: HiddenError, seed: u64) -> DataFrame {
    let mut dirty = clean.clone();
    let mut rng = dquag_datagen::rng(seed);
    inject_hidden(&mut dirty, error, PAPER_ERROR_RATE, &mut rng);
    dirty
}

// ---------------------------------------------------------------------------
// Table 1 — synthetic error detection
// ---------------------------------------------------------------------------

/// Table 1: accuracy and recall of every method on synthetic ordinary and
/// hidden errors (Hotel Booking and Credit Card).
pub mod table1 {
    use super::*;

    /// One table row.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Dataset name.
        pub dataset: &'static str,
        /// Error-type label (`N, S, M`, `Conflicts`, `Conflicts-1`, …).
        pub error_types: String,
        /// Method label.
        pub method: &'static str,
        /// Detection accuracy over the labelled batches.
        pub accuracy: f64,
        /// Detection recall over the dirty batches.
        pub recall: f64,
    }

    /// Run the experiment.
    pub fn run(scale: Scale) -> Vec<Row> {
        let mut rows = Vec::new();
        for kind in [DatasetKind::HotelBooking, DatasetKind::CreditCard] {
            let clean = kind.generate_clean(scale.dataset_rows(), 101);
            let config = scale.dquag_config();
            let dquag = fit_validator(ValidatorKind::Dquag, &clean, &config);

            // Ordinary errors: evaluate N, S, M separately and report the mean
            // (the paper's rows carry averaged values, marked with *).
            let mut per_method: Vec<(f64, f64)> = vec![(0.0, 0.0); ValidatorKind::ALL.len()];
            for (i, error) in OrdinaryError::ALL.iter().enumerate() {
                let dirty = with_ordinary_error(&clean, kind, *error, 200 + i as u64);
                let batches = batches_for(&clean, &dirty, scale, 300 + i as u64);
                for (m, method) in ValidatorKind::ALL.into_iter().enumerate() {
                    let result = evaluate_method(
                        method,
                        &clean,
                        &batches,
                        prefitted_for(method, &*dquag),
                        &config,
                    );
                    per_method[m].0 += result.accuracy();
                    per_method[m].1 += result.recall();
                }
            }
            for (m, method) in ValidatorKind::ALL.into_iter().enumerate() {
                rows.push(Row {
                    dataset: kind.name(),
                    error_types: "N, S, M".to_string(),
                    method: method.label(),
                    accuracy: per_method[m].0 / OrdinaryError::ALL.len() as f64,
                    recall: per_method[m].1 / OrdinaryError::ALL.len() as f64,
                });
            }

            // Hidden conflicts.
            let conflicts = kind.hidden_errors();
            for (i, conflict) in conflicts.iter().enumerate() {
                let label = if conflicts.len() == 1 {
                    "Conflicts".to_string()
                } else {
                    conflict.label().to_string()
                };
                let dirty = with_hidden_error(&clean, *conflict, 400 + i as u64);
                let batches = batches_for(&clean, &dirty, scale, 500 + i as u64);
                for method in ValidatorKind::ALL {
                    let result = evaluate_method(
                        method,
                        &clean,
                        &batches,
                        prefitted_for(method, &*dquag),
                        &config,
                    );
                    rows.push(Row {
                        dataset: kind.name(),
                        error_types: label.clone(),
                        method: method.label(),
                        accuracy: result.accuracy(),
                        recall: result.recall(),
                    });
                }
            }
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.error_types.clone(),
                    r.method.to_string(),
                    format!("{:.3}", r.accuracy),
                    format!("{:.3}", r.recall),
                ]
            })
            .collect();
        format!(
            "Table 1 — accuracy and recall on synthetic data errors\n{}",
            render_table(
                &["Dataset", "Error Types", "Method", "Acc.", "Recall"],
                &table_rows
            )
        )
    }
}

// ---------------------------------------------------------------------------
// Table 2 — encoder architectures
// ---------------------------------------------------------------------------

/// Table 2: difference in flagged-instance percentage between dirty and clean
/// data for the five encoder architectures.
pub mod table2 {
    use super::*;
    use dquag_gnn::EncoderKind;

    /// One table cell (dataset × encoder).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Dataset name.
        pub dataset: &'static str,
        /// Encoder label (Graph2Vec, GCN, GCN+GAT, GCN+GIN, GAT+GIN).
        pub encoder: &'static str,
        /// Difference (percentage points) between the flagged-instance rate
        /// on dirty batches and on clean batches. Higher is better.
        pub difference_pct: f64,
    }

    /// Run the experiment.
    pub fn run(scale: Scale) -> Vec<Row> {
        let mut rows = Vec::new();
        for kind in [DatasetKind::Airbnb, DatasetKind::Bicycle] {
            let clean = kind.generate_clean(scale.dataset_rows(), 111);
            let dirty = kind.generate_dirty(scale.dataset_rows(), 112);
            let batches = batches_for(&clean, &dirty, scale, 113);
            for encoder in EncoderKind::ALL {
                let config = scale.dquag_config().with_encoder(encoder);
                let validator = fit_validator(ValidatorKind::Dquag, &clean, &config);
                let mut clean_rate = 0.0;
                let mut dirty_rate = 0.0;
                let mut n_clean = 0usize;
                let mut n_dirty = 0usize;
                for batch in &batches {
                    let verdict = validator.validate(&batch.data).expect("schema matches");
                    if batch.is_dirty {
                        dirty_rate += verdict.error_rate();
                        n_dirty += 1;
                    } else {
                        clean_rate += verdict.error_rate();
                        n_clean += 1;
                    }
                }
                let difference = 100.0
                    * (dirty_rate / n_dirty.max(1) as f64 - clean_rate / n_clean.max(1) as f64);
                rows.push(Row {
                    dataset: kind.name(),
                    encoder: encoder.label(),
                    difference_pct: difference,
                });
            }
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.encoder.to_string(),
                    format!("{:+.2}", r.difference_pct),
                ]
            })
            .collect();
        format!(
            "Table 2 — difference (%) in flagged errors for clean vs. dirty data (higher is better)\n{}",
            render_table(&["Dataset", "Encoder", "Diff (%)"], &table_rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Table 3 — accuracy vs sample size
// ---------------------------------------------------------------------------

/// Table 3: DQuaG detection accuracy as a function of the validation sample
/// size, on Airbnb, Bicycle and NY Taxi.
pub mod table3 {
    use super::*;

    /// One table cell (dataset × sample size).
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Dataset name.
        pub dataset: &'static str,
        /// Number of rows per validated batch.
        pub sample_size: usize,
        /// Detection accuracy (percent).
        pub accuracy_pct: f64,
    }

    /// Run the experiment.
    pub fn run(scale: Scale) -> Vec<Row> {
        let mut rows = Vec::new();
        for kind in [
            DatasetKind::Airbnb,
            DatasetKind::Bicycle,
            DatasetKind::NyTaxi,
        ] {
            let clean = kind.generate_clean(scale.dataset_rows(), 121);
            let dirty = kind.generate_dirty(scale.dataset_rows(), 122);
            let config = scale.dquag_config();
            let validator = fit_validator(ValidatorKind::Dquag, &clean, &config);
            for &sample_size in &scale.table3_sample_sizes() {
                let protocol = BatchProtocol::fixed_size(
                    scale.n_batches_per_class(),
                    scale.n_batches_per_class(),
                    sample_size,
                );
                let mut rng = dquag_datagen::rng(123 + sample_size as u64);
                let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
                let labels: Vec<bool> = batches.iter().map(|b| b.is_dirty).collect();
                let predictions: Vec<bool> = batches
                    .iter()
                    .map(|b| {
                        validator
                            .validate(&b.data)
                            .expect("schema matches")
                            .is_dirty
                    })
                    .collect();
                let metrics =
                    dquag_core::metrics::DetectionMetrics::from_predictions(&predictions, &labels);
                rows.push(Row {
                    dataset: kind.name(),
                    sample_size,
                    accuracy_pct: metrics.accuracy() * 100.0,
                });
            }
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.sample_size.to_string(),
                    format!("{:.1}", r.accuracy_pct),
                ]
            })
            .collect();
        format!(
            "Table 3 — overall accuracy (%) for different validation sample sizes\n{}",
            render_table(&["Dataset", "Sample Size", "Accuracy (%)"], &table_rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 3 — real-world error detection
// ---------------------------------------------------------------------------

/// Figure 3: accuracy of every method on the datasets with real-world errors
/// (Airbnb, Bicycle, App).
pub mod figure3 {
    use super::*;

    /// One bar of the figure.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Dataset name.
        pub dataset: &'static str,
        /// Method label.
        pub method: &'static str,
        /// Detection accuracy.
        pub accuracy: f64,
        /// Detection recall.
        pub recall: f64,
    }

    /// Run the experiment.
    pub fn run(scale: Scale) -> Vec<Row> {
        let mut rows = Vec::new();
        for kind in DatasetKind::WITH_REAL_ERRORS {
            let clean = kind.generate_clean(scale.dataset_rows(), 131);
            let dirty = kind.generate_dirty(scale.dataset_rows(), 132);
            let config = scale.dquag_config();
            let dquag = fit_validator(ValidatorKind::Dquag, &clean, &config);
            let batches = batches_for(&clean, &dirty, scale, 133);
            for method in ValidatorKind::ALL {
                let result = evaluate_method(
                    method,
                    &clean,
                    &batches,
                    prefitted_for(method, &*dquag),
                    &config,
                );
                rows.push(Row {
                    dataset: kind.name(),
                    method: method.label(),
                    accuracy: result.accuracy(),
                    recall: result.recall(),
                });
            }
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.method.to_string(),
                    format!("{:.3}", r.accuracy),
                    format!("{:.3}", r.recall),
                ]
            })
            .collect();
        format!(
            "Figure 3 — accuracy on datasets with real-world data errors\n{}",
            render_table(&["Dataset", "Method", "Acc.", "Recall"], &table_rows)
        )
    }
}

// ---------------------------------------------------------------------------
// Figure 4 — scalability
// ---------------------------------------------------------------------------

/// Figure 4: validation wall-clock time as a function of data size and
/// dimensionality on the NY Taxi dataset.
pub mod figure4 {
    use super::*;
    use std::time::Instant;

    /// One point of the scalability curves.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Number of dataset columns.
        pub dimensions: usize,
        /// Number of validated rows.
        pub rows: usize,
        /// Wall-clock validation time in seconds.
        pub seconds: f64,
    }

    /// Run the experiment. Training happens once per dimensionality on a
    /// moderate clean set; the timed quantity is phase-2 validation only,
    /// matching the figure.
    pub fn run(scale: Scale) -> Vec<Row> {
        let mut rows = Vec::new();
        let train_rows = scale.dataset_rows().min(5_000);
        for dimensions in [5usize, 10, 18] {
            let clean =
                dquag_datagen::datasets::nytaxi::generate_clean(train_rows, dimensions, 141);
            let config = scale.dquag_config();
            let validator = fit_validator(ValidatorKind::Dquag, &clean, &config);
            for &n_rows in &scale.figure4_row_counts() {
                let data = dquag_datagen::datasets::nytaxi::generate_clean(n_rows, dimensions, 142);
                let start = Instant::now();
                let verdict = validator.validate(&data).expect("schema matches");
                let seconds = start.elapsed().as_secs_f64();
                assert_eq!(verdict.n_instances, n_rows);
                rows.push(Row {
                    dimensions,
                    rows: n_rows,
                    seconds,
                });
            }
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dimensions.to_string(),
                    r.rows.to_string(),
                    format!("{:.3}", r.seconds),
                ]
            })
            .collect();
        format!(
            "Figure 4 — data-quality validation time vs data size and dimensionality (NY Taxi)\n{}",
            render_table(&["Dimensions", "Rows", "Time (s)"], &table_rows)
        )
    }
}

// ---------------------------------------------------------------------------
// §4.6 — repair evaluation
// ---------------------------------------------------------------------------

/// §4.6: error rate of the dirty data before and after applying the repair
/// decoder's suggestions, compared with the clean data's own error rate.
pub mod repair_eval {
    use super::*;

    /// One dataset's repair summary.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Dataset name.
        pub dataset: &'static str,
        /// Flagged-instance rate of the dirty data (percent).
        pub dirty_error_rate_pct: f64,
        /// Flagged-instance rate after repair (percent).
        pub repaired_error_rate_pct: f64,
        /// Flagged-instance rate of clean data (percent), for reference.
        pub clean_error_rate_pct: f64,
        /// Whether the repaired dataset is classified as clean by DQuaG.
        pub repaired_classified_clean: bool,
    }

    /// Run the experiment — through the unified [`Validator`] trait,
    /// exercising the graded-detail path: the DQuaG backend exposes repair
    /// behind `Validator::repair`, gated by its capabilities.
    pub fn run(scale: Scale) -> Vec<Row> {
        use dquag_validate::DquagBackend;

        let mut rows = Vec::new();
        for kind in [DatasetKind::Airbnb, DatasetKind::Bicycle] {
            let clean = kind.generate_clean(scale.dataset_rows(), 151);
            let dirty = kind.generate_dirty(scale.dataset_rows() / 2, 152);
            let config = scale.dquag_config();
            // The encoder must cover the dirty batch's categories (§3.1), so
            // hand it to the backend as known future data before fitting.
            let mut validator = DquagBackend::new(config).with_future(vec![dirty.clone()]);
            validator.fit(&clean).expect("training succeeds");
            assert!(validator.capabilities().repair);

            let clean_verdict = validator
                .validate(&clean.split_at(clean.n_rows() / 2).expect("split").1)
                .expect("schema matches");
            let before = validator.validate(&dirty).expect("schema matches");
            let repaired = validator
                .repair(&dirty, &before)
                .expect("repair succeeds")
                .expect("DQuaG supports repair");
            let after = validator.validate(&repaired).expect("schema matches");
            rows.push(Row {
                dataset: kind.name(),
                dirty_error_rate_pct: before.error_rate() * 100.0,
                repaired_error_rate_pct: after.error_rate() * 100.0,
                clean_error_rate_pct: clean_verdict.error_rate() * 100.0,
                repaired_classified_clean: !after.is_dirty,
            });
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    format!("{:.2}", r.dirty_error_rate_pct),
                    format!("{:.2}", r.repaired_error_rate_pct),
                    format!("{:.2}", r.clean_error_rate_pct),
                    r.repaired_classified_clean.to_string(),
                ]
            })
            .collect();
        format!(
            "Section 4.6 — data repair evaluation (flagged-instance rates)\n{}",
            render_table(
                &[
                    "Dataset",
                    "Dirty (%)",
                    "Repaired (%)",
                    "Clean (%)",
                    "Repaired classified clean"
                ],
                &table_rows
            )
        )
    }
}

// ---------------------------------------------------------------------------
// Ablations called out in DESIGN.md
// ---------------------------------------------------------------------------

/// Design ablations: feature-graph quality, weighted validation loss and
/// threshold percentile.
pub mod ablations {
    use super::*;
    use dquag_core::DquagConfig;
    use dquag_graph::FeatureGraph;

    /// One ablation result: the dirty-minus-clean flagged-rate separation (in
    /// percentage points) achieved by a variant.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        /// Ablation family (`graph`, `weighted-loss`, `threshold`).
        pub family: &'static str,
        /// Variant label.
        pub variant: String,
        /// Separation between dirty and clean flagged rates (pp).
        pub separation_pct: f64,
    }

    fn separation(clean: &DataFrame, dirty: &DataFrame, scale: Scale, config: &DquagConfig) -> f64 {
        let validator = fit_validator(ValidatorKind::Dquag, clean, config);
        let batches = batches_for(clean, dirty, scale, 161);
        let mut clean_rate = 0.0;
        let mut dirty_rate = 0.0;
        let mut n_clean = 0usize;
        let mut n_dirty = 0usize;
        for batch in &batches {
            let verdict = validator.validate(&batch.data).expect("schema matches");
            if batch.is_dirty {
                dirty_rate += verdict.error_rate();
                n_dirty += 1;
            } else {
                clean_rate += verdict.error_rate();
                n_clean += 1;
            }
        }
        100.0 * (dirty_rate / n_dirty.max(1) as f64 - clean_rate / n_clean.max(1) as f64)
    }

    /// Run all ablations on the Credit Card dataset (the one with both hidden
    /// conflicts).
    pub fn run(scale: Scale) -> Vec<Row> {
        let kind = DatasetKind::CreditCard;
        let clean = kind.generate_clean(scale.dataset_rows(), 162);
        let dirty = kind.generate_dirty(scale.dataset_rows(), 163);
        let names: Vec<String> = clean
            .schema()
            .names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut rows = Vec::new();

        // Feature-graph quality.
        let base = scale.dquag_config();
        let graph_variants: Vec<(String, Option<FeatureGraph>)> = vec![
            ("inferred".to_string(), None),
            (
                "fully-connected".to_string(),
                Some(FeatureGraph::fully_connected(names.clone())),
            ),
            ("empty".to_string(), Some(FeatureGraph::new(names))),
        ];
        for (label, graph) in graph_variants {
            let mut config = base.clone();
            config.feature_graph_override = graph;
            rows.push(Row {
                family: "graph",
                variant: label,
                separation_pct: separation(&clean, &dirty, scale, &config),
            });
        }

        // Weighted validation loss vs plain reconstruction loss.
        for (label, sharpness) in [("weighted (paper)", 2.0f32), ("unweighted", 0.0)] {
            let mut config = base.clone();
            config.model.weight_sharpness = sharpness;
            rows.push(Row {
                family: "weighted-loss",
                variant: label.to_string(),
                separation_pct: separation(&clean, &dirty, scale, &config),
            });
        }

        // Threshold percentile.
        for percentile in [0.90f64, 0.95, 0.99] {
            let mut config = base.clone();
            config.threshold_percentile = percentile;
            rows.push(Row {
                family: "threshold",
                variant: format!("p{:02.0}", percentile * 100.0),
                separation_pct: separation(&clean, &dirty, scale, &config),
            });
        }
        rows
    }

    /// Render the rows as an aligned text table.
    pub fn render(rows: &[Row]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.family.to_string(),
                    r.variant.clone(),
                    format!("{:+.2}", r.separation_pct),
                ]
            })
            .collect();
        format!(
            "Ablations — dirty-minus-clean flagged-rate separation (percentage points)\n{}",
            render_table(&["Family", "Variant", "Separation (pp)"], &table_rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The smoke-scale experiment runs double as integration tests of the full
    // harness path; the heavier assertions on result *shape* live in the
    // workspace-level integration tests.

    #[test]
    fn figure4_smoke_scales_linearly_in_rows() {
        let rows = figure4::run(Scale::Smoke);
        assert_eq!(rows.len(), 3 * Scale::Smoke.figure4_row_counts().len());
        // within one dimensionality, more rows must not be faster by a large factor
        for dims in [5usize, 10, 18] {
            let series: Vec<&figure4::Row> = rows.iter().filter(|r| r.dimensions == dims).collect();
            assert!(series.windows(2).all(|w| w[1].rows > w[0].rows));
            assert!(series.iter().all(|r| r.seconds >= 0.0));
        }
        let text = figure4::render(&rows);
        assert!(text.contains("Dimensions"));
    }

    #[test]
    fn repair_eval_smoke_reduces_error_rate() {
        let rows = repair_eval::run(Scale::Smoke);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                row.repaired_error_rate_pct <= row.dirty_error_rate_pct + 1e-9,
                "{row:?}"
            );
        }
        assert!(repair_eval::render(&rows).contains("repair"));
    }
}
