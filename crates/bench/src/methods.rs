//! Unified interface over DQuaG and the baseline validators, evaluated with
//! the paper's batch protocol.

use dquag_baselines::BaselineKind;
use dquag_core::metrics::DetectionMetrics;
use dquag_core::{DquagConfig, DquagValidator};
use dquag_datagen::Batch;
use dquag_tabular::DataFrame;

/// A method under evaluation: DQuaG or one of the baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's contribution.
    Dquag,
    /// One of the re-implemented baselines.
    Baseline(BaselineKind),
}

impl Method {
    /// All methods in the order the paper's tables list them: baselines first,
    /// DQuaG last.
    pub fn all() -> Vec<Method> {
        let mut methods: Vec<Method> = BaselineKind::ALL.into_iter().map(Method::Baseline).collect();
        methods.push(Method::Dquag);
        methods
    }

    /// Display label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Dquag => "DQuaG",
            Method::Baseline(kind) => kind.label(),
        }
    }
}

/// Result of evaluating one method on a set of labelled batches.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// The evaluated method.
    pub method: &'static str,
    /// Confusion-matrix metrics over the batches.
    pub metrics: DetectionMetrics,
}

impl MethodResult {
    /// Accuracy, convenience accessor.
    pub fn accuracy(&self) -> f64 {
        self.metrics.accuracy()
    }

    /// Recall, convenience accessor.
    pub fn recall(&self) -> f64 {
        self.metrics.recall()
    }
}

/// Evaluate one method: fit/train on the clean reference data (the DQuaG
/// model may reuse a pre-trained validator to avoid retraining per error
/// condition) and classify every batch.
pub fn evaluate_method(
    method: Method,
    clean: &DataFrame,
    batches: &[Batch],
    trained_dquag: Option<&DquagValidator>,
    config: &DquagConfig,
) -> MethodResult {
    let labels: Vec<bool> = batches.iter().map(|b| b.is_dirty).collect();
    let predictions: Vec<bool> = match method {
        Method::Dquag => {
            let owned;
            let validator = match trained_dquag {
                Some(v) => v,
                None => {
                    owned = DquagValidator::train(clean, &[], config)
                        .expect("DQuaG training on generated clean data succeeds");
                    &owned
                }
            };
            batches
                .iter()
                .map(|b| {
                    validator
                        .validate(&b.data)
                        .expect("batch shares the training schema")
                        .dataset_is_dirty
                })
                .collect()
        }
        Method::Baseline(kind) => {
            let mut validator = kind.build();
            validator.fit(clean);
            batches
                .iter()
                .map(|b| validator.validate(&b.data).is_dirty)
                .collect()
        }
    };
    MethodResult {
        method: method.label(),
        metrics: DetectionMetrics::from_predictions(&predictions, &labels),
    }
}

/// Train a DQuaG validator once for a dataset so several error conditions can
/// reuse it (the paper trains once per dataset as well).
pub fn train_dquag(clean: &DataFrame, future: &[&DataFrame], config: &DquagConfig) -> DquagValidator {
    DquagValidator::train(clean, future, config)
        .expect("DQuaG training on generated clean data succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use dquag_datagen::{make_test_batches, BatchProtocol, DatasetKind};

    #[test]
    fn all_methods_are_listed_with_dquag_last() {
        let methods = Method::all();
        assert_eq!(methods.len(), 7);
        assert_eq!(methods.last().unwrap().label(), "DQuaG");
    }

    #[test]
    fn baseline_evaluation_produces_metrics_over_all_batches() {
        let clean = DatasetKind::CreditCard.generate_clean(800, 3);
        let dirty = DatasetKind::CreditCard.generate_dirty(800, 4);
        let mut rng = dquag_datagen::rng(5);
        let protocol = BatchProtocol {
            n_clean: 3,
            n_dirty: 3,
            fraction: 0.2,
            max_rows: None,
        };
        let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
        let result = evaluate_method(
            Method::Baseline(dquag_baselines::BaselineKind::DeequExpert),
            &clean,
            &batches,
            None,
            &Scale::Smoke.dquag_config(),
        );
        assert_eq!(result.metrics.total(), 6);
        assert!(result.accuracy() >= 0.5);
        assert!(result.recall() >= 0.5);
    }
}
