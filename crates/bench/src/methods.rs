//! Uniform evaluation of every validator backend with the paper's batch
//! protocol.
//!
//! All seven configurations (DQuaG plus the six baseline profiles) go through
//! the same [`dquag_validate::Validator`] trait: build via
//! [`build_validator`], fit on the clean reference data, judge every batch.
//! There is no per-backend dispatch here — the unified API is the whole
//! point.

use dquag_core::metrics::DetectionMetrics;
use dquag_core::DquagConfig;
use dquag_datagen::Batch;
use dquag_stream::StreamEngine;
use dquag_tabular::DataFrame;
use dquag_validate::{build_validator, Validator, ValidatorKind};

/// Result of evaluating one validator kind on a set of labelled batches.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Label of the evaluated validator.
    pub method: &'static str,
    /// Confusion-matrix metrics over the batches.
    pub metrics: DetectionMetrics,
}

impl MethodResult {
    /// Accuracy, convenience accessor.
    pub fn accuracy(&self) -> f64 {
        self.metrics.accuracy()
    }

    /// Recall, convenience accessor.
    pub fn recall(&self) -> f64 {
        self.metrics.recall()
    }
}

/// Build a validator of `kind` and fit it on the clean reference data.
///
/// Experiments that evaluate one dataset under several error conditions fit
/// expensive validators once and hand them back to [`evaluate_method`] as
/// `prefitted` (the paper trains DQuaG once per dataset as well).
pub fn fit_validator(
    kind: ValidatorKind,
    clean: &DataFrame,
    config: &DquagConfig,
) -> Box<dyn Validator> {
    let mut validator = build_validator(kind, config);
    validator
        .fit(clean)
        .expect("fitting on generated clean data succeeds");
    validator
}

/// Build the validator a spec tree declares (through the default registry)
/// and fit it on the clean reference data — [`fit_validator`] for the open
/// spec world: ensembles, drift detectors and gated pairs evaluate through
/// the same batch protocol as any single backend.
pub fn fit_spec(
    spec: &dquag_validate::ValidatorSpec,
    clean: &DataFrame,
    config: &DquagConfig,
) -> Box<dyn Validator> {
    let mut validator =
        dquag_validate::build_spec(spec, config).expect("spec resolves against the registry");
    validator
        .fit(clean)
        .expect("fitting on generated clean data succeeds");
    validator
}

/// Classify every batch with an already-fitted validator and score the
/// predictions — the common core of [`evaluate_method`] and spec-driven
/// evaluation.
pub fn evaluate_fitted(validator: &dyn Validator, batches: &[Batch]) -> DetectionMetrics {
    let labels: Vec<bool> = batches.iter().map(|b| b.is_dirty).collect();
    let predictions: Vec<bool> = batches
        .iter()
        .map(|b| {
            validator
                .validate(&b.data)
                .expect("batch shares the training schema")
                .is_dirty
        })
        .collect();
    DetectionMetrics::from_predictions(&predictions, &labels)
}

/// Evaluate one validator kind: fit on the clean reference data (or reuse
/// `prefitted`, which must be a fitted validator of the same kind) and
/// classify every batch.
pub fn evaluate_method(
    kind: ValidatorKind,
    clean: &DataFrame,
    batches: &[Batch],
    prefitted: Option<&dyn Validator>,
    config: &DquagConfig,
) -> MethodResult {
    if let Some(v) = prefitted {
        assert_eq!(
            v.name(),
            kind.label(),
            "prefitted validator must match the evaluated kind"
        );
    }
    let owned;
    let validator: &dyn Validator = match prefitted {
        Some(v) => v,
        None => {
            owned = fit_validator(kind, clean, config);
            &*owned
        }
    };
    MethodResult {
        method: kind.label(),
        metrics: evaluate_fitted(validator, batches),
    }
}

/// Evaluate one validator kind by driving every batch through the streaming
/// engine instead of the caller's thread: a producer submits the batches
/// while the engine shards them across `config.stream.replicas` fitted
/// replicas, and the re-sequenced verdict stream yields the predictions in
/// submission order.
///
/// The engine runs lossless for metric integrity (`Block` backpressure, no
/// deadline) regardless of `config.stream`'s policy; replica count and queue
/// capacity are honoured. Results are identical to [`evaluate_method`] —
/// sharding is an implementation detail the metrics cannot see.
pub fn evaluate_method_streaming(
    kind: ValidatorKind,
    clean: &DataFrame,
    batches: &[Batch],
    config: &DquagConfig,
) -> MethodResult {
    let validator = fit_validator(kind, clean, config);
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .replicas(config.stream.replicas)
        .queue_capacity(config.stream.queue_capacity)
        .start(validator)
        .expect("stream configuration in range");

    let labels: Vec<bool> = batches.iter().map(|b| b.is_dirty).collect();
    let predictions: Vec<bool> = std::thread::scope(|scope| {
        scope.spawn(move || {
            for batch in batches {
                let outcome = ingest
                    .submit(batch.data.clone())
                    .expect("engine open while the producer runs");
                assert!(outcome.is_enqueued(), "Block policy never sheds load");
            }
            // Dropping the producer's only handle closes ingestion; the
            // engine drains and the verdict stream ends.
        });
        verdicts
            .map(|item| {
                item.outcome
                    .into_verdict()
                    .expect("lossless engine yields a verdict per batch")
                    .is_dirty
            })
            .collect()
    });
    engine.shutdown();

    MethodResult {
        method: kind.label(),
        metrics: DetectionMetrics::from_predictions(&predictions, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use dquag_datagen::{make_test_batches, BatchProtocol, DatasetKind};

    #[test]
    fn all_kinds_are_listed_with_dquag_last() {
        assert_eq!(ValidatorKind::ALL.len(), 7);
        assert_eq!(ValidatorKind::ALL.last().unwrap().label(), "DQuaG");
    }

    #[test]
    fn baseline_evaluation_produces_metrics_over_all_batches() {
        let clean = DatasetKind::CreditCard.generate_clean(800, 3);
        let dirty = DatasetKind::CreditCard.generate_dirty(800, 4);
        let mut rng = dquag_datagen::rng(5);
        let protocol = BatchProtocol {
            n_clean: 3,
            n_dirty: 3,
            fraction: 0.2,
            max_rows: None,
        };
        let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
        let result = evaluate_method(
            ValidatorKind::DeequExpert,
            &clean,
            &batches,
            None,
            &Scale::Smoke.dquag_config(),
        );
        assert_eq!(result.metrics.total(), 6);
        assert!(result.accuracy() >= 0.5);
        assert!(result.recall() >= 0.5);
    }

    #[test]
    fn spec_evaluation_agrees_with_the_kind_path_and_composes() {
        use dquag_validate::{ValidatorSpec, Voting};
        let clean = DatasetKind::CreditCard.generate_clean(600, 23);
        let dirty = DatasetKind::CreditCard.generate_dirty(600, 24);
        let mut rng = dquag_datagen::rng(25);
        let protocol = BatchProtocol {
            n_clean: 2,
            n_dirty: 2,
            fraction: 0.2,
            max_rows: None,
        };
        let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
        let config = Scale::Smoke.dquag_config();

        // A backend leaf scores exactly like its legacy-kind counterpart.
        let via_spec = fit_spec(&ValidatorSpec::backend("gate"), &clean, &config);
        let leaf_metrics = evaluate_fitted(&*via_spec, &batches);
        let kind_result = evaluate_method(ValidatorKind::Gate, &clean, &batches, None, &config);
        assert_eq!(leaf_metrics, kind_result.metrics);

        // A composite spec runs through the very same protocol.
        let ensemble = fit_spec(
            &ValidatorSpec::ensemble(
                vec![
                    ValidatorSpec::backend("gate"),
                    ValidatorSpec::backend("adqv"),
                    ValidatorSpec::drift(),
                ],
                Voting::Majority,
            ),
            &clean,
            &config,
        );
        let metrics = evaluate_fitted(&*ensemble, &batches);
        assert_eq!(metrics.total(), 4);
        assert!(metrics.recall() >= 0.5);
    }

    #[test]
    fn prefitted_validators_are_reused() {
        let clean = DatasetKind::CreditCard.generate_clean(600, 7);
        let dirty = DatasetKind::CreditCard.generate_dirty(600, 8);
        let mut rng = dquag_datagen::rng(9);
        let protocol = BatchProtocol {
            n_clean: 2,
            n_dirty: 2,
            fraction: 0.2,
            max_rows: None,
        };
        let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
        let config = Scale::Smoke.dquag_config();
        let fitted = fit_validator(ValidatorKind::Gate, &clean, &config);
        let reused = evaluate_method(
            ValidatorKind::Gate,
            &clean,
            &batches,
            Some(&*fitted),
            &config,
        );
        let fresh = evaluate_method(ValidatorKind::Gate, &clean, &batches, None, &config);
        assert_eq!(
            reused.metrics, fresh.metrics,
            "reuse must not change results"
        );
    }

    #[test]
    fn streaming_evaluation_matches_the_direct_path() {
        let clean = DatasetKind::CreditCard.generate_clean(700, 11);
        let dirty = DatasetKind::CreditCard.generate_dirty(700, 12);
        let mut rng = dquag_datagen::rng(13);
        let protocol = BatchProtocol {
            n_clean: 3,
            n_dirty: 3,
            fraction: 0.2,
            max_rows: None,
        };
        let batches = make_test_batches(&clean, &dirty, protocol, &mut rng);
        let mut config = Scale::Smoke.dquag_config();
        config.stream.replicas = 3;

        let direct = evaluate_method(ValidatorKind::Gate, &clean, &batches, None, &config);
        let streamed = evaluate_method_streaming(ValidatorKind::Gate, &clean, &batches, &config);
        assert_eq!(
            direct.metrics, streamed.metrics,
            "the sharded engine must reproduce the direct path exactly"
        );
    }

    #[test]
    #[should_panic(expected = "prefitted validator must match")]
    fn mismatched_prefitted_validator_is_rejected() {
        let clean = DatasetKind::CreditCard.generate_clean(600, 7);
        let config = Scale::Smoke.dquag_config();
        let fitted = fit_validator(ValidatorKind::Gate, &clean, &config);
        evaluate_method(ValidatorKind::Adqv, &clean, &[], Some(&*fitted), &config);
    }
}
