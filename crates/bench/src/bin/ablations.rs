//! Run the DESIGN.md ablations (feature graph, weighted loss, threshold).
use dquag_bench::{experiments::ablations, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[ablations] running at {} scale", scale.label());
    let rows = ablations::run(scale);
    println!("{}", ablations::render(&rows));
}
