//! Reproduce Figure 3 — accuracy on datasets with real-world errors.
use dquag_bench::{experiments::figure3, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[figure3] running at {} scale", scale.label());
    let rows = figure3::run(scale);
    println!("{}", figure3::render(&rows));
}
