//! Reproduce Table 1 — accuracy/recall of synthetic-error detection.
use dquag_bench::{experiments::table1, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[table1] running at {} scale", scale.label());
    let rows = table1::run(scale);
    println!("{}", table1::render(&rows));
}
