//! Run every experiment harness in sequence and print the combined report.
use dquag_bench::experiments::{ablations, figure3, figure4, repair_eval, table1, table2, table3};
use dquag_bench::Scale;

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[reproduce_all] running at {} scale", scale.label());
    println!("{}", table1::render(&table1::run(scale)));
    println!("{}", table2::render(&table2::run(scale)));
    println!("{}", figure3::render(&figure3::run(scale)));
    println!("{}", figure4::render(&figure4::run(scale)));
    println!("{}", table3::render(&table3::run(scale)));
    println!("{}", repair_eval::render(&repair_eval::run(scale)));
    println!("{}", ablations::render(&ablations::run(scale)));
}
