//! Reproduce Table 2 — encoder-architecture comparison.
use dquag_bench::{experiments::table2, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[table2] running at {} scale", scale.label());
    let rows = table2::run(scale);
    println!("{}", table2::render(&rows));
}
