//! Reproduce §4.6 — error rate before and after repair.
use dquag_bench::{experiments::repair_eval, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[repair_eval] running at {} scale", scale.label());
    let rows = repair_eval::run(scale);
    println!("{}", repair_eval::render(&rows));
}
