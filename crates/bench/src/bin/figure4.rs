//! Reproduce Figure 4 — validation time vs data size and dimensionality.
use dquag_bench::{experiments::figure4, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[figure4] running at {} scale", scale.label());
    let rows = figure4::run(scale);
    println!("{}", figure4::render(&rows));
}
