//! Reproduce Table 3 — accuracy vs validation sample size.
use dquag_bench::{experiments::table3, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    eprintln!("[table3] running at {} scale", scale.label());
    let rows = table3::run(scale);
    println!("{}", table3::render(&rows));
}
