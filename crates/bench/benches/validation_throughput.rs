//! Criterion micro-benchmark: phase-2 validation throughput vs data
//! dimensionality (the per-row cost behind Figure 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_core::{DquagConfig, DquagValidator};
use dquag_datagen::datasets::nytaxi;
use dquag_gnn::ModelConfig;

fn quick_config() -> DquagConfig {
    DquagConfig {
        epochs: 6,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 24,
            n_layers: 4,
            ..ModelConfig::default()
        },
        ..DquagConfig::default()
    }
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_throughput");
    group.sample_size(10);
    const ROWS: usize = 500;
    for &dims in &[5usize, 10, 18] {
        let clean = nytaxi::generate_clean(1_500, dims, 7);
        let validator = DquagValidator::train(&clean, &[], &quick_config()).expect("training");
        let batch = nytaxi::generate_clean(ROWS, dims, 8);
        group.throughput(Throughput::Elements(ROWS as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dims), &batch, |b, batch| {
            b.iter(|| {
                validator
                    .validate(batch)
                    .expect("schema matches")
                    .error_rate
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
