//! Criterion micro-benchmark: one training step on a mini-batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dquag_gnn::{DquagNetwork, ModelConfig};
use dquag_graph::FeatureGraph;
use dquag_tensor::optim::Adam;

fn feature_graph(n: usize) -> FeatureGraph {
    let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let mut graph = FeatureGraph::new(names);
    for i in 0..n.saturating_sub(1) {
        graph.add_edge(i, i + 1).unwrap();
    }
    graph
}

fn bench_train_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_batch");
    group.sample_size(10);
    for &batch_size in &[16usize, 64, 128] {
        let graph = feature_graph(12);
        let config = ModelConfig {
            hidden_dim: 32,
            n_layers: 4,
            ..ModelConfig::default()
        };
        let batch: Vec<Vec<f32>> = (0..batch_size)
            .map(|s| (0..12).map(|i| ((s + i) % 10) as f32 / 10.0).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &batch,
            |b, batch| {
                let mut network = DquagNetwork::new(&graph, config);
                let mut adam = Adam::with_learning_rate(0.01);
                b.iter(|| network.train_batch(batch, &mut adam).0);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train_batch);
criterion_main!(benches);
