//! Streaming-engine throughput: end-to-end rows/s of the bounded-queue
//! pipeline as the validator replica count grows (the sharded-validation
//! scaling claim).
//!
//! Each iteration streams the same labelled batch set through a fresh
//! `StreamEngine` built around clones of one pre-trained DQuaG model
//! (`DquagBackend::from_trained`), so the timed quantity is pure pipeline +
//! phase-2 validation, never training. On a multi-core runner the rows/s
//! figure must grow from 1 replica to 4.
//!
//! Set `DQUAG_BENCH_FAST=1` to run a seconds-scale smoke variant (CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_core::{DquagConfig, DquagValidator};
use dquag_datagen::datasets::nytaxi;
use dquag_gnn::ModelConfig;
use dquag_stream::StreamEngine;
use dquag_tabular::DataFrame;
use dquag_validate::DquagBackend;

fn quick_config() -> DquagConfig {
    DquagConfig {
        epochs: 6,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 24,
            n_layers: 4,
            ..ModelConfig::default()
        },
        ..DquagConfig::default()
    }
}

fn bench_streaming(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let (train_rows, batch_rows, n_batches, samples) = if fast {
        (500, 60, 6, 2)
    } else {
        (1_500, 250, 24, 10)
    };

    let clean = nytaxi::generate_clean(train_rows, 10, 7);
    let trained = DquagValidator::train(&clean, &[], &quick_config()).expect("training");
    let batches: Vec<DataFrame> = (0..n_batches)
        .map(|i| nytaxi::generate_clean(batch_rows, 10, 100 + i as u64))
        .collect();

    let mut group = c.benchmark_group("streaming_throughput");
    group.sample_size(samples);
    group.throughput(Throughput::Elements((n_batches * batch_rows) as u64));
    for &replicas in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("replicas", replicas),
            &replicas,
            |b, &replicas| {
                b.iter(|| {
                    let backend = Box::new(DquagBackend::from_trained(trained.clone()));
                    let (engine, ingest, verdicts) = StreamEngine::builder()
                        .replicas(replicas)
                        .queue_capacity(n_batches)
                        .start(backend)
                        .expect("engine starts");
                    for batch in &batches {
                        ingest.submit(batch.clone()).expect("engine open");
                    }
                    drop(ingest);
                    let emitted = verdicts.count();
                    assert_eq!(emitted, n_batches);
                    engine.shutdown();
                    emitted
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
