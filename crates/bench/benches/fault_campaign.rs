//! Fault-injection campaign: sweep bit-flip rate × IEEE-754 site over a
//! fitted DQuaG model judging real traffic, and record the stability curve
//! in `BENCH_faults.json` — verdict agreement with the clean model when the
//! self-checking runtime is off, and detected vs silently-wrong counts when
//! it is armed.
//!
//! The acceptance gate (full runs only): with self-checks on, **zero**
//! silently-wrong verdicts across the whole sweep — every corruption at a
//! flip rate of 1e-4 and above is caught by the parameter checksum or the
//! NaN/Inf guards before a wrong verdict escapes. `DQUAG_BENCH_FAST=1`
//! shrinks the sweep to smoke-test scale and skips the gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dquag_faults::{run_campaign, CampaignConfig};

fn bench_fault_campaign(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let config = if fast {
        CampaignConfig::quick()
    } else {
        CampaignConfig::full()
    };

    // The timed portion is one quick campaign cell's worth of work; the
    // interesting output is the report below, not the wall clock.
    let mut group = c.benchmark_group("fault_campaign");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("fault_campaign", "quick_cell"), |b| {
        let mut one_cell = CampaignConfig::quick();
        one_cell.sites.truncate(1);
        one_cell.flip_rates.truncate(1);
        one_cell.trials = 1;
        one_cell.n_batches = 2;
        one_cell.epochs = 3;
        one_cell.train_rows = 200;
        b.iter(|| run_campaign(&one_cell));
    });
    group.finish();

    let report = run_campaign(&config);
    for cell in &report.cells {
        println!(
            "fault_campaign: site={:<8} rate={:<8} flipped={:<5} unchecked_agreement={:.3} \
             detected={} silent_wrong={}",
            cell.site,
            cell.flip_rate,
            cell.flipped_weights,
            cell.unchecked_agreement,
            cell.checked_detected,
            cell.checked_silent_wrong,
        );
    }
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !fast {
        assert_eq!(
            report.total_silent_wrong(),
            0,
            "with self-checks armed no corrupted replica may emit a wrong verdict"
        );
        // The sweep must have actually corrupted something, or the gate is
        // vacuous.
        assert!(
            report
                .cells
                .iter()
                .map(|c| c.flipped_weights)
                .sum::<usize>()
                > 0,
            "the campaign flipped no weights at all"
        );
    }
}

criterion_group!(benches, bench_fault_campaign);
criterion_main!(benches);
