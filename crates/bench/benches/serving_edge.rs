//! Serving-edge concurrency: end-to-end rows/s of the pooled listener with
//! many simultaneously-open client connections versus a baseline holding
//! only as many connections as the pool has workers.
//!
//! The old thread-per-connection listener needed one OS thread per open
//! socket, so its sustainable concurrent-connection count *was* its thread
//! count. The worker pool must hold many times that connection count on
//! the same fixed threads at equal throughput; the acceptance gate below
//! asserts both. The trajectory lands in `BENCH_serving.json` in the
//! workspace root. Set `DQUAG_BENCH_FAST=1` for a seconds-scale smoke
//! variant (CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_core::{DquagConfig, ServingConfig};
use dquag_datagen::DatasetKind;
use dquag_sources::{NetListenerSource, SourceRuntime};
use dquag_stream::StreamEngine;
use dquag_tabular::csv;
use dquag_validate::{build_validator, Validator, ValidatorKind};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const KIND: DatasetKind = DatasetKind::NyTaxi;
const WORKERS: usize = 4;

fn fitted_validator(train_rows: usize) -> Box<dyn Validator> {
    let clean = KIND.generate_clean(train_rows, 7);
    let mut validator = build_validator(ValidatorKind::DeequAuto, &DquagConfig::fast());
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

/// Stream `payloads` through the pooled listener with `conns` concurrently
/// open client connections (each client opens one socket and keeps it open
/// for its whole share). Returns end-to-end rows/s, verdicts included.
fn run_arm(
    validator: Box<dyn Validator>,
    payloads: &[String],
    conns: usize,
    total_rows: u64,
) -> f64 {
    let n_batches = payloads.len();
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(n_batches)
        .start(validator)
        .expect("engine starts");
    let source = NetListenerSource::bind("127.0.0.1:0", KIND.schema())
        .expect("loopback bind")
        .with_serving(ServingConfig {
            workers: WORKERS,
            max_connections: conns + 8,
            ..ServingConfig::default()
        });
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(5))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");

    let start = Instant::now();
    let chunks: Vec<Vec<String>> = payloads
        .chunks(n_batches.div_ceil(conns))
        .map(<[String]>::to_vec)
        .collect();
    let clients: Vec<_> = chunks
        .into_iter()
        .map(|chunk| std::thread::spawn(move || client(addr, &chunk)))
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    runtime.shutdown().expect("runtime drains");
    assert_eq!(verdicts.count(), n_batches);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    engine.shutdown();
    total_rows as f64 / elapsed
}

/// One client: a single open connection streaming its share of frames.
fn client(addr: SocketAddr, payloads: &[String]) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    for payload in payloads {
        let frame = format!("BATCH csv {}\n{payload}", payload.len());
        writer.write_all(frame.as_bytes()).expect("frame");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        assert!(reply.starts_with("ACK "), "{reply}");
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_serving_edge(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let (train_rows, batch_rows, n_batches, scaled_conns, samples, rounds) = if fast {
        (400, 40, 32, 32, 2, 1)
    } else {
        (1_000, 100, 256, 128, 10, 5)
    };
    let baseline_conns = WORKERS;
    let total_rows = (n_batches * batch_rows) as u64;

    let payloads: Vec<String> = (0..n_batches)
        .map(|i| csv::to_csv_string(&KIND.generate_clean(batch_rows, 100 + i as u64)))
        .collect();

    let mut group = c.benchmark_group("serving_edge");
    group.sample_size(samples);
    group.throughput(Throughput::Elements(total_rows));
    for conns in [baseline_conns, scaled_conns] {
        group.bench_with_input(
            BenchmarkId::new("open_conns", conns),
            &conns,
            |b, &conns| {
                b.iter(|| run_arm(fitted_validator(train_rows), &payloads, conns, total_rows));
            },
        );
    }
    group.finish();

    // Record the trajectory and gate on interleaved medians.
    run_arm(
        fitted_validator(train_rows),
        &payloads,
        baseline_conns,
        total_rows,
    ); // warm-up
    let mut baseline_samples = Vec::with_capacity(rounds);
    let mut scaled_samples = Vec::with_capacity(rounds);
    let mut ratio_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let baseline = run_arm(
            fitted_validator(train_rows),
            &payloads,
            baseline_conns,
            total_rows,
        );
        let scaled = run_arm(
            fitted_validator(train_rows),
            &payloads,
            scaled_conns,
            total_rows,
        );
        baseline_samples.push(baseline);
        scaled_samples.push(scaled);
        ratio_samples.push(scaled / baseline.max(1e-9));
    }
    let baseline = median(&mut baseline_samples);
    let scaled = median(&mut scaled_samples);
    let ratio = median(&mut ratio_samples);
    // The pool serves the listener with WORKERS + 1 threads (workers plus
    // the accepting supervisor); thread-per-connection needed one *per
    // open socket*.
    let server_threads = WORKERS + 1;
    let conns_per_thread = scaled_conns as f64 / server_threads as f64;
    println!(
        "serving_edge: {baseline_conns} conns {baseline:.0} rows/s, \
         {scaled_conns} conns {scaled:.0} rows/s (ratio {ratio:.3}), \
         {conns_per_thread:.1} connections per server thread"
    );

    let json = format!(
        "{{\n  \"bench\": \"serving_edge\",\n  \"fast_mode\": {fast},\n  \
         \"workers\": {WORKERS},\n  \"server_threads\": {server_threads},\n  \
         \"batch_rows\": {batch_rows},\n  \"n_batches\": {n_batches},\n  \
         \"baseline_conns\": {baseline_conns},\n  \"scaled_conns\": {scaled_conns},\n  \
         \"baseline_rows_per_s\": {baseline:.1},\n  \"scaled_rows_per_s\": {scaled:.1},\n  \
         \"throughput_ratio_scaled_vs_baseline\": {ratio:.4},\n  \
         \"conns_per_server_thread\": {conns_per_thread:.1}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if !fast {
        assert!(
            conns_per_thread >= 4.0,
            "the pool must hold at least 4x the connections a thread-per-connection \
             listener gets per thread, got {conns_per_thread:.1}"
        );
        assert!(
            ratio >= 0.8,
            "throughput at {scaled_conns} open connections must stay within 20% of \
             the {baseline_conns}-connection baseline, got ratio {ratio:.3}"
        );
    }
}

criterion_group!(benches, bench_serving_edge);
criterion_main!(benches);
