//! Criterion micro-benchmark: baseline validators (fit once, validate a batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dquag_baselines::BaselineKind;
use dquag_datagen::DatasetKind;

fn bench_baselines(c: &mut Criterion) {
    let clean = DatasetKind::CreditCard.generate_clean(5_000, 3);
    let mut rng = dquag_datagen::rng(4);
    let batch = dquag_datagen::sample_fraction(&clean, 0.1, &mut rng);

    let mut group = c.benchmark_group("baseline_validate");
    for kind in BaselineKind::ALL {
        let mut validator = kind.build();
        validator.fit(&clean);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &batch,
            |b, batch| {
                b.iter(|| validator.validate(batch).is_dirty);
            },
        );
    }
    group.finish();

    let mut fit_group = c.benchmark_group("baseline_fit");
    fit_group.sample_size(10);
    for kind in BaselineKind::ALL {
        fit_group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &clean,
            |b, clean| {
                b.iter(|| {
                    let mut validator = kind.build();
                    validator.fit(clean);
                });
            },
        );
    }
    fit_group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
