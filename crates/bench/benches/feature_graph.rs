//! Criterion micro-benchmark: feature-graph inference (the ChatGPT-4
//! substitution) on the six dataset schemas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dquag_datagen::DatasetKind;
use dquag_graph::knowledge::{build_feature_graph, StatisticalOracle};

fn bench_graph_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_graph_inference");
    for kind in DatasetKind::ALL {
        let clean = kind.generate_clean(2_000, 11);
        let oracle = StatisticalOracle::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &clean,
            |b, clean| {
                b.iter(|| {
                    build_feature_graph(clean, &oracle, 100)
                        .expect("graph construction")
                        .n_edges()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_inference);
criterion_main!(benches);
