//! Criterion micro-benchmark: GNN encoder forward pass per architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dquag_gnn::{DquagNetwork, EncoderKind, ModelConfig};
use dquag_graph::FeatureGraph;
use dquag_tensor::Tape;

fn feature_graph(n: usize) -> FeatureGraph {
    let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let mut graph = FeatureGraph::new(names);
    for i in 0..n {
        graph.add_edge(i, (i + 1) % n).unwrap();
        graph.add_edge(i, (i + 3) % n).unwrap();
    }
    graph
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnn_forward");
    for encoder in EncoderKind::ALL {
        let graph = feature_graph(12);
        let config = ModelConfig {
            hidden_dim: 64,
            n_layers: 4,
            encoder,
            ..ModelConfig::default()
        };
        let network = DquagNetwork::new(&graph, config);
        let sample: Vec<f32> = (0..12).map(|i| i as f32 / 12.0).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(encoder.label()),
            &sample,
            |b, sample| {
                b.iter(|| {
                    let tape = Tape::new();
                    let (params, bound_graph) = network.bind(&tape);
                    network
                        .forward_sample(&tape, &params, &bound_graph, sample)
                        .total_error()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
