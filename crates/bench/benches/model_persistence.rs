//! Model persistence: what a restart actually costs. Measures the
//! save/load round-trip latency of a fitted DQuaG model, then the number
//! the operator cares about — time-to-first-verdict after a restart — for
//! the two restart strategies: cold refit (train from scratch, then score)
//! vs `persisted-dquag` (load the fitted model from disk, then score).
//!
//! The trajectory lands in `BENCH_persistence.json` in the workspace root.
//! Set `DQUAG_BENCH_FAST=1` to run a seconds-scale smoke variant (CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dquag_core::DquagConfig;
use dquag_datagen::DatasetKind;
use dquag_persist::{load_validator, save_validator};
use dquag_tabular::DataFrame;
use dquag_validate::{build_validator, Validator, ValidatorKind};
use std::path::PathBuf;
use std::time::Instant;

const KIND: DatasetKind = DatasetKind::CreditCard;

fn train_config(fast: bool) -> DquagConfig {
    DquagConfig::builder()
        .epochs(if fast { 8 } else { 15 })
        .build()
        .expect("config in range")
}

fn fit_dquag(clean: &DataFrame, fast: bool) -> Box<dyn Validator> {
    let mut validator = build_validator(ValidatorKind::Dquag, &train_config(fast));
    validator.fit(clean).expect("fitting succeeds");
    validator
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_model_persistence(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let (train_rows, samples, rounds) = if fast { (400, 10, 3) } else { (900, 10, 10) };

    let dir = std::env::temp_dir().join(format!("dquag-bench-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let model_path: PathBuf = dir.join("model.json");

    let clean = KIND.generate_clean(train_rows, 3);
    let fitted = fit_dquag(&clean, fast);
    let batch = KIND.generate_clean(120, 42);

    // Round-trip latency of the store itself.
    let mut group = c.benchmark_group("model_persistence");
    group.sample_size(samples);
    group.bench_function(BenchmarkId::new("store", "save"), |b| {
        b.iter(|| save_validator(&model_path, fitted.as_ref()).expect("save succeeds"));
    });
    save_validator(&model_path, fitted.as_ref()).expect("save succeeds");
    group.bench_function(BenchmarkId::new("store", "load"), |b| {
        b.iter(|| {
            load_validator(&model_path)
                .expect("load succeeds")
                .name()
                .len()
        });
    });
    group.finish();

    // Time-to-first-verdict after a restart: the same fitted behaviour,
    // reached by refitting vs by loading the persisted model. Interleaved
    // rounds, summarised by medians, so scheduler noise hits both equally.
    let mut cold_samples = Vec::with_capacity(rounds);
    let mut persisted_samples = Vec::with_capacity(rounds);
    let mut ratio_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        let refit = fit_dquag(&clean, fast);
        refit.validate(&batch).expect("scores");
        let cold = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let loaded = load_validator(&model_path).expect("load succeeds");
        loaded.validate(&batch).expect("scores");
        let persisted = start.elapsed().as_secs_f64();

        cold_samples.push(cold * 1e3);
        persisted_samples.push(persisted * 1e3);
        ratio_samples.push(cold / persisted.max(1e-9));
    }
    let cold_ms = median(&mut cold_samples);
    let persisted_ms = median(&mut persisted_samples);
    let speedup = median(&mut ratio_samples);
    println!(
        "model_persistence: time-to-first-verdict cold refit {cold_ms:.1} ms, \
         persisted load {persisted_ms:.1} ms ({speedup:.1}x faster restart)"
    );

    let json = format!(
        "{{\n  \"bench\": \"model_persistence\",\n  \"train_rows\": {train_rows},\n  \
         \"batch_rows\": 120,\n  \"fast_mode\": {fast},\n  \
         \"cold_refit_first_verdict_ms\": {cold_ms:.2},\n  \
         \"persisted_load_first_verdict_ms\": {persisted_ms:.2},\n  \
         \"restart_speedup\": {speedup:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persistence.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();

    // Loading a fitted model must beat retraining one by a wide margin —
    // that is the entire point of persisting it. (Skipped in fast mode:
    // tiny training budgets make the ratio noisy.)
    if !fast {
        assert!(
            speedup >= 3.0,
            "persisted restart must be at least 3x faster to first verdict \
             than a cold refit, got {speedup:.2}x"
        );
    }
}

criterion_group!(benches, bench_model_persistence);
criterion_main!(benches);
