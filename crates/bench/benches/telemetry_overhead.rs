//! Observability overhead: end-to-end streaming rows/s with the full
//! telemetry bundle attached (engine counters + gauges + latency histogram,
//! queue-wait/emit stage spans, validator graph-build/forward/verdict spans,
//! GNN forward-pass counters, flight recorder) versus the same pipeline with
//! telemetry off — plus a third arm with the per-column data layer on
//! (drift gauges, scoreboard, crossing detection) fed by a KS/PSI drift
//! node riding in an ensemble next to the GNN backend.
//!
//! The instrumented hot path is one `Option` check plus a handful of relaxed
//! atomics per batch (the data layer adds one mutex'd scoreboard pass per
//! batch), so the measured overhead must stay under 3% for both telemetry
//! arms. Besides the criterion timings, rows/s for all variants go to
//! `BENCH_observability.json` in the workspace root; the <3% acceptance gate
//! is asserted in full runs (skipped under `DQUAG_BENCH_FAST=1`, whose
//! sample counts are too small to be stable).
//!
//! Rounds are interleaved and summarised by the median of per-round ratios,
//! so scheduler noise on small shared runners hits every variant equally
//! instead of biasing whichever ran during a slow window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_core::{DquagConfig, DquagValidator};
use dquag_datagen::datasets::nytaxi;
use dquag_gnn::ModelConfig;
use dquag_stream::StreamEngine;
use dquag_tabular::DataFrame;
use dquag_telemetry::{DataTelemetryOptions, Telemetry, TelemetryOptions};
use dquag_validate::{
    DquagBackend, DriftSpec, DriftValidator, EnsembleValidator, Validator, Voting,
};
use std::sync::Arc;
use std::time::Instant;

fn quick_config() -> DquagConfig {
    DquagConfig {
        epochs: 6,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 24,
            n_layers: 4,
            ..ModelConfig::default()
        },
        ..DquagConfig::default()
    }
}

fn quiet_bundle() -> Arc<Telemetry> {
    Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 256,
        dump_on_error: false,
        ..TelemetryOptions::default()
    })
}

/// Like [`quiet_bundle`], with the per-column data layer on: drift gauges,
/// scoreboard and crossing detection all live on the hot path.
fn data_bundle() -> Arc<Telemetry> {
    Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 256,
        dump_on_error: false,
        data: Some(DataTelemetryOptions::default()),
    })
}

/// The serving tree every arm runs: the GNN backend next to a KS/PSI drift
/// node, so the data-telemetry arm has per-column statistics to export and
/// the other arms pay the identical validation cost.
fn serving_tree(trained: &DquagValidator, drift: &DriftValidator) -> Box<dyn Validator> {
    let members: Vec<Box<dyn Validator>> = vec![
        Box::new(DquagBackend::from_trained(trained.clone())),
        Box::new(drift.clone()),
    ];
    Box::new(EnsembleValidator::new(members, Voting::Any).expect("two members"))
}

/// Stream every batch through a fresh engine; `telemetry` instruments the
/// engine and (through the engine's attach hook) the whole validator tree
/// when set. Returns the emitted-batch count.
fn run_pipeline(
    trained: &DquagValidator,
    drift: &DriftValidator,
    batches: &[DataFrame],
    telemetry: Option<&Arc<Telemetry>>,
) -> usize {
    let mut builder = StreamEngine::builder().queue_capacity(batches.len());
    if let Some(bundle) = telemetry {
        builder = builder.telemetry(Arc::clone(bundle));
    }
    let (engine, ingest, verdicts) = builder
        .start(serving_tree(trained, drift))
        .expect("engine starts");
    for batch in batches {
        ingest.submit(batch.clone()).expect("engine open");
    }
    drop(ingest);
    let emitted = verdicts.count();
    engine.shutdown();
    emitted
}

/// Time one full pipeline run and return rows/s.
fn one_pass(
    trained: &DquagValidator,
    drift: &DriftValidator,
    batches: &[DataFrame],
    total_rows: usize,
    telemetry: Option<&Arc<Telemetry>>,
) -> f64 {
    let start = Instant::now();
    let emitted = run_pipeline(trained, drift, batches, telemetry);
    assert_eq!(emitted, batches.len());
    total_rows as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let (train_rows, batch_rows, n_batches, samples, rounds) = if fast {
        (500, 60, 6, 2, 3)
    } else {
        (1_500, 250, 24, 10, 21)
    };
    let total_rows = n_batches * batch_rows;

    let clean = nytaxi::generate_clean(train_rows, 10, 7);
    let trained = DquagValidator::train(&clean, &[], &quick_config()).expect("training");
    let mut drift = DriftValidator::new(DriftSpec::default());
    drift.fit(&clean).expect("drift profile fits");
    let batches: Vec<DataFrame> = (0..n_batches)
        .map(|i| nytaxi::generate_clean(batch_rows, 10, 100 + i as u64))
        .collect();
    let bundle = quiet_bundle();
    let data = data_bundle();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(samples);
    group.throughput(Throughput::Elements(total_rows as u64));
    group.bench_with_input(
        BenchmarkId::new("telemetry", "off"),
        &batches,
        |b, batches| {
            b.iter(|| run_pipeline(&trained, &drift, batches, None));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("telemetry", "on"),
        &batches,
        |b, batches| {
            b.iter(|| run_pipeline(&trained, &drift, batches, Some(&bundle)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("telemetry", "data_on"),
        &batches,
        |b, batches| {
            b.iter(|| run_pipeline(&trained, &drift, batches, Some(&data)));
        },
    );
    group.finish();

    // Record the trajectory and gate the overhead on interleaved medians.
    one_pass(&trained, &drift, &batches, total_rows, None); // warm-up
    one_pass(&trained, &drift, &batches, total_rows, Some(&bundle));
    let mut off_samples = Vec::with_capacity(rounds);
    let mut on_samples = Vec::with_capacity(rounds);
    let mut data_samples = Vec::with_capacity(rounds);
    let mut ratio_samples = Vec::with_capacity(rounds);
    let mut data_ratio_samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let off = one_pass(&trained, &drift, &batches, total_rows, None);
        let on = one_pass(&trained, &drift, &batches, total_rows, Some(&bundle));
        let data_on = one_pass(&trained, &drift, &batches, total_rows, Some(&data));
        off_samples.push(off);
        on_samples.push(on);
        data_samples.push(data_on);
        ratio_samples.push(on / off.max(1e-9));
        data_ratio_samples.push(data_on / off.max(1e-9));
    }
    let off = median(&mut off_samples);
    let on = median(&mut on_samples);
    let data_on = median(&mut data_samples);
    let ratio = median(&mut ratio_samples);
    let data_ratio = median(&mut data_ratio_samples);
    let overhead_pct = 100.0 * (1.0 - ratio);
    let data_overhead_pct = 100.0 * (1.0 - data_ratio);
    println!(
        "telemetry_overhead: off {off:.0} rows/s, on {on:.0} rows/s \
         ({overhead_pct:+.2}%), data on {data_on:.0} rows/s \
         ({data_overhead_pct:+.2}%, {} series live)",
        data.registry().series_count()
    );

    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"fast_mode\": {fast},\n  \
         \"batch_rows\": {batch_rows},\n  \"n_batches\": {n_batches},\n  \
         \"off_rows_per_s\": {off:.1},\n  \"on_rows_per_s\": {on:.1},\n  \
         \"data_on_rows_per_s\": {data_on:.1},\n  \
         \"throughput_ratio_on_vs_off\": {ratio:.4},\n  \
         \"throughput_ratio_data_on_vs_off\": {data_ratio:.4},\n  \
         \"overhead_pct\": {overhead_pct:.2},\n  \
         \"data_overhead_pct\": {data_overhead_pct:.2},\n  \
         \"series_count\": {}\n}}\n",
        data.registry().series_count()
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_observability.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if !fast {
        assert!(
            ratio >= 0.97,
            "telemetry-on throughput must stay within 3% of telemetry-off, \
             got {overhead_pct:.2}% overhead"
        );
        assert!(
            data_ratio >= 0.97,
            "data-telemetry-on throughput must stay within 3% of telemetry-off, \
             got {data_overhead_pct:.2}% overhead"
        );
    }
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
