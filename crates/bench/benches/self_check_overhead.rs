//! Self-check overhead: end-to-end streaming rows/s with the runtime
//! integrity checks armed (parameter-checksum verification every
//! `DEFAULT_SELF_CHECK_PERIOD` forward passes plus the SIMD kernel's
//! NaN/Inf epilogue guard and the score scan) versus the identical pipeline
//! with the checks disabled (`with_self_check_period(0)` and the process
//! guard off).
//!
//! The checks were designed to be amortised — one FNV pass over the
//! parameters every N tiles and one finiteness scan over outputs already in
//! cache — so the measured cost must stay under 3%. Rounds are interleaved
//! and summarised by the median of per-round ratios (see
//! `telemetry_overhead.rs` for the rationale); rows/s and the ratio go to
//! `BENCH_self_check.json`, and the <3% gate is asserted in full runs only
//! (`DQUAG_BENCH_FAST=1` samples are too small to be stable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_core::{DquagConfig, DquagValidator};
use dquag_datagen::datasets::nytaxi;
use dquag_gnn::ModelConfig;
use dquag_stream::StreamEngine;
use dquag_tabular::DataFrame;
use dquag_validate::DquagBackend;
use std::time::Instant;

fn quick_config() -> DquagConfig {
    DquagConfig {
        epochs: 6,
        batch_size: 64,
        model: ModelConfig {
            hidden_dim: 24,
            n_layers: 4,
            ..ModelConfig::default()
        },
        ..DquagConfig::default()
    }
}

/// Stream every batch through a fresh one-generation engine serving a clone
/// of `trained` with the given self-check period. Returns emitted count.
fn run_pipeline(trained: &DquagValidator, batches: &[DataFrame], period: u64) -> usize {
    // The kernel guard is process-global: armed sessions switch it on, so
    // the checks-off arm must switch it off explicitly each run.
    if period == 0 {
        dquag_tensor::set_finite_guard(false);
        let _ = dquag_tensor::take_finite_guard_trip();
    }
    let validator = Box::new(DquagBackend::from_trained(
        trained.clone().with_self_check_period(period),
    ));
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(batches.len())
        .start(validator)
        .expect("engine starts");
    for batch in batches {
        ingest.submit(batch.clone()).expect("engine open");
    }
    drop(ingest);
    let emitted = verdicts.count();
    engine.shutdown();
    emitted
}

/// Time one full pipeline run and return rows/s.
fn one_pass(
    trained: &DquagValidator,
    batches: &[DataFrame],
    total_rows: usize,
    period: u64,
) -> f64 {
    let start = Instant::now();
    let emitted = run_pipeline(trained, batches, period);
    assert_eq!(emitted, batches.len());
    total_rows as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_self_check_overhead(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let (train_rows, batch_rows, n_batches, samples, rounds) = if fast {
        (500, 60, 6, 2, 3)
    } else {
        (1_500, 250, 24, 10, 21)
    };
    let total_rows = n_batches * batch_rows;

    let clean = nytaxi::generate_clean(train_rows, 10, 7);
    let trained = DquagValidator::train(&clean, &[], &quick_config()).expect("training");
    let batches: Vec<DataFrame> = (0..n_batches)
        .map(|i| nytaxi::generate_clean(batch_rows, 10, 100 + i as u64))
        .collect();
    let checked_period = trained.self_check_period().max(1);

    let mut group = c.benchmark_group("self_check_overhead");
    group.sample_size(samples);
    group.throughput(Throughput::Elements(total_rows as u64));
    group.bench_with_input(
        BenchmarkId::new("self_check", "off"),
        &batches,
        |b, batches| {
            b.iter(|| run_pipeline(&trained, batches, 0));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("self_check", "on"),
        &batches,
        |b, batches| {
            b.iter(|| run_pipeline(&trained, batches, checked_period));
        },
    );
    group.finish();

    // Interleaved rounds, median-of-ratios: scheduler noise hits both arms.
    one_pass(&trained, &batches, total_rows, 0); // warm-up
    one_pass(&trained, &batches, total_rows, checked_period);
    let mut off_samples = Vec::with_capacity(rounds);
    let mut on_samples = Vec::with_capacity(rounds);
    let mut ratio_samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate arm order round-to-round: under a monotonic machine
        // slowdown (thermal throttling, a co-tenant waking up) a fixed
        // off-then-on order charges the drift entirely to the checked arm.
        let (off, on) = if round % 2 == 0 {
            let off = one_pass(&trained, &batches, total_rows, 0);
            let on = one_pass(&trained, &batches, total_rows, checked_period);
            (off, on)
        } else {
            let on = one_pass(&trained, &batches, total_rows, checked_period);
            let off = one_pass(&trained, &batches, total_rows, 0);
            (off, on)
        };
        off_samples.push(off);
        on_samples.push(on);
        ratio_samples.push(on / off.max(1e-9));
    }
    // Leave the process guard the way the runtime expects it.
    dquag_tensor::set_finite_guard(true);
    let _ = dquag_tensor::take_finite_guard_trip();

    let off = median(&mut off_samples);
    let on = median(&mut on_samples);
    let ratio = median(&mut ratio_samples);
    let overhead_pct = 100.0 * (1.0 - ratio);
    println!(
        "self_check_overhead: off {off:.0} rows/s, on {on:.0} rows/s \
         ({overhead_pct:+.2}%, period {checked_period})"
    );

    let json = format!(
        "{{\n  \"bench\": \"self_check_overhead\",\n  \"fast_mode\": {fast},\n  \
         \"batch_rows\": {batch_rows},\n  \"n_batches\": {n_batches},\n  \
         \"self_check_period\": {checked_period},\n  \
         \"off_rows_per_s\": {off:.1},\n  \"on_rows_per_s\": {on:.1},\n  \
         \"throughput_ratio_on_vs_off\": {ratio:.4},\n  \
         \"overhead_pct\": {overhead_pct:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_self_check.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if !fast {
        assert!(
            ratio >= 0.97,
            "self-checks must stay within 3% of the unchecked pipeline, \
             got {overhead_pct:.2}% overhead"
        );
    }
}

criterion_group!(benches, bench_self_check_overhead);
criterion_main!(benches);
