//! Per-row vs batched GNN inference throughput.
//!
//! Three variants are measured at B ∈ {1, 32, 256}:
//!
//! * `per_row` — the seed hot path this PR replaces: one fresh tape, one
//!   parameter binding and one `n × 1` forward pass per sample, running on
//!   the portable scalar kernel ([`KernelMode::Portable`]) the seed shipped
//!   with. This is the frozen baseline of the trajectory.
//! * `per_row_simd` — the same per-row loop on the auto-dispatched SIMD
//!   kernels, isolating how much of the win is kernels alone.
//! * `batched` — the new inference path: one `InferenceSession` (parameters
//!   bound once), B rows stacked into matrix-level forward passes
//!   (`score_errors` — validation scoring, which is what the pipeline's
//!   verdict hot path runs), SIMD kernels. The seed per-row pass always ran
//!   both decoders, so the repair head's cost is part of what the redesign
//!   removes from scoring.
//!
//! Besides the criterion timings, rows/s for all variants go to
//! `BENCH_inference.json` in the workspace root so the perf trajectory of
//! the inference hot path is recorded run over run. The acceptance gate —
//! batched ≥ 3× the seed per-row path at B = 256 — is asserted in full runs
//! (skipped under `DQUAG_BENCH_FAST=1`, whose sample counts are too small to
//! be stable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_gnn::{DquagNetwork, ModelConfig};
use dquag_graph::FeatureGraph;
use dquag_tensor::{set_kernel_mode, KernelMode, Tape};
use std::time::Instant;

const BATCH_SIZES: [usize; 3] = [1, 32, 256];

fn feature_graph(n: usize) -> FeatureGraph {
    let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let mut graph = FeatureGraph::new(names);
    for i in 0..n {
        graph.add_edge(i, (i + 1) % n).unwrap();
        graph.add_edge(i, (i + 3) % n).unwrap();
    }
    graph
}

fn network() -> DquagNetwork {
    let graph = feature_graph(12);
    let config = ModelConfig {
        hidden_dim: 64,
        n_layers: 4,
        ..ModelConfig::default()
    };
    DquagNetwork::new(&graph, config)
}

fn rows(n: usize, n_features: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..n_features)
                .map(|f| ((i * 31 + f * 7) % 97) as f32 / 97.0)
                .collect()
        })
        .collect()
}

/// The seed hot path: tape + binding + forward per row.
fn score_per_row(net: &DquagNetwork, batch: &[Vec<f32>]) -> f32 {
    let mut total = 0.0;
    for row in batch {
        let tape = Tape::new();
        let (params, graph) = net.bind(&tape);
        total += net
            .forward_sample(&tape, &params, &graph, row)
            .total_error();
    }
    total
}

/// Time one scoring run over `batch_rows` rows and return rows/s.
fn one_pass(batch_rows: usize, mut run: impl FnMut()) -> f64 {
    let start = Instant::now();
    run();
    batch_rows as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn bench_inference(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let samples = if fast { 3 } else { 20 };
    let net = network();

    let mut group = c.benchmark_group("inference_forward");
    group.sample_size(samples);
    for &batch_size in &BATCH_SIZES {
        let batch = rows(batch_size, net.n_features());
        group.throughput(Throughput::Elements(batch_size as u64));
        group.bench_with_input(
            BenchmarkId::new("per_row", batch_size),
            &batch,
            |b, batch| {
                set_kernel_mode(KernelMode::Portable);
                b.iter(|| score_per_row(&net, batch));
                set_kernel_mode(KernelMode::Auto);
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_row_simd", batch_size),
            &batch,
            |b, batch| b.iter(|| score_per_row(&net, batch)),
        );
        let session = net.inference_session();
        group.bench_with_input(
            BenchmarkId::new("batched", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| {
                    net.score_errors(&session, batch)
                        .instance_errors()
                        .iter()
                        .sum::<f32>()
                })
            },
        );
    }
    group.finish();

    // Record the trajectory: rows/s per variant per batch size, as JSON.
    // Variants are interleaved within each round and summarised by medians,
    // so scheduler noise on small shared runners hits all paths equally
    // instead of biasing whichever variant ran during a slow window.
    let rounds = if fast { 3 } else { 30 };
    let mut lines = Vec::new();
    let mut speedup_at_max = 0.0;
    for &batch_size in &BATCH_SIZES {
        let batch = rows(batch_size, net.n_features());
        let session = net.inference_session();
        // ~256 rows of work per variant per round, whatever the batch size
        let reps = (256 / batch_size.max(1)).clamp(1, 256);
        let rows_per_round = reps * batch_size;

        // warm-up every variant once
        set_kernel_mode(KernelMode::Portable);
        score_per_row(&net, &batch);
        set_kernel_mode(KernelMode::Auto);
        score_per_row(&net, &batch);
        net.score_errors(&session, &batch);

        let mut seed_samples = Vec::with_capacity(rounds);
        let mut simd_samples = Vec::with_capacity(rounds);
        let mut batched_samples = Vec::with_capacity(rounds);
        let mut ratio_samples = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            set_kernel_mode(KernelMode::Portable);
            let seed = one_pass(rows_per_round, || {
                for _ in 0..reps {
                    score_per_row(&net, &batch);
                }
            });
            set_kernel_mode(KernelMode::Auto);
            let simd = one_pass(rows_per_round, || {
                for _ in 0..reps {
                    score_per_row(&net, &batch);
                }
            });
            let batched_run = one_pass(rows_per_round, || {
                for _ in 0..reps {
                    net.score_errors(&session, &batch);
                }
            });
            seed_samples.push(seed);
            simd_samples.push(simd);
            batched_samples.push(batched_run);
            ratio_samples.push(batched_run / seed.max(1e-9));
        }
        let per_row = median(&mut seed_samples);
        let per_row_simd = median(&mut simd_samples);
        let batched = median(&mut batched_samples);
        let speedup = median(&mut ratio_samples);
        if batch_size == *BATCH_SIZES.last().unwrap() {
            speedup_at_max = speedup;
        }
        println!(
            "inference_forward B={batch_size}: per_row(seed) {per_row:.0} rows/s, \
             per_row_simd {per_row_simd:.0} rows/s, batched {batched:.0} rows/s \
             ({speedup:.2}x vs seed)"
        );
        lines.push(format!(
            "    {{\"batch_size\": {batch_size}, \"per_row_rows_per_s\": {per_row:.1}, \
             \"per_row_simd_rows_per_s\": {per_row_simd:.1}, \
             \"batched_rows_per_s\": {batched:.1}, \"speedup_vs_seed\": {speedup:.3}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"inference_forward\",\n  \"n_features\": {},\n  \
         \"hidden_dim\": 64,\n  \"n_layers\": 4,\n  \"fast_mode\": {},\n  \
         \"results\": [\n{}\n  ],\n  \"speedup_at_b{}\": {:.3}\n}}\n",
        net.n_features(),
        fast,
        lines.join(",\n"),
        BATCH_SIZES.last().unwrap(),
        speedup_at_max,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if !fast {
        assert!(
            speedup_at_max >= 3.0,
            "batched inference at B={} must be at least 3x the seed per-row path, \
             got {speedup_at_max:.2}x",
            BATCH_SIZES.last().unwrap()
        );
    }
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
