//! Source-adapter ingestion throughput: end-to-end rows/s of the full
//! serving edge — loopback TCP framing + CSV decode + engine validation —
//! against direct in-process `IngestHandle` submission, so the cost of the
//! network layer itself is visible.
//!
//! Set `DQUAG_BENCH_FAST=1` to run a seconds-scale smoke variant (CI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_core::DquagConfig;
use dquag_datagen::DatasetKind;
use dquag_sources::{NetListenerSource, SourceRuntime};
use dquag_stream::StreamEngine;
use dquag_tabular::csv;
use dquag_validate::{build_validator, Validator, ValidatorKind};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const KIND: DatasetKind = DatasetKind::NyTaxi;

/// A cheap statistics-based validator so the timed quantity is the
/// ingestion path, not model inference.
fn fitted_validator(train_rows: usize) -> Box<dyn Validator> {
    let clean = KIND.generate_clean(train_rows, 7);
    let mut validator = build_validator(ValidatorKind::DeequAuto, &DquagConfig::fast());
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

fn bench_source_ingest(c: &mut Criterion) {
    let fast = std::env::var_os("DQUAG_BENCH_FAST").is_some();
    let (train_rows, batch_rows, n_batches, samples) = if fast {
        (400, 60, 8, 2)
    } else {
        (1_000, 200, 32, 10)
    };

    let batches: Vec<String> = (0..n_batches)
        .map(|i| csv::to_csv_string(&KIND.generate_clean(batch_rows, 100 + i as u64)))
        .collect();
    let total_rows = (n_batches * batch_rows) as u64;

    let mut group = c.benchmark_group("source_ingest");
    group.sample_size(samples);
    group.throughput(Throughput::Elements(total_rows));

    group.bench_with_input(BenchmarkId::new("path", "direct"), &(), |b, ()| {
        b.iter(|| {
            let (engine, ingest, verdicts) = StreamEngine::builder()
                .queue_capacity(n_batches)
                .start(fitted_validator(train_rows))
                .expect("engine starts");
            for payload in &batches {
                let batch = csv::from_csv_str(payload, &KIND.schema()).expect("decode");
                ingest.submit(batch).expect("engine open");
            }
            drop(ingest);
            assert_eq!(verdicts.count(), n_batches);
            engine.shutdown();
        });
    });

    group.bench_with_input(BenchmarkId::new("path", "loopback_tcp"), &(), |b, ()| {
        b.iter(|| {
            let (engine, ingest, verdicts) = StreamEngine::builder()
                .queue_capacity(n_batches)
                .start(fitted_validator(train_rows))
                .expect("engine starts");
            let source =
                NetListenerSource::bind("127.0.0.1:0", KIND.schema()).expect("loopback bind");
            let addr = source.local_addr();
            let config = DquagConfig::builder()
                .source_poll_interval(Duration::from_millis(5))
                .build()
                .expect("config in range");
            let runtime = SourceRuntime::builder()
                .config(&config.source)
                .source(Box::new(source))
                .start(ingest)
                .expect("runtime starts");

            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut reply = String::new();
            for payload in &batches {
                let frame = format!("BATCH csv {}\n{payload}", payload.len());
                writer.write_all(frame.as_bytes()).expect("frame");
                reply.clear();
                reader.read_line(&mut reply).expect("reply");
                assert!(reply.starts_with("ACK "), "{reply}");
            }
            drop(writer);
            drop(reader);
            runtime.shutdown().expect("runtime drains");
            assert_eq!(verdicts.count(), n_batches);
            engine.shutdown();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_source_ingest);
criterion_main!(benches);
