//! Criterion micro-benchmark: dataset generation and error injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dquag_datagen::{inject_hidden, inject_ordinary, DatasetKind, HiddenError, OrdinaryError};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    const ROWS: usize = 5_000;
    group.throughput(Throughput::Elements(ROWS as u64));
    for kind in DatasetKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                b.iter(|| kind.generate_clean(ROWS, 3).n_rows());
            },
        );
    }
    group.finish();
}

fn bench_injection(c: &mut Criterion) {
    let clean = DatasetKind::CreditCard.generate_clean(5_000, 5);
    let cols = DatasetKind::CreditCard.default_ordinary_error_columns();
    let mut group = c.benchmark_group("error_injection");
    for error in OrdinaryError::ALL {
        group.bench_with_input(
            BenchmarkId::new("ordinary", error.label()),
            &clean,
            |b, clean| {
                b.iter(|| {
                    let mut df = clean.clone();
                    let mut rng = dquag_datagen::rng(7);
                    inject_ordinary(&mut df, error, &cols, 0.2, &mut rng).n_cells()
                });
            },
        );
    }
    group.bench_with_input(
        BenchmarkId::new("hidden", "Conflicts-1"),
        &clean,
        |b, clean| {
            b.iter(|| {
                let mut df = clean.clone();
                let mut rng = dquag_datagen::rng(7);
                inject_hidden(
                    &mut df,
                    HiddenError::CreditEmploymentBeforeBirth,
                    0.2,
                    &mut rng,
                )
                .n_rows()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_generation, bench_injection);
criterion_main!(benches);
