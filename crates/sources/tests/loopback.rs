//! Loopback end-to-end tests: batches submitted over TCP and HTTP must
//! produce verdicts identical to direct `IngestHandle` submission, error
//! replies must keep connections usable, and the `STATS` surfaces must
//! serve the live engine statistics.

use dquag_core::DquagConfig;
use dquag_datagen::{inject_ordinary, DatasetKind, OrdinaryError};
use dquag_sources::NetListenerSource;
use dquag_sources::SourceRuntime;
use dquag_stream::StreamStats;
use dquag_stream::{IngestHandle, StreamEngine, StreamItem, StreamOutcome, VerdictStream};
use dquag_tabular::{csv, DataFrame};
use dquag_validate::{build_validator, Validator, ValidatorKind};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const KIND: DatasetKind = DatasetKind::HotelBooking;

/// A fitted statistics-based validator: cheap to fit and fully
/// deterministic, so two independent fits on the same clean data judge any
/// batch identically.
fn fitted_validator() -> Box<dyn Validator> {
    let clean = KIND.generate_clean(600, 11);
    let config = DquagConfig::fast();
    let mut validator = build_validator(ValidatorKind::DeequAuto, &config);
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

/// A mixed clean/corrupted batch feed.
fn batches(n: usize) -> Vec<DataFrame> {
    let columns = KIND.default_ordinary_error_columns();
    (0..n)
        .map(|i| {
            let mut batch = KIND.generate_clean(40, 900 + i as u64);
            if i % 2 == 1 {
                let mut rng = dquag_datagen::rng(1_000 + i as u64);
                inject_ordinary(
                    &mut batch,
                    OrdinaryError::NumericAnomalies,
                    &columns,
                    0.4,
                    &mut rng,
                );
            }
            batch
        })
        .collect()
}

fn start_engine() -> (StreamEngine, IngestHandle, VerdictStream) {
    StreamEngine::builder()
        .queue_capacity(64)
        .start(fitted_validator())
        .expect("engine starts")
}

/// Start an engine fronted by a TCP listener runtime; returns the pieces a
/// client needs.
fn start_networked() -> (StreamEngine, VerdictStream, SourceRuntime, SocketAddr) {
    let (engine, ingest, verdicts) = start_engine();
    let source =
        NetListenerSource::bind("127.0.0.1:0", KIND.schema()).expect("loopback bind succeeds");
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");
    (engine, verdicts, runtime, addr)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

fn send_frame(stream: &mut TcpStream, format: &str, payload: &[u8]) -> String {
    stream
        .write_all(format!("BATCH {format} {}\n", payload.len()).as_bytes())
        .expect("header write");
    stream.write_all(payload).expect("payload write");
    read_reply_line(stream)
}

fn read_reply_line(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply read");
    line.trim_end().to_string()
}

/// The verdicts of a finished run, in submission order.
fn collect(verdicts: VerdictStream) -> Vec<StreamItem> {
    verdicts.collect()
}

fn outcome_verdicts(items: &[StreamItem]) -> Vec<&dquag_validate::Verdict> {
    items
        .iter()
        .map(|item| match &item.outcome {
            StreamOutcome::Verdict(verdict) => verdict,
            other => panic!("expected a verdict, got {other}"),
        })
        .collect()
}

#[test]
fn tcp_batches_produce_identical_verdicts_to_direct_submission() {
    let feed = batches(6);

    // Direct path: submit straight into the handle.
    let (engine, ingest, verdicts) = start_engine();
    for batch in &feed {
        assert!(ingest
            .submit(batch.clone())
            .expect("engine open")
            .is_enqueued());
    }
    drop(ingest);
    let direct = collect(verdicts);
    engine.shutdown();

    // Network path: the same batches as CSV frames over loopback TCP.
    let (engine, verdicts, runtime, addr) = start_networked();
    let mut stream = connect(addr);
    for (i, batch) in feed.iter().enumerate() {
        let reply = send_frame(&mut stream, "csv", csv::to_csv_string(batch).as_bytes());
        assert!(
            reply.starts_with(&format!("ACK {i} ")),
            "batch {i} reply: {reply}"
        );
    }
    stream.write_all(b"QUIT\n").expect("quit write");
    assert_eq!(read_reply_line(&mut stream), "BYE");
    drop(stream);
    runtime.shutdown().expect("runtime drains");
    let networked = collect(verdicts);
    engine.shutdown();

    // The acceptance criterion: byte-for-byte identical verdicts, in the
    // same submission order.
    assert_eq!(direct.len(), networked.len());
    assert_eq!(outcome_verdicts(&direct), outcome_verdicts(&networked));
    for (a, b) in direct.iter().zip(&networked) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.n_rows, b.n_rows);
    }
}

#[test]
fn http_post_produces_identical_verdicts_and_stats_endpoint_serves_json() {
    let feed = batches(3);

    let (engine, ingest, verdicts) = start_engine();
    for batch in &feed {
        ingest.submit(batch.clone()).expect("engine open");
    }
    drop(ingest);
    let direct = collect(verdicts);
    engine.shutdown();

    let (engine, verdicts, runtime, addr) = start_networked();
    for batch in &feed {
        let body = csv::to_csv_string(batch);
        let response = http_request(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nHost: test\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(response.starts_with("HTTP/1.1 202"), "{response}");
        assert!(response.contains("\"status\": \"enqueued\""), "{response}");
    }

    // GET /stats serves the live engine statistics as StreamStats JSON.
    let response = http_request(addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body");
    let stats: StreamStats = serde_json::from_str(body).expect("stats parse");
    assert_eq!(stats.submitted, feed.len() as u64);

    runtime.shutdown().expect("runtime drains");
    let networked = collect(verdicts);
    engine.shutdown();

    assert_eq!(outcome_verdicts(&direct), outcome_verdicts(&networked));
}

#[test]
fn stats_surfaces_report_the_active_spec_and_checkpoints_record_it() {
    use dquag_core::spec::{ValidatorSpec, Voting};

    let spec = ValidatorSpec::ensemble(
        vec![ValidatorSpec::backend("deequ-auto"), ValidatorSpec::drift()],
        Voting::Any,
    );

    let (engine, ingest, verdicts) = start_engine();
    let source = NetListenerSource::bind("127.0.0.1:0", KIND.schema())
        .expect("loopback bind succeeds")
        .with_spec(spec.clone());
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .spec(spec.clone())
        .start(ingest)
        .expect("runtime starts");

    // GET /stats still parses as StreamStats (extra keys are invisible to
    // shape-typed readers) *and* carries the spec for spec-aware clients.
    let response = http_request(addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("response has a body");
    let _stats: StreamStats = serde_json::from_str(body).expect("stats parse");
    let value: serde::Value = serde_json::from_str(body).expect("body is JSON");
    let active = value
        .as_object()
        .and_then(|map| map.get("active_spec"))
        .expect("active_spec key present");
    let reported: ValidatorSpec = serde_json::from_value(active).expect("spec parses");
    assert_eq!(reported, spec);

    // The raw-protocol STATS line reports the same document.
    let mut stream = connect(addr);
    stream.write_all(b"STATS\n").expect("stats write");
    let reply = read_reply_line(&mut stream);
    let json = reply.strip_prefix("STATS ").expect("STATS prefix");
    assert!(json.contains("active_spec"), "{json}");
    drop(stream);

    // The shutdown checkpoint records which validator tree was serving.
    let checkpoint = runtime.shutdown().expect("runtime drains");
    assert_eq!(checkpoint.spec.as_ref(), Some(&spec));

    drop(verdicts);
    engine.shutdown();
}

fn http_request(addr: SocketAddr, request: &str) -> String {
    let mut stream = connect(addr);
    stream.write_all(request.as_bytes()).expect("request write");
    let mut response = String::new();
    // Connection: close — read to EOF.
    stream.read_to_string(&mut response).expect("response read");
    response
}

#[test]
fn ndjson_frames_decode_to_the_same_verdicts_as_csv() {
    let batch = batches(1).remove(0);
    let csv_payload = csv::to_csv_string(&batch);
    // Re-encode the same rows as NDJSON.
    let schema = batch.schema().clone();
    let mut ndjson = String::new();
    for row in batch.iter_rows() {
        let mut obj = Vec::new();
        for (field, value) in schema.fields().iter().zip(row) {
            let encoded = match value {
                dquag_tabular::Value::Null => "null".to_string(),
                dquag_tabular::Value::Number(n) => serde_json::to_string(&n).unwrap(),
                dquag_tabular::Value::Text(s) => serde_json::to_string(&s).unwrap(),
            };
            obj.push(format!(
                "{}: {encoded}",
                serde_json::to_string(&field.name).unwrap()
            ));
        }
        ndjson.push_str(&format!("{{{}}}\n", obj.join(", ")));
    }

    let (engine, verdicts, runtime, addr) = start_networked();
    let mut stream = connect(addr);
    let reply_csv = send_frame(&mut stream, "csv", csv_payload.as_bytes());
    assert!(reply_csv.starts_with("ACK 0"), "{reply_csv}");
    let reply_ndjson = send_frame(&mut stream, "ndjson", ndjson.as_bytes());
    assert!(reply_ndjson.starts_with("ACK 1"), "{reply_ndjson}");
    drop(stream);
    runtime.shutdown().expect("runtime drains");
    let items = collect(verdicts);
    engine.shutdown();

    assert_eq!(items.len(), 2);
    let verdicts = outcome_verdicts(&items);
    assert_eq!(verdicts[0], verdicts[1], "same rows, same verdict");
}

#[test]
fn error_replies_keep_the_connection_usable_and_stats_flow() {
    let (engine, verdicts, runtime, addr) = start_networked();
    let mut stream = connect(addr);

    // A decodable-length frame with undecodable content: ERR, framing kept.
    let garbage = b"not,a,hotel,booking\n1,2,3,4\n";
    let reply = send_frame(&mut stream, "csv", garbage);
    assert!(reply.starts_with("ERR "), "{reply}");

    // An empty batch (header only) is refused without touching the engine.
    let header_only = csv::to_csv_string(&DataFrame::new(KIND.schema()));
    let reply = send_frame(&mut stream, "csv", header_only.as_bytes());
    assert_eq!(reply, "ERR empty batch");

    // The connection still works: a valid frame is acknowledged…
    let batch = batches(1).remove(0);
    let reply = send_frame(&mut stream, "csv", csv::to_csv_string(&batch).as_bytes());
    assert!(reply.starts_with("ACK 0 "), "{reply}");

    // …and STATS reports exactly one accepted submission.
    stream.write_all(b"STATS\n").expect("stats write");
    let reply = read_reply_line(&mut stream);
    let json = reply.strip_prefix("STATS ").expect("STATS prefix");
    let stats: StreamStats = serde_json::from_str(json).expect("stats parse");
    assert_eq!(stats.submitted, 1);

    drop(stream);

    // Oversized frames and unknown commands get error replies on their own
    // connections (both close the connection to resynchronise framing).
    let mut stream = connect(addr);
    stream
        .write_all(format!("BATCH csv {}\n", usize::MAX).as_bytes())
        .expect("oversized header write");
    let reply = read_reply_line(&mut stream);
    assert!(reply.starts_with("ERR "), "{reply}");
    assert!(reply.contains("limit"), "{reply}");
    drop(stream);

    let mut stream = connect(addr);
    stream.write_all(b"NONSENSE\n").expect("write");
    let reply = read_reply_line(&mut stream);
    assert!(reply.starts_with("ERR unknown command"), "{reply}");
    drop(stream);

    // HTTP errors: bad body → 400, wrong path → 404.
    let response = http_request(
        addr,
        "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Type: text/csv\r\nContent-Length: 3\r\n\r\nabc",
    );
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    let response = http_request(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    runtime.shutdown().expect("runtime drains");
    let items = collect(verdicts);
    engine.shutdown();
    // Only the one valid frame reached the engine.
    assert_eq!(items.len(), 1);
}

#[test]
fn shutdown_interrupts_deliveries_blocked_on_a_full_engine() {
    // Regression test: a handler blocked in a Block-policy submit (full
    // engine, consumer not draining) must not wedge runtime shutdown.
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(1)
        .start(fitted_validator())
        .expect("engine starts");
    let source =
        NetListenerSource::bind("127.0.0.1:0", KIND.schema()).expect("loopback bind succeeds");
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");

    // Nobody reads `verdicts`, so the engine's outstanding bound
    // (queue_capacity + replicas = 2) fills and the third delivery blocks.
    let client = std::thread::spawn(move || {
        let mut stream = connect(addr);
        let feed = batches(3);
        let mut replies = Vec::new();
        for batch in &feed {
            replies.push(send_frame(
                &mut stream,
                "csv",
                csv::to_csv_string(batch).as_bytes(),
            ));
        }
        replies
    });

    // Give the client time to wedge on the third frame, then shut down:
    // this must return instead of hanging on the blocked handler thread.
    std::thread::sleep(Duration::from_millis(300));
    runtime
        .shutdown()
        .expect("shutdown returns despite the blocked delivery");

    let replies = client.join().expect("client finishes");
    assert!(replies[0].starts_with("ACK 0 "), "{replies:?}");
    assert!(replies[1].starts_with("ACK 1 "), "{replies:?}");
    assert_eq!(replies[2], "ERR engine closed", "{replies:?}");

    // The two accepted batches are still drained and emitted.
    let items: Vec<StreamItem> = verdicts.collect();
    assert_eq!(items.len(), 2);
    engine.shutdown();
}

#[test]
fn concurrent_tcp_producers_all_get_acknowledged() {
    let (engine, verdicts, runtime, addr) = start_networked();
    let feed = batches(4);
    let producers: Vec<_> = feed
        .into_iter()
        .map(|batch| {
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                let reply = send_frame(&mut stream, "csv", csv::to_csv_string(&batch).as_bytes());
                assert!(reply.starts_with("ACK "), "{reply}");
            })
        })
        .collect();
    for producer in producers {
        producer.join().expect("producer succeeds");
    }
    runtime.shutdown().expect("runtime drains");
    let items = collect(verdicts);
    let stats = engine.shutdown();
    assert_eq!(items.len(), 4);
    assert_eq!(stats.emitted, 4);
    // Re-sequencing still holds: seqs come back 0..4 in order.
    let seqs: Vec<u64> = items.iter().map(|item| item.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3]);
}
