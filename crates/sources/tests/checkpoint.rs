//! Checkpoint durability tests: seeded randomized write→restore round
//! trips, corrupted/truncated-checkpoint recovery, and the kill/restart
//! test proving a restarted engine resumes from the persisted checkpoint
//! without reprocessing or skipping a batch.

use dquag_core::DquagConfig;
use dquag_datagen::DatasetKind;
use dquag_sources::{Checkpoint, DirWatcherSource, SourceRuntime};
use dquag_stream::{StreamEngine, StreamStats};
use dquag_tabular::csv;
use dquag_validate::{build_validator, Validator, ValidatorKind};
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

const KIND: DatasetKind = DatasetKind::CreditCard;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dquag_ckpt_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn random_stats(rng: &mut rand::rngs::StdRng) -> StreamStats {
    StreamStats {
        submitted: rng.gen_range(0..100_000u64),
        dropped: rng.gen_range(0..1_000u64),
        rejected: rng.gen_range(0..1_000u64),
        timed_out: rng.gen_range(0..100u64),
        emitted: rng.gen_range(0..100_000u64),
        dirty: rng.gen_range(0..50_000u64),
        failed: rng.gen_range(0..100u64),
        deadline_exceeded: rng.gen_range(0..100u64),
        late_discarded: rng.gen_range(0..100u64),
        queue_depth: rng.gen_range(0..64usize),
        in_flight: rng.gen_range(0..16usize),
        rows_validated: rng.gen_range(0..10_000_000u64),
        rows_per_sec: rng.gen_range(0.0..1e6f64),
        p50_latency: Duration::from_nanos(rng.gen_range(0..10_000_000_000u64)),
        p99_latency: Duration::from_nanos(rng.gen_range(0..60_000_000_000u64)),
        uptime: Duration::from_nanos(rng.gen_range(0..86_400_000_000_000u64)),
        replicas: rng.gen_range(1..32usize),
    }
}

#[test]
fn randomized_checkpoints_round_trip_through_disk() {
    // Seeded property test: any offsets map + any stats snapshot must
    // survive save → load bit-exactly.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
    let dir = temp_dir("roundtrip");
    let path = dir.join("state.json");
    for case in 0..50 {
        let n_sources = rng.gen_range(0..5usize);
        let mut offsets = BTreeMap::new();
        for s in 0..n_sources {
            // The JSON data model stores numbers as f64 (like JavaScript),
            // so exact round trips hold up to 2^53 — far beyond any real
            // batch count.
            offsets.insert(format!("source-{s}"), rng.gen_range(0..1u64 << 53));
        }
        let checkpoint = Checkpoint::new(offsets, random_stats(&mut rng));
        checkpoint.save(&path).expect("save succeeds");
        let restored = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(restored, checkpoint, "case {case}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_and_truncated_checkpoints_recover_to_fresh_start() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let dir = temp_dir("corrupt");
    let path = dir.join("state.json");
    let mut offsets = BTreeMap::new();
    offsets.insert("net".to_string(), 42);
    let checkpoint = Checkpoint::new(offsets, random_stats(&mut rng));
    checkpoint.save(&path).expect("save succeeds");
    let full = std::fs::read_to_string(&path).unwrap();

    // Truncation at any byte boundary must never yield a bogus checkpoint:
    // either the parse fails (recover → None) or — for the zero-length
    // prefix of a valid document — there is no way to truncate into another
    // valid checkpoint, since JSON objects need their closing brace.
    for cut in [0, 1, full.len() / 4, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).unwrap();
        assert!(
            Checkpoint::load(&path).is_err(),
            "cut at {cut} must not parse"
        );
        assert_eq!(Checkpoint::recover(&path).unwrap(), None, "cut at {cut}");
    }

    // Arbitrary garbage and a wrong-shaped document also recover to None.
    std::fs::write(&path, "you have been hacked").unwrap();
    assert_eq!(Checkpoint::recover(&path).unwrap(), None);
    std::fs::write(&path, "{\"version\": 1}").unwrap();
    assert_eq!(Checkpoint::recover(&path).unwrap(), None);

    // A missing file is simply a fresh start.
    std::fs::remove_file(&path).unwrap();
    assert_eq!(Checkpoint::recover(&path).unwrap(), None);
    std::fs::remove_dir_all(&dir).ok();
}

// --- the kill/restart test -------------------------------------------------

/// A cheap deterministic validator for the resume test.
fn fitted_validator() -> Box<dyn Validator> {
    let clean = KIND.generate_clean(400, 5);
    let mut validator = build_validator(ValidatorKind::DeequAuto, &DquagConfig::fast());
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

/// Write `count` uniquely-sized CSV drops into the inbox, starting at
/// sequence number `start`. The distinct row counts let the test tell
/// exactly which files were validated.
fn drop_files(inbox: &Path, start: usize, count: usize) -> Vec<usize> {
    let mut row_counts = Vec::new();
    for i in start..start + count {
        let n_rows = 20 + i; // unique per file
        let batch = KIND.generate_clean(n_rows, 3_000 + i as u64);
        // Atomic drop: write beside the inbox, then rename in.
        let tmp = inbox.join(format!("batch_{i:03}.csv.writing"));
        csv::write_csv(&batch, &tmp).expect("write drop");
        std::fs::rename(&tmp, inbox.join(format!("batch_{i:03}.csv"))).expect("rename drop");
        row_counts.push(n_rows);
    }
    row_counts
}

/// One engine+runtime incarnation over the inbox: consume `expect_items`
/// verdicts, shut down (which checkpoints), and return the observed batch
/// sizes and the final engine stats.
fn run_incarnation(
    inbox: &Path,
    checkpoint_path: &Path,
    expect_items: usize,
) -> (Vec<usize>, StreamStats, Checkpoint) {
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .checkpoint_path(checkpoint_path)
        .checkpoint_interval(Duration::from_millis(50))
        .build()
        .expect("config in range");

    let restored = Checkpoint::recover(checkpoint_path).expect("no version rollback in this test");
    let mut engine_builder = StreamEngine::builder().queue_capacity(32);
    if let Some(checkpoint) = &restored {
        engine_builder = engine_builder.restore_stats(checkpoint.stats.clone());
    }
    let (engine, ingest, mut verdicts) = engine_builder
        .start(fitted_validator())
        .expect("engine starts");

    let mut runtime_builder = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(DirWatcherSource::new(inbox, KIND.schema())));
    if let Some(checkpoint) = restored {
        runtime_builder = runtime_builder.restore(checkpoint);
    }
    let runtime = runtime_builder.start(ingest).expect("runtime starts");

    let mut sizes = Vec::new();
    for _ in 0..expect_items {
        let item = verdicts.recv().expect("stream stays open while waiting");
        sizes.push(item.n_rows);
    }
    // "Kill": stop the incarnation. Shutdown drains the watcher and writes
    // the final checkpoint.
    let checkpoint = runtime.shutdown().expect("shutdown checkpoints");
    let stats = engine.shutdown();
    (sizes, stats, checkpoint)
}

#[test]
fn restarted_engine_resumes_from_checkpoint_without_reprocessing_or_skipping() {
    let inbox = temp_dir("resume_inbox");
    let state = temp_dir("resume_state");
    let checkpoint_path = state.join("dquag.ckpt.json");

    // First incarnation: three drops, all validated, then killed.
    let first_sizes = drop_files(&inbox, 0, 3);
    let (seen_first, stats_first, checkpoint_first) = run_incarnation(&inbox, &checkpoint_path, 3);
    assert_eq!(
        seen_first, first_sizes,
        "first run validates each drop once"
    );
    assert_eq!(stats_first.emitted, 3);
    assert_eq!(checkpoint_first.offset_for("dir"), 3);
    assert!(checkpoint_path.exists(), "kill leaves a checkpoint behind");

    // Between incarnations: three new drops arrive.
    let second_sizes = drop_files(&inbox, 3, 3);

    // Second incarnation restores the checkpoint.
    let (seen_second, stats_second, checkpoint_second) =
        run_incarnation(&inbox, &checkpoint_path, 3);

    // No batch reprocessed: only the three new files are validated…
    assert_eq!(seen_second, second_sizes, "second run sees only new drops");
    // …and none skipped: every drop of both runs is in done/, exactly once.
    let mut done: Vec<String> = std::fs::read_dir(inbox.join("done"))
        .expect("done dir exists")
        .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    done.sort();
    let expected: Vec<String> = (0..6).map(|i| format!("batch_{i:03}.csv")).collect();
    assert_eq!(done, expected);

    // Offsets continue across the restart instead of restarting from zero.
    assert_eq!(checkpoint_second.offset_for("dir"), 6);

    // Restored statistics continue too: the second engine's counters include
    // the first incarnation's traffic.
    assert_eq!(stats_second.emitted, 6);
    assert_eq!(stats_second.submitted, 6);
    assert_eq!(
        stats_second.rows_validated,
        (first_sizes.iter().sum::<usize>() + second_sizes.iter().sum::<usize>()) as u64
    );
    assert!(
        stats_second.uptime >= stats_first.uptime,
        "uptime accumulates across incarnations"
    );

    std::fs::remove_dir_all(&inbox).ok();
    std::fs::remove_dir_all(&state).ok();
}

#[test]
fn watcher_quarantines_poison_files_and_keeps_the_feed_alive() {
    let inbox = temp_dir("poison_inbox");
    std::fs::write(inbox.join("bad.csv"), "this,is\nnot,matching,anything\n").unwrap();
    let good_sizes = drop_files(&inbox, 0, 2);

    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let (engine, ingest, mut verdicts) = StreamEngine::builder()
        .queue_capacity(8)
        .start(fitted_validator())
        .expect("engine starts");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(DirWatcherSource::new(&inbox, KIND.schema())))
        .start(ingest)
        .expect("runtime starts");

    let mut sizes = vec![
        verdicts.recv().expect("first verdict").n_rows,
        verdicts.recv().expect("second verdict").n_rows,
    ];
    sizes.sort_unstable();
    let mut expected = good_sizes.clone();
    expected.sort_unstable();
    assert_eq!(sizes, expected);

    let checkpoint = runtime.shutdown().expect("shutdown");
    engine.shutdown();
    assert_eq!(checkpoint.offset_for("dir"), 2);
    assert!(
        inbox.join("failed").join("bad.csv").exists(),
        "poison file is quarantined, not retried forever"
    );
    std::fs::remove_dir_all(&inbox).ok();
}
