//! Many-connection soak: the worker-pool listener holds dozens of open
//! sockets and serves concurrent clients on a *fixed* thread count — the
//! old thread-per-connection design grew one OS thread per socket — while
//! producing verdicts identical to direct in-process submission, and
//! answering over-capacity connects with a deterministic `REJECTED`/`503`.
//!
//! This is the one test in the crate that asserts on the process thread
//! count, so it lives alone in its own test binary: sibling tests spawning
//! engines would make `/proc/self/status` readings meaningless.

use dquag_core::{DquagConfig, ServingConfig};
use dquag_datagen::DatasetKind;
use dquag_sources::{NetListenerSource, SourceRuntime};
use dquag_stream::{StreamEngine, StreamItem, StreamOutcome};
use dquag_tabular::csv;
use dquag_telemetry::{Telemetry, TelemetryOptions};
use dquag_validate::{build_validator, Validator, ValidatorKind, Verdict};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND: DatasetKind = DatasetKind::HotelBooking;
const WORKERS: usize = 4;
const MAX_CONNECTIONS: usize = 32;
const HOLDERS: usize = 24;
const CLIENT_THREADS: usize = 12;
const BATCHES_PER_CLIENT: usize = 16;

fn fitted_validator() -> Box<dyn Validator> {
    let clean = KIND.generate_clean(400, 11);
    let config = DquagConfig::fast();
    let mut validator = build_validator(ValidatorKind::DeequAuto, &config);
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

/// Batches with pairwise-distinct row counts, so a verdict can be matched
/// to its batch across engines by `n_rows` alone.
fn batches() -> Vec<dquag_tabular::DataFrame> {
    (0..CLIENT_THREADS * BATCHES_PER_CLIENT)
        .map(|i| KIND.generate_clean(20 + i, 500 + i as u64))
        .collect()
}

/// OS threads in this process, from `/proc/self/status` on Linux; `None`
/// elsewhere (the soak still runs, only the thread assertions are skipped).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|value| value.trim().parse().ok())
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn open_connections(telemetry: &Telemetry) -> f64 {
    telemetry
        .registry()
        .gauge(
            "dquag_source_open_connections",
            "Connections currently open on the network listener",
        )
        .get()
}

/// Submit one batch on a fresh connection, retrying while the listener is
/// at capacity. Returns the number of `REJECTED` refusals absorbed.
fn submit_with_retry(addr: SocketAddr, payload: &str) -> u64 {
    for rejects in 0..2000u64 {
        let mut stream = connect(addr);
        let frame = format!("BATCH csv {}\n{payload}", payload.len());
        stream.write_all(frame.as_bytes()).expect("frame write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply read");
        let reply = reply.trim_end();
        if reply.starts_with("ACK ") {
            return rejects;
        }
        assert!(
            reply.starts_with("REJECTED"),
            "only capacity refusals are retried: {reply:?}"
        );
        drop(stream);
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("batch never accepted after 2000 attempts");
}

/// Map each verdict to its batch's row count (all row counts distinct).
fn verdicts_by_rows(items: &[StreamItem]) -> BTreeMap<usize, &Verdict> {
    let mut map = BTreeMap::new();
    for item in items {
        let verdict = match &item.outcome {
            StreamOutcome::Verdict(verdict) => verdict,
            other => panic!("expected a verdict, got {other}"),
        };
        let previous = map.insert(item.n_rows, verdict);
        assert!(
            previous.is_none(),
            "duplicate delivery for the {}-row batch",
            item.n_rows
        );
    }
    map
}

#[test]
fn soak_fixed_threads_overflow_refusals_and_verdict_parity() {
    let all_batches = batches();

    // Ground truth first, on a fully-shut-down engine, so its threads are
    // gone before any thread-count baseline is taken.
    let direct: Vec<StreamItem> = {
        let (engine, ingest, verdicts) = StreamEngine::builder()
            .queue_capacity(512)
            .start(fitted_validator())
            .expect("engine starts");
        for batch in &all_batches {
            ingest.submit(batch.clone()).expect("direct submit");
        }
        drop(ingest);
        let items: Vec<StreamItem> = verdicts.collect();
        engine.shutdown();
        items
    };
    assert_eq!(direct.len(), all_batches.len());
    let direct_verdicts = verdicts_by_rows(&direct);

    let baseline_threads = thread_count();

    // Networked engine behind the pooled listener.
    let telemetry = Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 64,
        dump_on_error: false,
        ..TelemetryOptions::default()
    });
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(512)
        .start(fitted_validator())
        .expect("engine starts");
    let source = NetListenerSource::bind("127.0.0.1:0", KIND.schema())
        .expect("loopback bind succeeds")
        .with_serving(ServingConfig {
            workers: WORKERS,
            max_connections: MAX_CONNECTIONS,
            ..ServingConfig::default()
        })
        .with_telemetry(Arc::clone(&telemetry));
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");

    let serving_threads = thread_count();
    if let (Some(before), Some(after)) = (baseline_threads, serving_threads) {
        // Engine replicas + supervisor + the fixed worker pool: a small
        // constant, nowhere near one-per-connection.
        assert!(
            after - before <= WORKERS + 8,
            "server stack spawned {} threads",
            after - before
        );
    }

    // Saturate the accept cap with idle holders and demand deterministic
    // refusals: raw peers get a REJECTED line, HTTP peers a fast 503.
    let mut holders: Vec<TcpStream> = (0..MAX_CONNECTIONS).map(|_| connect(addr)).collect();
    wait_until("holders to register", || {
        open_connections(&telemetry) >= MAX_CONNECTIONS as f64
    });
    if let (Some(before), Some(now)) = (serving_threads, thread_count()) {
        assert!(
            now.saturating_sub(before) <= 4,
            "{MAX_CONNECTIONS} held connections grew the process by {} threads",
            now - before
        );
    }
    {
        let mut raw = connect(addr);
        raw.write_all(b"STATS\n").expect("write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply read");
        assert!(reply.starts_with("REJECTED"), "{reply:?}");
    }

    // Free part of the cap and run the concurrent soak through what's left.
    holders.truncate(HOLDERS);
    wait_until("freed slots to drain", || {
        open_connections(&telemetry) <= HOLDERS as f64
    });

    let payloads: Vec<String> = all_batches.iter().map(csv::to_csv_string).collect();
    let mut clients = Vec::new();
    for chunk in payloads.chunks(BATCHES_PER_CLIENT) {
        let chunk = chunk.to_vec();
        clients.push(std::thread::spawn(move || {
            let mut rejects = 0u64;
            for payload in &chunk {
                rejects += submit_with_retry(addr, payload);
            }
            rejects
        }));
    }
    let client_rejects: u64 = clients
        .into_iter()
        .map(|handle| handle.join().expect("client thread"))
        .sum();

    // After the churn of ~200 short-lived connections, the server stack is
    // still the same fixed pool — no per-connection threads were spawned.
    if let (Some(before), Some(now)) = (serving_threads, thread_count()) {
        assert!(
            now.saturating_sub(before) <= 6,
            "soak grew the process by {} threads",
            now - before
        );
    }

    drop(holders);
    runtime.shutdown().expect("runtime drains");
    let networked: Vec<StreamItem> = verdicts.collect();
    engine.shutdown();

    // Exactly-once delivery and verdict parity with direct submission:
    // same row-count keys (nothing skipped, nothing replayed), and for
    // every batch the identical verdict.
    assert_eq!(networked.len(), all_batches.len());
    let networked_verdicts = verdicts_by_rows(&networked);
    assert_eq!(direct_verdicts, networked_verdicts);

    // The deterministic refusal above is counted; client-side retries (if
    // the soak ever hit the cap) are the same counter.
    let counted_rejects = telemetry
        .registry()
        .counter(
            "dquag_source_accept_rejects_total",
            "Connections refused because the listener was at max_connections",
        )
        .get();
    assert!(counted_rejects > client_rejects, "{counted_rejects}");
}
