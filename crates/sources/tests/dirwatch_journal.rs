//! Kill/restart exactly-once delivery for the directory watcher.
//!
//! The inbox journal records a file as delivered *before* it is moved to
//! `done/`, so a crash in the window between those two steps (the worst
//! case: the batch already reached the engine but the file still sits in
//! the inbox) must not replay the file on restart. This test injects that
//! exact crash and asserts that across both process generations every
//! file is delivered exactly once — zero replayed, zero skipped.

use dquag_core::DquagConfig;
use dquag_datagen::DatasetKind;
use dquag_sources::{DirWatcherSource, SourceRuntime};
use dquag_stream::{StreamEngine, StreamItem, StreamOutcome};
use dquag_tabular::csv;
use dquag_validate::{build_validator, Validator, ValidatorKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const KIND: DatasetKind = DatasetKind::HotelBooking;
const FILES: usize = 5;
const CRASH_AFTER: u64 = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dquag_journal_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn fitted_validator() -> Box<dyn Validator> {
    let clean = KIND.generate_clean(400, 11);
    let config = DquagConfig::fast();
    let mut validator = build_validator(ValidatorKind::DeequAuto, &config);
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

fn csv_names(dir: &Path) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if name.ends_with(".csv") {
                names.insert(name);
            }
        }
    }
    names
}

fn delivered_rows(items: &[StreamItem]) -> Vec<usize> {
    items
        .iter()
        .map(|item| {
            assert!(
                matches!(item.outcome, StreamOutcome::Verdict(_)),
                "expected a verdict, got {}",
                item.outcome
            );
            item.n_rows
        })
        .collect()
}

/// Run one "process generation": engine + dirwatch source over `inbox`,
/// optionally crashing after `crash_after` deliveries. Waits until
/// `settled` reports the filesystem has reached its terminal state for
/// this generation, then tears everything down (the runtime's drain
/// flushes in-flight batches) and returns the delivered row counts.
fn run_generation(
    inbox: &Path,
    crash_after: Option<u64>,
    settled: impl Fn() -> bool,
) -> Vec<usize> {
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(64)
        .start(fitted_validator())
        .expect("engine starts");
    let mut source = DirWatcherSource::new(inbox, KIND.schema());
    if let Some(n) = crash_after {
        source = source.with_crash_between_journal_and_rename(n);
    }
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");

    let deadline = Instant::now() + Duration::from_secs(20);
    while !settled() {
        assert!(
            Instant::now() < deadline,
            "generation never reached its terminal filesystem state"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Grace period so the batch delivered right at the settle point has
    // been handed to the engine before we start draining.
    std::thread::sleep(Duration::from_millis(100));

    runtime.shutdown().expect("runtime drains");
    let items: Vec<StreamItem> = verdicts.collect();
    engine.shutdown();
    delivered_rows(&items)
}

#[test]
fn kill_between_journal_and_rename_replays_nothing_and_skips_nothing() {
    let inbox = temp_dir("exactly_once").join("inbox");
    std::fs::create_dir_all(&inbox).expect("inbox dir");
    let done = inbox.join("done");
    let journal = inbox.join("inbox.journal.json");

    // Five drops with pairwise-distinct row counts. The watcher replays in
    // file-name order, so the crash lands on a known file.
    let mut expected_rows = BTreeSet::new();
    for i in 0..FILES {
        let rows = 40 + i;
        let batch = KIND.generate_clean(rows, 900 + i as u64);
        csv::write_csv(&batch, &inbox.join(format!("drop_{i}.csv"))).expect("drop written");
        expected_rows.insert(rows);
    }

    // Generation 1 crashes after the third delivery, in the window where
    // the journal already records the file but it still sits in the inbox.
    let first = run_generation(&inbox, Some(CRASH_AFTER), || {
        csv_names(&done).len() == CRASH_AFTER as usize - 1
            && std::fs::read_to_string(&journal)
                .map(|text| text.contains("drop_2.csv"))
                .unwrap_or(false)
    });
    assert_eq!(
        first.len(),
        CRASH_AFTER as usize,
        "crashed after {CRASH_AFTER} deliveries: {first:?}"
    );

    // The crash left drop_2.csv behind in the inbox (journal written,
    // rename never ran) — the poisoned state a plain watcher would replay.
    assert!(csv_names(&inbox).contains("drop_2.csv"));
    assert_eq!(csv_names(&inbox).len(), FILES - CRASH_AFTER as usize + 1);
    assert_eq!(csv_names(&done).len(), CRASH_AFTER as usize - 1);

    // Generation 2: a fresh source over the same directory. Recovery moves
    // the journaled file to done/ WITHOUT redelivering it, then the two
    // untouched files flow normally.
    let second = run_generation(&inbox, None, || {
        csv_names(&done).len() == FILES && csv_names(&inbox).is_empty()
    });
    assert_eq!(
        second.len(),
        FILES - CRASH_AFTER as usize,
        "only the never-journaled files are delivered: {second:?}"
    );

    // Exactly once across the kill/restart: the union covers all five row
    // counts, the intersection is empty.
    let first_set: BTreeSet<usize> = first.iter().copied().collect();
    let second_set: BTreeSet<usize> = second.iter().copied().collect();
    assert_eq!(first_set.len(), first.len(), "no duplicates in gen 1");
    assert_eq!(second_set.len(), second.len(), "no duplicates in gen 2");
    assert!(
        first_set.is_disjoint(&second_set),
        "replayed across restart: {:?}",
        first_set.intersection(&second_set).collect::<Vec<_>>()
    );
    let union: BTreeSet<usize> = first_set.union(&second_set).copied().collect();
    assert_eq!(union, expected_rows, "every drop delivered exactly once");

    // Terminal filesystem state: all five in done/, inbox clean, journal
    // empty of entries.
    assert_eq!(csv_names(&done).len(), FILES);
    assert!(csv_names(&inbox).is_empty(), "{:?}", csv_names(&inbox));
    let journal_text = std::fs::read_to_string(&journal).expect("journal readable");
    assert!(
        !journal_text.contains("drop_"),
        "journal still lists deliveries: {journal_text}"
    );
}
