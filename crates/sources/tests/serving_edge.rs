//! Serving-edge behaviour tests: bounded accepts answer overflow with a
//! fast `503`/`REJECTED`, HTTP keep-alive serves sequential requests on
//! one socket (with request cap and idle timeout), malformed
//! `Content-Length` headers are `400`s that name the problem, raw frames
//! shaped like HTTP versions stay raw, and a failed worker hand-off is
//! survived instead of panicking the listener.

use dquag_core::{DquagConfig, ServingConfig};
use dquag_datagen::DatasetKind;
use dquag_sources::{NetListenerSource, SourceRuntime};
use dquag_stream::{StreamEngine, VerdictStream};
use dquag_tabular::csv;
use dquag_telemetry::{Telemetry, TelemetryOptions};
use dquag_validate::{build_validator, Validator, ValidatorKind};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KIND: DatasetKind = DatasetKind::HotelBooking;

fn fitted_validator() -> Box<dyn Validator> {
    let clean = KIND.generate_clean(400, 11);
    let config = DquagConfig::fast();
    let mut validator = build_validator(ValidatorKind::DeequAuto, &config);
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

fn telemetry() -> Arc<Telemetry> {
    Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 64,
        dump_on_error: false,
        ..TelemetryOptions::default()
    })
}

/// Engine + listener with an explicit [`ServingConfig`] and shared
/// telemetry, plus the optional dispatch-failure injection.
fn start_serving(
    serving: ServingConfig,
    inject_dispatch_failures: usize,
) -> (
    Arc<Telemetry>,
    StreamEngine,
    VerdictStream,
    SourceRuntime,
    SocketAddr,
) {
    let telemetry = telemetry();
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(64)
        .start(fitted_validator())
        .expect("engine starts");
    let mut source = NetListenerSource::bind("127.0.0.1:0", KIND.schema())
        .expect("loopback bind succeeds")
        .with_serving(serving)
        .with_telemetry(Arc::clone(&telemetry));
    source.inject_dispatch_failures(inject_dispatch_failures);
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");
    (telemetry, engine, verdicts, runtime, addr)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The listener's open-connection gauge (shared registry handle).
fn open_connections(telemetry: &Telemetry) -> f64 {
    telemetry
        .registry()
        .gauge(
            "dquag_source_open_connections",
            "Connections currently open on the network listener",
        )
        .get()
}

/// One request/response exchange on an already-open connection, reading
/// exactly `Content-Length` body bytes so the socket stays usable for the
/// next request (keep-alive).
fn http_exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> (String, String) {
    stream.write_all(request.as_bytes()).expect("request write");
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("header read");
        assert!(n > 0, "connection closed mid-response; head so far: {head}");
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let content_length = head
        .lines()
        .find(|line| line.to_ascii_lowercase().starts_with("content-length:"))
        .and_then(|line| line.split_once(':'))
        .and_then(|(_, value)| value.trim().parse::<usize>().ok())
        .expect("response has Content-Length");
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body read");
    (head, String::from_utf8(body).expect("UTF-8 body"))
}

fn post_ingest_keep_alive(body: &str) -> String {
    format!(
        "POST /ingest HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One-shot request on its own connection, reading to EOF
/// (`Connection: close` semantics).
fn http_request(addr: SocketAddr, request: &str) -> String {
    let mut stream = connect(addr);
    stream.write_all(request.as_bytes()).expect("request write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    response
}

fn read_reply_line(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply read");
    line.trim_end().to_string()
}

#[test]
fn overflow_connections_get_fast_503_and_rejected_replies() {
    let (telemetry, engine, verdicts, runtime, addr) = start_serving(
        ServingConfig {
            workers: 2,
            max_connections: 2,
            ..ServingConfig::default()
        },
        0,
    );

    // Fill the cap with idle holders and wait until both are registered.
    let holders: Vec<TcpStream> = (0..2).map(|_| connect(addr)).collect();
    wait_until("holders to register", || {
        open_connections(&telemetry) >= 2.0
    });

    // Raw-protocol overflow: first line answered REJECTED, then close.
    let mut raw = connect(addr);
    raw.write_all(b"STATS\n").expect("write");
    let reply = read_reply_line(&mut raw);
    assert!(
        reply.starts_with("REJECTED"),
        "overflow raw reply: {reply:?}"
    );
    drop(raw);

    // HTTP overflow: a fast 503, not a hung or reset connection.
    let response = http_request(addr, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(response.contains("connection capacity"), "{response}");

    let rejects = telemetry
        .registry()
        .counter(
            "dquag_source_accept_rejects_total",
            "Connections refused because the listener was at max_connections",
        )
        .get();
    assert!(rejects >= 2, "both overflow accepts counted: {rejects}");
    let overflow_events = telemetry
        .recorder()
        .dump()
        .iter()
        .filter(|event| event.kind.label() == "accept_overflow")
        .count();
    assert!(overflow_events >= 2, "flight events: {overflow_events}");

    // Freeing a slot restores service for new connections.
    drop(holders);
    wait_until("holders to drain", || open_connections(&telemetry) < 1.0);
    let mut stream = connect(addr);
    stream.write_all(b"STATS\n").expect("write");
    let reply = read_reply_line(&mut stream);
    assert!(reply.starts_with("STATS "), "{reply}");
    drop(stream);

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_socket() {
    let (telemetry, engine, verdicts, runtime, addr) = start_serving(ServingConfig::default(), 0);

    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Three requests on one socket: two ingests and a stats read.
    for (i, batch) in [KIND.generate_clean(30, 100), KIND.generate_clean(31, 101)]
        .iter()
        .enumerate()
    {
        let body = csv::to_csv_string(batch);
        let (head, body) = http_exchange(&mut stream, &mut reader, &post_ingest_keep_alive(&body));
        assert!(head.starts_with("HTTP/1.1 202"), "request {i}: {head}");
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert!(body.contains("\"status\": \"enqueued\""), "{body}");
    }
    let (head, body) = http_exchange(
        &mut stream,
        &mut reader,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("Connection: keep-alive"), "{head}");
    assert!(body.contains("\"submitted\""), "{body}");

    // Reuse is visible to operators.
    let reuse = telemetry
        .registry()
        .counter(
            "dquag_source_keepalive_reuse_total",
            "HTTP requests served on an already-used kept-alive connection",
        )
        .get();
    assert!(reuse >= 2, "second and third requests were reuse: {reuse}");

    // A request that does not ask for keep-alive is answered
    // `Connection: close`, and the socket then reads to EOF — exactly the
    // pre-keep-alive contract.
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("request write");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read to EOF");
    assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");
    assert!(rest.contains("Connection: close"), "{rest}");
    drop(stream);

    runtime.shutdown().expect("runtime drains");
    let items: Vec<_> = verdicts.collect();
    assert_eq!(items.len(), 2, "both kept-alive ingests reached the engine");
    engine.shutdown();
}

#[test]
fn request_cap_and_idle_timeout_recycle_connections() {
    let (_telemetry, engine, verdicts, runtime, addr) = start_serving(
        ServingConfig {
            max_requests_per_connection: 2,
            idle_timeout: Duration::from_millis(300),
            ..ServingConfig::default()
        },
        0,
    );

    // Request cap: the second response on a kept-alive socket announces
    // the close even though the client asked for keep-alive.
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let request = "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
    let (head, _) = http_exchange(&mut stream, &mut reader, request);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    let (head, _) = http_exchange(&mut stream, &mut reader, request);
    assert!(
        head.contains("Connection: close"),
        "request cap reached: {head}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("EOF after the cap");
    assert!(rest.is_empty(), "{rest}");
    drop(stream);

    // Idle timeout: a silent connection is closed by the server.
    let mut idle = connect(addr);
    let mut buffer = [0u8; 16];
    let started = Instant::now();
    let n = idle
        .read(&mut buffer)
        .expect("server closes the idle socket");
    assert_eq!(n, 0, "EOF, not data");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "closed by the idle timeout, not the test timeout"
    );

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

#[test]
fn malformed_content_length_is_a_400_naming_the_value() {
    let (_telemetry, engine, verdicts, runtime, addr) = start_serving(ServingConfig::default(), 0);

    // Unparsable values were previously swallowed into "no header" and
    // answered 411; they are client errors and must say what was wrong.
    for bad in ["abc", "-1", "1e3"] {
        let response = http_request(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Type: text/csv\r\nContent-Length: {bad}\r\n\r\n"
            ),
        );
        assert!(response.starts_with("HTTP/1.1 400"), "{bad}: {response}");
        assert!(
            response.contains(&format!("invalid Content-Length `{bad}`")),
            "{bad}: {response}"
        );
    }

    // Conflicting duplicates: refuse instead of last-one-wins.
    let response = http_request(
        addr,
        "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\nContent-Length: 20\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(
        response.contains("conflicting Content-Length"),
        "{response}"
    );

    // A genuinely absent header is still 411.
    let response = http_request(
        addr,
        "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Type: text/csv\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 411"), "{response}");

    runtime.shutdown().expect("runtime drains");
    let items: Vec<_> = verdicts.collect();
    assert!(items.is_empty(), "nothing reached the engine");
    engine.shutdown();
}

#[test]
fn raw_frames_shaped_like_http_versions_stay_raw() {
    let (_telemetry, engine, verdicts, runtime, addr) = start_serving(ServingConfig::default(), 0);

    // Ends in HTTP/1.1 but is not METHOD SP PATH SP VERSION: the old
    // suffix heuristic sent an HTTP response to a raw-protocol peer.
    let mut stream = connect(addr);
    stream.write_all(b"BATCH csv HTTP/1.1\n").expect("write");
    let reply = read_reply_line(&mut stream);
    assert!(reply.starts_with("ERR "), "raw ERR expected: {reply}");
    assert!(
        !reply.starts_with("HTTP/"),
        "must not be an HTTP response: {reply}"
    );
    drop(stream);

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

#[test]
fn dispatch_failure_is_logged_counted_and_survived() {
    // One injected hand-off failure: the old accept loop panicked the
    // whole listener on spawn failure; now the socket is dropped, the
    // failure counted, and the very next accept is served.
    let (telemetry, engine, verdicts, runtime, addr) = start_serving(ServingConfig::default(), 1);

    let mut doomed = connect(addr);
    doomed.write_all(b"STATS\n").expect("write");
    let mut reply = String::new();
    // The socket was closed without a reply (EOF) — or reset; either way,
    // no hang and no panic.
    let _ = doomed.read_to_string(&mut reply);
    assert!(reply.is_empty(), "dropped without replying: {reply:?}");
    drop(doomed);

    let errors = telemetry
        .registry()
        .counter(
            "dquag_source_accept_errors_total",
            "Accepted sockets dropped because handing them to a worker failed",
        )
        .get();
    assert_eq!(errors, 1);

    // The listener is still serving.
    let mut stream = connect(addr);
    stream.write_all(b"STATS\n").expect("write");
    let reply = read_reply_line(&mut stream);
    assert!(reply.starts_with("STATS "), "{reply}");
    drop(stream);

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}
