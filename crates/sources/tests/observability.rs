//! Loopback tests for the observability surfaces: correct `Content-Type` /
//! `Content-Length` headers on `GET /stats` and `GET /metrics`, a parseable
//! Prometheus exposition covering the full pipeline (≥ 12 series), and the
//! raw-protocol `METRICS` command's length-framed payload.

use dquag_core::DquagConfig;
use dquag_datagen::DatasetKind;
use dquag_sources::{NetListenerSource, SourceRuntime};
use dquag_stream::{StreamEngine, VerdictStream};
use dquag_tabular::{csv, DataFrame, Field, Schema, Value};
use dquag_telemetry::{DataTelemetryOptions, Telemetry, TelemetryOptions};
use dquag_validate::{build_validator, DriftSpec, DriftValidator, Validator, ValidatorKind};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const KIND: DatasetKind = DatasetKind::HotelBooking;

fn fitted_validator() -> Box<dyn Validator> {
    let clean = KIND.generate_clean(400, 11);
    let config = DquagConfig::fast();
    let mut validator = build_validator(ValidatorKind::DeequAuto, &config);
    validator.fit(&clean).expect("fitting succeeds");
    validator
}

/// A full telemetry-enabled stack: engine, listener and runtime sharing one
/// bundle, so a single scrape covers the whole pipeline.
fn start_observed() -> (
    Arc<Telemetry>,
    StreamEngine,
    VerdictStream,
    SourceRuntime,
    SocketAddr,
) {
    let telemetry = Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 64,
        dump_on_error: false,
        ..TelemetryOptions::default()
    });
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(64)
        .telemetry(Arc::clone(&telemetry))
        .start(fitted_validator())
        .expect("engine starts");
    let source = NetListenerSource::bind("127.0.0.1:0", KIND.schema())
        .expect("loopback bind succeeds")
        .with_telemetry(Arc::clone(&telemetry));
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .telemetry(Arc::clone(&telemetry))
        .start(ingest)
        .expect("runtime starts");
    (telemetry, engine, verdicts, runtime, addr)
}

fn http_request(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(request.as_bytes()).expect("request write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    response
}

/// Split an HTTP/1.1 response into (status line, headers, body).
fn parse_response(response: &str) -> (&str, Vec<(String, String)>, &str) {
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let mut lines = head.split("\r\n");
    let status = lines.next().expect("status line");
    let headers = lines
        .map(|line| {
            let (name, value) = line.split_once(':').expect("header line");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> &'a str {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing header {name}"))
}

/// Minimal Prometheus text-format 0.0.4 parser: validates comment and
/// sample lines, returns (family names, full series identifiers).
fn parse_prometheus(text: &str) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut families = BTreeSet::new();
    let mut series = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            let keyword = parts.next().expect("comment keyword");
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment `{line}`"
            );
            let name = parts.next().expect("comment metric name");
            if keyword == "TYPE" {
                let kind = parts.next().expect("TYPE kind");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "bad TYPE `{line}`"
                );
                families.insert(name.to_string());
            }
            continue;
        }
        let (identifier, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable sample value in `{line}`"
        );
        if let Some(brace) = identifier.find('{') {
            assert!(identifier.ends_with('}'), "unbalanced labels in `{line}`");
            let labels = &identifier[brace + 1..identifier.len() - 1];
            for pair in labels.split(',') {
                let (k, v) = pair.split_once('=').expect("label pair");
                assert!(!k.is_empty(), "empty label name in `{line}`");
                assert!(
                    v.starts_with('"') && v.ends_with('"'),
                    "unquoted label value in `{line}`"
                );
            }
        }
        series.insert(identifier.to_string());
    }
    (families, series)
}

fn post_batches(addr: SocketAddr, n: usize) {
    for i in 0..n {
        let batch = KIND.generate_clean(30, 700 + i as u64);
        let body = csv::to_csv_string(&batch);
        let response = http_request(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nHost: test\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(response.starts_with("HTTP/1.1 202"), "{response}");
    }
}

#[test]
fn stats_and_metrics_send_correct_content_type_and_length() {
    let (_telemetry, engine, verdicts, runtime, addr) = start_observed();

    let response = http_request(addr, "GET /stats HTTP/1.1\r\nHost: test\r\n\r\n");
    let (status, headers, body) = parse_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(header(&headers, "content-type"), "application/json");
    assert_eq!(
        header(&headers, "content-length"),
        body.len().to_string(),
        "Content-Length must match the body byte count"
    );

    let response = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    let (status, headers, body) = parse_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(
        header(&headers, "content-type"),
        "text/plain; version=0.0.4"
    );
    assert_eq!(header(&headers, "content-length"), body.len().to_string());

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

#[test]
fn metrics_endpoint_covers_the_pipeline_and_parses_as_prometheus() {
    let (_telemetry, engine, mut verdicts, runtime, addr) = start_observed();

    post_batches(addr, 4);
    // Drain the four verdicts so emission-side series move too.
    for _ in 0..4 {
        verdicts.recv().expect("verdict arrives");
    }
    // A hot swap, so the generation gauge and swap event are live.
    engine
        .swap_validator(fitted_validator())
        .expect("swap succeeds");

    let response = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    let (status, _headers, body) = parse_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");

    let (families, series) = parse_prometheus(body);
    assert!(
        series.len() >= 12,
        "expected ≥ 12 series, got {}: {series:?}",
        series.len()
    );
    for required in [
        "dquag_stage_duration_seconds_count{stage=\"decode\"}",
        "dquag_stage_duration_seconds_count{stage=\"queue_wait\"}",
        "dquag_stage_duration_seconds_count{stage=\"emit\"}",
        "dquag_stream_batches_submitted_total",
        "dquag_stream_batches_emitted_total",
        "dquag_stream_queue_depth",
        "dquag_stream_in_flight",
        "dquag_stream_generation",
        "dquag_stream_drops_total{policy=\"reject\"}",
        "dquag_stream_batch_latency_seconds_count",
        "dquag_source_connections_total",
        "dquag_source_decode_errors_total",
    ] {
        assert!(series.contains(required), "missing series `{required}`");
    }
    assert!(families.contains("dquag_stage_duration_seconds"));

    // The moving parts moved: 4 decodes, 4 submissions, generation 1.
    assert!(body.contains("dquag_stage_duration_seconds_count{stage=\"decode\"} 4"));
    assert!(body.contains("dquag_stream_batches_submitted_total 4"));
    assert!(body.contains("dquag_stream_generation 1"));

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

#[test]
fn raw_metrics_command_is_length_framed_and_matches_http() {
    let (_telemetry, engine, verdicts, runtime, addr) = start_observed();
    post_batches(addr, 1);

    let stream = TcpStream::connect(addr).expect("loopback connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(b"METRICS\n").expect("command write");

    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    let len: usize = line
        .trim_end()
        .strip_prefix("METRICS ")
        .expect("METRICS prefix")
        .parse()
        .expect("payload length");
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).expect("payload read");
    let text = String::from_utf8(payload).expect("UTF-8 payload");

    let (_families, series) = parse_prometheus(&text);
    assert!(
        series.len() >= 12,
        "raw METRICS too small: {}",
        series.len()
    );
    // Connection stays usable after a length-framed reply.
    writer.write_all(b"QUIT\n").expect("quit write");
    line.clear();
    reader.read_line(&mut line).expect("bye line");
    assert_eq!(line.trim_end(), "BYE");

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

/// For every histogram family in a scrape, the `+Inf` bucket must equal
/// `_count` — the invariant Prometheus rate() math relies on.
#[test]
fn every_histogram_family_has_inf_bucket_equal_to_count() {
    let (_telemetry, engine, mut verdicts, runtime, addr) = start_observed();
    post_batches(addr, 3);
    for _ in 0..3 {
        verdicts.recv().expect("verdict arrives");
    }

    let response = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    let (status, _headers, body) = parse_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");

    // identifier → value, for every sample line in the scrape.
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (identifier, value) = line.rsplit_once(' ').expect("sample line");
        samples.insert(identifier.to_string(), value.parse().expect("value"));
    }

    let mut histograms_checked = 0;
    for (identifier, inf_value) in &samples {
        let Some(bucket_at) = identifier.find("_bucket{") else {
            continue;
        };
        let labels = &identifier[bucket_at + "_bucket{".len()..identifier.len() - 1];
        if !labels.split(',').any(|pair| pair == "le=\"+Inf\"") {
            continue;
        }
        // Rebuild the matching `_count` identifier by dropping the `le`
        // label (and the braces entirely if `le` was the only one).
        let rest: Vec<&str> = labels
            .split(',')
            .filter(|pair| !pair.starts_with("le="))
            .collect();
        let name = &identifier[..bucket_at];
        let count_identifier = if rest.is_empty() {
            format!("{name}_count")
        } else {
            format!("{name}_count{{{}}}", rest.join(","))
        };
        let count = samples
            .get(&count_identifier)
            .unwrap_or_else(|| panic!("no `{count_identifier}` for `{identifier}`"));
        assert_eq!(
            inf_value, count,
            "+Inf bucket of `{identifier}` disagrees with `{count_identifier}`"
        );
        histograms_checked += 1;
    }
    assert!(
        histograms_checked >= 3,
        "expected ≥ 3 histogram series, checked {histograms_checked}"
    );

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

fn drift_schema() -> Schema {
    Schema::new(vec![
        Field::numeric("amount", ""),
        Field::numeric("delay", ""),
    ])
}

fn drift_frame(shift: f64, n: usize) -> DataFrame {
    let mut df = DataFrame::new(drift_schema());
    for i in 0..n {
        df.push_row(vec![
            Value::Number(shift + (i % 17) as f64),
            Value::Number((i % 5) as f64),
        ])
        .expect("row matches schema");
    }
    df
}

/// A telemetry stack with the data layer on and a drift validator serving,
/// so per-column gauges and the scoreboard have something to say.
fn start_drift_observed() -> (
    Arc<Telemetry>,
    StreamEngine,
    VerdictStream,
    SourceRuntime,
    SocketAddr,
) {
    let telemetry = Telemetry::with_options(TelemetryOptions {
        flight_recorder_capacity: 64,
        dump_on_error: false,
        data: Some(DataTelemetryOptions {
            top_k: 4,
            ..DataTelemetryOptions::default()
        }),
    });
    let mut validator = DriftValidator::new(DriftSpec::default());
    validator.fit(&drift_frame(0.0, 160)).expect("fit succeeds");
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(64)
        .telemetry(Arc::clone(&telemetry))
        .start(Box::new(validator))
        .expect("engine starts");
    let source = NetListenerSource::bind("127.0.0.1:0", drift_schema())
        .expect("loopback bind succeeds")
        .with_telemetry(Arc::clone(&telemetry));
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .telemetry(Arc::clone(&telemetry))
        .start(ingest)
        .expect("runtime starts");
    (telemetry, engine, verdicts, runtime, addr)
}

fn post_drift_batch(addr: SocketAddr, shift: f64) {
    let body = csv::to_csv_string(&drift_frame(shift, 40));
    let response = http_request(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nHost: test\r\nContent-Type: text/csv\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(response.starts_with("HTTP/1.1 202"), "{response}");
}

#[test]
fn drift_scoreboard_is_served_over_http_and_raw() {
    let (_telemetry, engine, mut verdicts, runtime, addr) = start_drift_observed();

    // One clean batch, then two with `amount` shifted far off-profile.
    post_drift_batch(addr, 0.0);
    post_drift_batch(addr, 500.0);
    post_drift_batch(addr, 500.0);
    for _ in 0..3 {
        verdicts.recv().expect("verdict arrives");
    }

    // The scoreboard names `amount` first, past its threshold.
    let response = http_request(addr, "GET /drift HTTP/1.1\r\nHost: test\r\n\r\n");
    let (status, headers, body) = parse_response(&response);
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert_eq!(header(&headers, "content-type"), "application/json");
    let first_column = body
        .split_once("\"column\": ")
        .or_else(|| body.split_once("\"column\":"))
        .map(|(_, rest)| rest.trim_start())
        .expect("scoreboard has columns");
    assert!(
        first_column.starts_with("\"amount\""),
        "`amount` should rank first: {body}"
    );
    assert!(body.contains("\"drifted\""), "{body}");

    // The gauges stay inside the cardinality budget and name the drifter.
    let response = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    let (_status, _headers, metrics_body) = parse_response(&response);
    let (_families, series) = parse_prometheus(metrics_body);
    assert!(
        series
            .iter()
            .any(|s| s.starts_with("dquag_column_drift{") && s.contains("column=\"amount\"")),
        "no drift gauge for `amount`: {series:?}"
    );
    let ratio_series = series
        .iter()
        .filter(|s| s.starts_with("dquag_column_drift_threshold_ratio{"))
        .count();
    assert!(
        (1..=4).contains(&ratio_series),
        "ratio gauges outside the top-K budget: {ratio_series}"
    );

    // The raw protocol serves the same scoreboard on one line.
    let stream = TcpStream::connect(addr).expect("loopback connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(b"DRIFT\n").expect("command write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    assert!(line.starts_with("DRIFT {"), "{line}");
    assert!(line.contains("amount"), "{line}");

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

/// A bundle without the data layer refuses `/drift` with a distinct
/// message, while `/metrics` keeps serving.
#[test]
fn drift_surfaces_refuse_when_the_data_layer_is_off() {
    let (_telemetry, engine, verdicts, runtime, addr) = start_observed();

    let response = http_request(addr, "GET /drift HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(
        response.contains("data telemetry not enabled"),
        "{response}"
    );

    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    stream.write_all(b"DRIFT\n").expect("command write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    assert_eq!(line.trim_end(), "ERR data telemetry not enabled");

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}

#[test]
fn without_telemetry_the_surfaces_refuse_cleanly() {
    let (engine, ingest, verdicts) = StreamEngine::builder()
        .queue_capacity(8)
        .start(fitted_validator())
        .expect("engine starts");
    let source =
        NetListenerSource::bind("127.0.0.1:0", KIND.schema()).expect("loopback bind succeeds");
    let addr = source.local_addr();
    let config = DquagConfig::builder()
        .source_poll_interval(Duration::from_millis(10))
        .build()
        .expect("config in range");
    let runtime = SourceRuntime::builder()
        .config(&config.source)
        .source(Box::new(source))
        .start(ingest)
        .expect("runtime starts");

    let response = http_request(addr, "GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    assert!(response.contains("telemetry not enabled"), "{response}");

    let mut stream = TcpStream::connect(addr).expect("loopback connect");
    stream.write_all(b"METRICS\n").expect("command write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    assert_eq!(line.trim_end(), "ERR telemetry not enabled");

    runtime.shutdown().expect("runtime drains");
    drop(verdicts);
    engine.shutdown();
}
