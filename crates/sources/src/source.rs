//! The [`Source`] trait, the [`SourceSink`] delivery handle and the shared
//! error type.

use dquag_stream::{IngestHandle, StreamStats, SubmitOutcome};
use dquag_tabular::DataFrame;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one blocked submission attempt waits before re-checking the
/// stop flag. Under the `Block` backpressure policy a full engine would
/// otherwise park the delivering thread in an uninterruptible wait, and
/// runtime shutdown could never join it.
const SUBMIT_STOP_SLICE: Duration = Duration::from_millis(50);

/// Errors surfaced by the source-adapter layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// An I/O problem (socket, filesystem) the source could not recover from.
    Io(String),
    /// A payload could not be decoded into a batch (bad CSV, bad NDJSON,
    /// schema mismatch).
    Decode(String),
    /// The peer violated the wire protocol (bad frame header, oversized
    /// frame, truncated payload).
    Frame(String),
    /// The streaming engine's ingestion side is closed; the source cannot
    /// deliver anything anymore.
    EngineClosed,
    /// A checkpoint could not be written or parsed.
    Checkpoint(String),
    /// A checkpoint was written by a newer build than this one supports.
    /// Deliberately distinct from [`Checkpoint`]: the lenient recovery path
    /// treats corruption as a fresh start but must *refuse* to run (and
    /// eventually overwrite the file) on a version rollback.
    ///
    /// [`Checkpoint`]: SourceError::Checkpoint
    CheckpointVersion {
        /// Version found in the file.
        found: u64,
        /// Newest version this build can read.
        supported: u64,
    },
    /// The runtime was configured inconsistently (duplicate source names,
    /// out-of-range settings).
    InvalidConfig(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io(msg) => write!(f, "source I/O error: {msg}"),
            SourceError::Decode(msg) => write!(f, "batch decode error: {msg}"),
            SourceError::Frame(msg) => write!(f, "wire protocol error: {msg}"),
            SourceError::EngineClosed => {
                f.write_str("the stream engine's ingestion side is closed")
            }
            SourceError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            SourceError::CheckpointVersion { found, supported } => write!(
                f,
                "checkpoint version {found} is newer than this build supports ({supported}); \
                 refusing to overwrite it — upgrade the build or move the file aside"
            ),
            SourceError::InvalidConfig(msg) => write!(f, "invalid source configuration: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e.to_string())
    }
}

/// What one [`Source::poll`] call accomplished; the supervisor uses this to
/// decide between polling again immediately, backing off, or retiring the
/// source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// Work was done (batches delivered, connections accepted); poll again
    /// right away.
    Progressed,
    /// Nothing to do right now; sleep one poll interval before the next call.
    Idle,
    /// The source is permanently finished (a bounded replay completed); the
    /// supervisor drains and retires it.
    Exhausted,
}

/// A source's delivery handle: the one way batches enter the engine.
///
/// The sink couples submission with offset accounting — every batch accepted
/// by the engine advances this source's durable offset, which is what the
/// checkpointer persists. Cloneable, so listener-style sources can hand it
/// to per-connection handler threads.
#[derive(Clone)]
pub struct SourceSink {
    name: Arc<str>,
    ingest: IngestHandle,
    offset: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl SourceSink {
    pub(crate) fn new(
        name: &str,
        ingest: IngestHandle,
        offset: Arc<AtomicU64>,
        stop: Arc<AtomicBool>,
    ) -> Self {
        Self {
            name: Arc::from(name),
            ingest,
            offset,
            stop,
        }
    }

    /// The owning source's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submit one batch to the engine under its backpressure policy. On
    /// acceptance the source's durable offset advances by one; a dropped or
    /// rejected submission does not move the offset (the batch produced no
    /// outcome, so a restart must not believe it was delivered).
    ///
    /// Under the `Block` policy this waits for queue space like a direct
    /// `submit` would, but in stop-aware slices: when the runtime raises the
    /// stop flag mid-wait, the call gives up with
    /// [`SourceError::EngineClosed`] instead of parking the thread in an
    /// uninterruptible Condvar wait that shutdown could never join. The
    /// undelivered batch stays with the caller (a watched file remains in
    /// the inbox; a network client gets an error reply and retries).
    pub fn deliver(&self, batch: DataFrame) -> Result<SubmitOutcome, SourceError> {
        loop {
            if self.should_stop() {
                return Err(SourceError::EngineClosed);
            }
            match self.ingest.submit_timeout(batch.clone(), SUBMIT_STOP_SLICE) {
                // Only the Block policy produces TimedOut: the slice ran out
                // with the engine still full. Keep waiting (that is what
                // Block means) unless asked to stop.
                Ok(SubmitOutcome::TimedOut) => continue,
                Ok(outcome) => {
                    if outcome.is_enqueued() {
                        self.offset.fetch_add(1, Ordering::SeqCst);
                    }
                    return Ok(outcome);
                }
                Err(_) => return Err(SourceError::EngineClosed),
            }
        }
    }

    /// Batches this source has successfully delivered, including those
    /// restored from a checkpoint.
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::SeqCst)
    }

    /// Live engine statistics (served by the `STATS` command and
    /// `GET /stats`).
    pub fn stats(&self) -> StreamStats {
        self.ingest.stats()
    }

    /// True once the runtime has asked every source to wind down. Handler
    /// threads and long poll loops must check this regularly.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// One adapter feeding the streaming engine from the outside world.
///
/// A source's lifecycle, driven by its [`crate::SourceRuntime`] supervisor
/// thread:
///
/// 1. [`start`] — bring the source up (store the sink, create directories,
///    arm the listener). Called once, synchronously, before the runtime
///    returns from `start`, so a failure here fails deployment startup
///    loudly instead of inside a background thread.
/// 2. [`poll`] — repeatedly: make progress without blocking for long.
/// 3. [`drain`] — stop requested: finish in-flight work (join connection
///    handlers, let the last accepted frame be delivered).
/// 4. [`shutdown`] — release resources.
///
/// Offset reporting: [`offset`] returns how many batches the source has
/// durably delivered (its sink advances the counter on every accepted
/// submission, so this is the same counter the runtime's checkpointer
/// reads — there is one offset per source, not two). The runtime persists
/// these offsets in the [`crate::Checkpoint`] and seeds them back through
/// `start`'s `resume_from` on restart. Implementations must keep reporting
/// the final value after [`shutdown`].
///
/// [`start`]: Source::start
/// [`poll`]: Source::poll
/// [`drain`]: Source::drain
/// [`shutdown`]: Source::shutdown
/// [`offset`]: Source::offset
pub trait Source: Send {
    /// Unique name of this source within its runtime: the checkpoint key.
    fn name(&self) -> &str;

    /// Bring the source up. `resume_from` is the offset restored from the
    /// checkpoint (`0` on a fresh start); the sink's offset counter is
    /// already seeded with it.
    fn start(&mut self, sink: &SourceSink, resume_from: u64) -> Result<(), SourceError>;

    /// Make progress: accept connections, replay files, deliver batches.
    /// Must return promptly (the supervisor handles sleeping between calls).
    fn poll(&mut self, sink: &SourceSink) -> Result<PollOutcome, SourceError>;

    /// Finish in-flight work ahead of shutdown. Called after the stop flag
    /// is set, so `sink.should_stop()` is already true.
    fn drain(&mut self, sink: &SourceSink);

    /// Release resources. The source will not be polled again.
    fn shutdown(&mut self);

    /// Batches durably delivered so far (see the trait docs).
    fn offset(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(SourceError::Io("refused".into())
            .to_string()
            .contains("refused"));
        assert!(SourceError::Decode("bad csv".into())
            .to_string()
            .contains("bad csv"));
        assert!(SourceError::Frame("oversized".into())
            .to_string()
            .contains("oversized"));
        assert!(SourceError::EngineClosed.to_string().contains("closed"));
        let io: SourceError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
