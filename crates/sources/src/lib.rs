//! # dquag-sources
//!
//! Source adapters connecting the streaming engine (`dquag-stream`) to the
//! outside world — the layer that turns the in-process pipeline into a
//! deployable monitoring *service*. The paper frames DQuaG as the
//! validation stage of a serving pipeline; this crate supplies the serving
//! edge: restartable, offset-tracked ingestion from sockets and file drops,
//! with durable checkpoints so a restarted deployment resumes exactly where
//! it left off.
//!
//! * **[`Source`]** — the adapter trait: `start`/`poll`/`drain`/`shutdown`
//!   plus durable offset reporting. Batches enter through a [`SourceSink`],
//!   which couples engine submission with offset accounting.
//! * **[`SourceRuntime`]** — the supervisor: multiplexes N sources into one
//!   `IngestHandle` (one supervisor thread each), survives per-source
//!   errors, checkpoints on an interval and on drain.
//! * **[`NetListenerSource`]** — one TCP listener speaking both a
//!   line-framed raw protocol (`BATCH csv 512\n…` → `ACK 0 100`) and
//!   minimal HTTP/1.1 (`POST /ingest`, `GET /stats`) with keep-alive,
//!   multiplexing all connections over a small fixed worker pool with a
//!   bounded accept policy (`ServingConfig`): overflow is answered with a
//!   fast `503`/`REJECTED`, never an unbounded thread.
//! * **[`DirWatcherSource`]** — a polling directory watcher replaying CSV
//!   file drops via `dquag-tabular`, moving processed files to `done/`
//!   (and undecodable ones to `failed/`), with an inbox journal making
//!   delivery exactly-once per file across kill/restart.
//! * **[`Checkpoint`]** — per-source offsets + the engine's cumulative
//!   [`StreamStats`](dquag_stream::StreamStats), written atomically as
//!   JSON; restored through [`SourceRuntimeBuilder::restore`] and
//!   `StreamEngineBuilder::restore_stats`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dquag_core::DquagConfig;
//! use dquag_sources::{Checkpoint, DirWatcherSource, NetListenerSource, SourceRuntime};
//! use dquag_stream::StreamEngine;
//! use dquag_validate::{build_validator, ValidatorKind};
//! # fn get_clean() -> dquag_tabular::DataFrame { unimplemented!() }
//!
//! let clean = get_clean();
//! let config = DquagConfig::builder()
//!     .source_bind_addr("127.0.0.1:7431")
//!     .checkpoint_path("state/dquag.ckpt.json")
//!     .build()
//!     .unwrap();
//! let mut validator = build_validator(ValidatorKind::Dquag, &config);
//! validator.fit(&clean).unwrap();
//!
//! // Restore: a prior checkpoint resumes offsets and statistics.
//! let restored = Checkpoint::recover(std::path::Path::new("state/dquag.ckpt.json")).unwrap();
//! let mut engine_builder = StreamEngine::builder().stream_config(&config.stream);
//! if let Some(checkpoint) = &restored {
//!     engine_builder = engine_builder.restore_stats(checkpoint.stats.clone());
//! }
//! let (engine, ingest, verdicts) = engine_builder.start(validator).unwrap();
//!
//! let mut runtime_builder = SourceRuntime::builder()
//!     .config(&config.source)
//!     .source(Box::new(
//!         NetListenerSource::from_config(&config.source, clean.schema().clone()).unwrap(),
//!     ))
//!     .source(Box::new(DirWatcherSource::new("drops", clean.schema().clone())));
//! if let Some(checkpoint) = restored {
//!     runtime_builder = runtime_builder.restore(checkpoint);
//! }
//! let runtime = runtime_builder.start(ingest).unwrap();
//!
//! for item in verdicts {
//!     println!("{item}");
//! }
//! let final_checkpoint = runtime.shutdown().unwrap();
//! println!("checkpointed at offsets {:?}", final_checkpoint.offsets);
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod checkpoint;
mod conn;
mod decode;
mod dirwatch;
mod net;
mod poll;
mod runtime;
mod source;

pub use checkpoint::{Checkpoint, CheckpointWarning, CHECKPOINT_VERSION};
pub use decode::{decode_batch, ndjson_to_frame, WireFormat};
pub use dirwatch::DirWatcherSource;
pub use net::NetListenerSource;
pub use runtime::{SourceRuntime, SourceRuntimeBuilder};
pub use source::{PollOutcome, Source, SourceError, SourceSink};
