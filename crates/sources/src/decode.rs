//! Wire-payload decoding: CSV and NDJSON bytes into typed [`DataFrame`]s.

use crate::SourceError;
use dquag_tabular::{csv, DataFrame, DataType, Schema, Value as Cell};
use serde_json::Value as Json;
use std::fmt;
use std::str::FromStr;

/// The payload encodings the network adapters accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// Header row + one CSV record per line (the same dialect
    /// `dquag_tabular::csv` writes). CRLF and a missing trailing newline
    /// are accepted.
    Csv,
    /// One JSON object per line, keys matching schema column names. Missing
    /// keys and JSON `null`s become missing values; unknown keys are
    /// ignored.
    Ndjson,
}

impl WireFormat {
    /// Map an HTTP `Content-Type` to a format (CSV unless the type names
    /// JSON).
    pub fn from_content_type(content_type: &str) -> Self {
        let lowered = content_type.to_ascii_lowercase();
        if lowered.contains("ndjson") || lowered.contains("json") {
            WireFormat::Ndjson
        } else {
            WireFormat::Csv
        }
    }
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WireFormat::Csv => "csv",
            WireFormat::Ndjson => "ndjson",
        })
    }
}

impl FromStr for WireFormat {
    type Err = SourceError;

    fn from_str(s: &str) -> Result<Self, SourceError> {
        match s {
            "csv" => Ok(WireFormat::Csv),
            "ndjson" => Ok(WireFormat::Ndjson),
            other => Err(SourceError::Frame(format!(
                "unknown batch format `{other}` (expected csv or ndjson)"
            ))),
        }
    }
}

/// Decode one framed payload into a typed batch.
pub fn decode_batch(
    format: WireFormat,
    payload: &[u8],
    schema: &Schema,
) -> Result<DataFrame, SourceError> {
    match format {
        WireFormat::Csv => {
            csv::from_csv_bytes(payload, schema).map_err(|e| SourceError::Decode(e.to_string()))
        }
        WireFormat::Ndjson => ndjson_to_frame(payload, schema),
    }
}

/// Decode newline-delimited JSON objects into a typed batch.
///
/// Each non-blank line must be a JSON object; values are matched to the
/// schema by key: numbers for numeric columns, strings for categorical
/// ones, `null` (or an absent key) for a missing value.
pub fn ndjson_to_frame(payload: &[u8], schema: &Schema) -> Result<DataFrame, SourceError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| SourceError::Decode(format!("invalid UTF-8 in NDJSON payload: {e}")))?;
    let mut df = DataFrame::new(schema.clone());
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let value: Json = serde_json::from_str(line)
            .map_err(|e| SourceError::Decode(format!("NDJSON line {line_no}: {e}")))?;
        let object = value.as_object().ok_or_else(|| {
            SourceError::Decode(format!(
                "NDJSON line {line_no}: expected an object, found {}",
                value.kind()
            ))
        })?;
        let mut row = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            let cell = match object.get(&field.name) {
                None | Some(Json::Null) => Cell::Null,
                Some(Json::Number(n)) if field.dtype == DataType::Numeric => Cell::Number(*n),
                Some(Json::String(s)) if field.dtype == DataType::Categorical => {
                    Cell::Text(s.clone())
                }
                Some(other) => {
                    return Err(SourceError::Decode(format!(
                        "NDJSON line {line_no}: column `{}` expects {}, found {}",
                        field.name,
                        match field.dtype {
                            DataType::Numeric => "a number",
                            DataType::Categorical => "a string",
                        },
                        other.kind()
                    )))
                }
            };
            row.push(cell);
        }
        df.push_row(row)
            .map_err(|e| SourceError::Decode(format!("NDJSON line {line_no}: {e}")))?;
    }
    Ok(df)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dquag_tabular::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::numeric("age", "age"),
            Field::categorical("city", "city"),
        ])
    }

    #[test]
    fn format_parsing_and_content_types() {
        assert_eq!("csv".parse::<WireFormat>().unwrap(), WireFormat::Csv);
        assert_eq!("ndjson".parse::<WireFormat>().unwrap(), WireFormat::Ndjson);
        assert!("xml".parse::<WireFormat>().is_err());
        assert_eq!(WireFormat::from_content_type("text/csv"), WireFormat::Csv);
        assert_eq!(
            WireFormat::from_content_type("application/x-ndjson; charset=utf-8"),
            WireFormat::Ndjson
        );
        assert_eq!(WireFormat::Csv.to_string(), "csv");
    }

    #[test]
    fn ndjson_decodes_typed_rows() {
        let payload = concat!(
            "{\"age\": 31, \"city\": \"Paris\"}\n",
            "\n",
            "{\"city\": \"Lyon\", \"age\": null, \"extra\": true}\r\n",
            "{\"age\": 2.5, \"city\": \"Nice\"}",
        );
        let df = ndjson_to_frame(payload.as_bytes(), &schema()).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.value(0, 0).unwrap(), Cell::Number(31.0));
        assert_eq!(df.value(1, 0).unwrap(), Cell::Null);
        assert_eq!(df.value(1, 1).unwrap(), Cell::Text("Lyon".into()));
        assert_eq!(df.value(2, 0).unwrap(), Cell::Number(2.5));
    }

    #[test]
    fn ndjson_type_mismatches_are_reported_with_lines() {
        let payload = b"{\"age\": \"old\", \"city\": \"Paris\"}";
        let err = ndjson_to_frame(payload, &schema()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1"), "{text}");
        assert!(text.contains("age"), "{text}");

        let not_object = b"[1, 2]";
        assert!(ndjson_to_frame(not_object, &schema()).is_err());
        let bad_json = b"{nope";
        assert!(ndjson_to_frame(bad_json, &schema()).is_err());
    }

    #[test]
    fn csv_and_ndjson_payloads_decode_identically() {
        let csv_payload = b"age,city\r\n31,Paris\r\n,Lyon";
        let ndjson_payload =
            b"{\"age\": 31, \"city\": \"Paris\"}\n{\"age\": null, \"city\": \"Lyon\"}";
        let a = decode_batch(WireFormat::Csv, csv_payload, &schema()).unwrap();
        let b = decode_batch(WireFormat::Ndjson, ndjson_payload, &schema()).unwrap();
        assert_eq!(a.n_rows(), b.n_rows());
        for row in 0..a.n_rows() {
            for col in 0..a.n_cols() {
                assert_eq!(a.value(row, col).unwrap(), b.value(row, col).unwrap());
            }
        }
    }
}
