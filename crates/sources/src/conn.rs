//! One multiplexed connection: a nonblocking protocol state machine the
//! worker pool drives off readiness.
//!
//! The old listener parked one thread per socket in blocking reads; here a
//! [`Conn`] owns buffered input/output and a [`State`], and every
//! [`drive`] call makes whatever progress the socket allows — read what's
//! there, advance the protocol over complete frames, flush what's queued —
//! then returns to the worker's poll loop. Both wire protocols (line-framed
//! raw and HTTP/1.1) run on the same machine, and HTTP gains keep-alive:
//! a request carrying `Connection: keep-alive` is answered in kind and the
//! connection returns to [`State::Line`] for the next request, up to the
//! configured per-connection request cap. Requests without the header are
//! answered `Connection: close` exactly as before, so pre-keep-alive
//! clients (and everything that reads to EOF) see no change.
//!
//! Closes are graceful: the reply is flushed, the write side is shut down
//! (FIN), and the connection lingers briefly draining the peer's remaining
//! bytes so a close never turns into a RST that destroys a reply in
//! flight — the difference between an overflow client *seeing* its 503 and
//! seeing a reset.
//!
//! [`drive`]: Conn::drive

use crate::decode::{decode_batch, WireFormat};
use crate::source::{SourceError, SourceSink};
use dquag_stream::SubmitOutcome;
use dquag_tabular::{DataFrame, Schema};
use dquag_telemetry::{Counter, Gauge, Stage, Telemetry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `Content-Type` of `GET /stats` (and every JSON error body).
const CONTENT_TYPE_JSON: &str = "application/json";
/// `Content-Type` of `GET /metrics` — the Prometheus text exposition
/// format version clients content-negotiate on.
pub(crate) const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";

/// Cap on a protocol header line; a peer streaming an endless first line is
/// cut off instead of buffering unboundedly.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long an over-capacity connection may wait for its first line before
/// being dropped, and how long a rejected one lingers for the peer to read
/// its refusal.
const REJECT_LINGER: Duration = Duration::from_secs(2);

/// After the write side is shut down, how long to keep draining the peer
/// before fully closing.
const CLOSE_LINGER: Duration = Duration::from_secs(1);

/// Bytes read from one socket per [`Conn::drive`] call, so a firehose peer
/// cannot starve the other connections on its worker.
const READ_BUDGET_CHUNKS: usize = 16;

/// Telemetry handles the listener resolves once at start.
pub(crate) struct NetMetrics {
    pub(crate) telemetry: Arc<Telemetry>,
    pub(crate) connections: Arc<Counter>,
    pub(crate) decode_errors: Arc<Counter>,
    pub(crate) accept_rejects: Arc<Counter>,
    pub(crate) accept_errors: Arc<Counter>,
    pub(crate) keepalive_reuse: Arc<Counter>,
    pub(crate) open_connections: Arc<Gauge>,
}

impl NetMetrics {
    pub(crate) fn new(telemetry: Arc<Telemetry>) -> Self {
        let r = telemetry.registry();
        Self {
            connections: r.counter(
                "dquag_source_connections_total",
                "TCP connections accepted by the network listener",
            ),
            decode_errors: r.counter(
                "dquag_source_decode_errors_total",
                "Payloads that failed wire-format decoding",
            ),
            accept_rejects: r.counter(
                "dquag_source_accept_rejects_total",
                "Connections refused because the listener was at max_connections",
            ),
            accept_errors: r.counter(
                "dquag_source_accept_errors_total",
                "Accepted sockets dropped because handing them to a worker failed",
            ),
            keepalive_reuse: r.counter(
                "dquag_source_keepalive_reuse_total",
                "HTTP requests served on an already-used kept-alive connection",
            ),
            open_connections: r.gauge(
                "dquag_source_open_connections",
                "Connections currently open on the network listener",
            ),
            telemetry,
        }
    }
}

/// Everything the per-connection state machines share.
pub(crate) struct ConnShared {
    pub(crate) schema: Schema,
    pub(crate) max_frame_bytes: usize,
    pub(crate) spec: Option<dquag_core::ValidatorSpec>,
    pub(crate) serving: dquag_core::ServingConfig,
    pub(crate) sink: SourceSink,
    pub(crate) metrics: Option<NetMetrics>,
}

impl ConnShared {
    /// The `STATS` / `GET /stats` payload: the live [`dquag_stream::StreamStats`]
    /// object, extended with an `active_spec` key naming the validator tree
    /// when the listener knows it. Extra keys are invisible to
    /// `StreamStats`-shaped readers, so pre-spec monitoring keeps parsing.
    pub(crate) fn stats_json(&self) -> String {
        let mut value = serde::Serialize::to_value(&self.sink.stats());
        if let (serde::Value::Object(map), Some(spec)) = (&mut value, &self.spec) {
            map.insert("active_spec".to_string(), serde::Serialize::to_value(spec));
        }
        serde_json::to_string(&value).expect("stats serialisation is infallible")
    }

    /// Decode one payload, timing the `decode` stage and counting failures
    /// when telemetry is attached.
    pub(crate) fn decode_observed(
        &self,
        format: WireFormat,
        payload: &[u8],
    ) -> Result<DataFrame, SourceError> {
        let started = Instant::now();
        let decoded = decode_batch(format, payload, &self.schema);
        if let Some(metrics) = &self.metrics {
            metrics
                .telemetry
                .record_stage(Stage::Decode, started.elapsed());
            if decoded.is_err() {
                metrics.decode_errors.inc();
            }
        }
        decoded
    }

    /// The Prometheus payload, or `None` when no telemetry is attached.
    pub(crate) fn prometheus(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .map(|metrics| metrics.telemetry.prometheus())
    }

    /// The `DRIFT` / `GET /drift` payload: the ranked per-column drift
    /// scoreboard as JSON, or `None` when no telemetry is attached or its
    /// data layer is off.
    pub(crate) fn drift_json(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .and_then(|metrics| metrics.telemetry.drift_scoreboard())
            .map(|board| board.to_json_string())
    }
}

/// Where the connection is in its protocol.
enum State {
    /// Waiting for a command / request line.
    Line,
    /// A `BATCH` header was read; waiting for `len` payload bytes.
    RawPayload { format: WireFormat, len: usize },
    /// An HTTP request line was read; accumulating headers.
    HttpHeaders {
        method: String,
        path: String,
        content_lengths: Vec<String>,
        content_type: String,
        client_keep: bool,
    },
    /// A `POST /ingest` with a valid `Content-Length`; waiting for the body.
    HttpBody {
        len: usize,
        content_type: String,
        keep: bool,
    },
}

/// One nonblocking connection owned by a pool worker.
pub(crate) struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    state: State,
    created: Instant,
    last_activity: Instant,
    half_closed_at: Instant,
    /// Completed HTTP requests on this connection (keep-alive reuse).
    http_requests: usize,
    /// Accepted over capacity: answer the first line with a refusal, close.
    reject: bool,
    eof: bool,
    closing: bool,
    half_closed: bool,
    dead: bool,
}

impl Conn {
    /// A connection the pool will serve normally.
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self::build(stream, false)
    }

    /// An over-capacity connection: its first line is answered with a fast
    /// `503` / `REJECTED` refusal, then the socket closes.
    pub(crate) fn reject(stream: TcpStream) -> Self {
        Self::build(stream, true)
    }

    fn build(stream: TcpStream, reject: bool) -> Self {
        let now = Instant::now();
        Self {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            state: State::Line,
            created: now,
            last_activity: now,
            half_closed_at: now,
            http_requests: 0,
            reject,
            eof: false,
            closing: false,
            half_closed: false,
            dead: false,
        }
    }

    /// The socket, for readiness registration.
    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Whether reply bytes are queued (the poll set should watch POLLOUT).
    pub(crate) fn wants_write(&self) -> bool {
        !self.outbuf.is_empty()
    }

    /// Whether the connection is finished and should be dropped.
    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether this is an over-capacity refusal connection (not counted
    /// against the open-connection gauge).
    pub(crate) fn is_reject(&self) -> bool {
        self.reject
    }

    /// Make all progress the socket currently allows: read, advance the
    /// protocol, flush, and run the close/linger/idle bookkeeping.
    pub(crate) fn drive(&mut self, shared: &ConnShared) {
        if self.dead {
            return;
        }
        self.read_available();
        if self.dead {
            return;
        }
        if self.half_closed {
            // Only draining the peer now; its bytes have nowhere to go.
            self.inbuf.clear();
        } else {
            self.advance(shared);
        }
        self.flush();
        if self.eof && !self.half_closed {
            self.closing = true;
        }
        if self.closing && !self.half_closed && !self.dead && self.outbuf.is_empty() {
            // Reply delivered: send FIN but keep reading, so a peer that is
            // still mid-request gets our bytes instead of a reset.
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
            self.half_closed = true;
            self.half_closed_at = Instant::now();
        }
        if self.half_closed && (self.eof || self.half_closed_at.elapsed() > CLOSE_LINGER) {
            self.dead = true;
        }
        if self.expired(shared) {
            self.dead = true;
        }
    }

    /// The deadline sweep for a connection with no I/O readiness this
    /// tick: idle timeout, refusal linger, and close linger still apply.
    pub(crate) fn tick(&mut self, shared: &ConnShared) {
        if self.dead {
            return;
        }
        if self.half_closed && self.half_closed_at.elapsed() > CLOSE_LINGER {
            self.dead = true;
        }
        if self.expired(shared) {
            self.dead = true;
        }
    }

    /// Blocking best-effort flush of any queued reply, for shutdown: the
    /// worker is exiting, so "ERR engine closed" must leave now or never.
    pub(crate) fn final_flush(&mut self) {
        if self.dead || self.outbuf.is_empty() {
            return;
        }
        self.stream.set_nonblocking(false).ok();
        self.stream
            .set_write_timeout(Some(Duration::from_millis(250)))
            .ok();
        let _ = self.stream.write_all(&self.outbuf);
        self.outbuf.clear();
    }

    fn expired(&self, shared: &ConnShared) -> bool {
        if self.reject {
            self.created.elapsed() > REJECT_LINGER
        } else {
            self.last_activity.elapsed() > shared.serving.idle_timeout
        }
    }

    fn read_available(&mut self) {
        let mut chunk = [0u8; 4096];
        for _ in 0..READ_BUDGET_CHUNKS {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    fn flush(&mut self) {
        while !self.outbuf.is_empty() && !self.dead {
            match self.stream.write(&self.outbuf) {
                Ok(0) => self.dead = true,
                Ok(n) => {
                    self.outbuf.drain(..n);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
    }

    /// Process every complete frame sitting in `inbuf`.
    fn advance(&mut self, shared: &ConnShared) {
        loop {
            if self.dead || self.closing {
                return;
            }
            match std::mem::replace(&mut self.state, State::Line) {
                State::Line => {
                    let Some(line) = self.take_line() else {
                        return;
                    };
                    if self.reject {
                        self.refuse(&line);
                        return;
                    }
                    if let Some((method, path)) = parse_http_request_line(&line) {
                        if self.http_requests >= 1 {
                            if let Some(metrics) = &shared.metrics {
                                metrics.keepalive_reuse.inc();
                            }
                        }
                        self.state = State::HttpHeaders {
                            method,
                            path,
                            content_lengths: Vec::new(),
                            content_type: String::new(),
                            client_keep: false,
                        };
                    } else {
                        self.raw_command(&line, shared);
                    }
                }
                State::RawPayload { format, len } => {
                    if self.inbuf.len() < len {
                        self.state = State::RawPayload { format, len };
                        return;
                    }
                    let payload: Vec<u8> = self.inbuf.drain(..len).collect();
                    let reply = ingest_reply(&payload, format, shared);
                    // The engine is gone; this reply is the connection's last.
                    let engine_closed = reply == "ERR engine closed";
                    self.push_line(&reply);
                    if engine_closed {
                        self.closing = true;
                    }
                }
                State::HttpHeaders {
                    method,
                    path,
                    mut content_lengths,
                    mut content_type,
                    mut client_keep,
                } => loop {
                    let Some(line) = self.take_line() else {
                        self.state = State::HttpHeaders {
                            method,
                            path,
                            content_lengths,
                            content_type,
                            client_keep,
                        };
                        return;
                    };
                    if line.is_empty() {
                        self.http_request(
                            shared,
                            &method,
                            &path,
                            &content_lengths,
                            content_type,
                            client_keep,
                        );
                        break;
                    }
                    if let Some((name, value)) = line.split_once(':') {
                        let value = value.trim();
                        if name.eq_ignore_ascii_case("content-length") {
                            content_lengths.push(value.to_string());
                        } else if name.eq_ignore_ascii_case("content-type") {
                            content_type = value.to_string();
                        } else if name.eq_ignore_ascii_case("connection") {
                            client_keep = value.eq_ignore_ascii_case("keep-alive");
                        }
                    }
                },
                State::HttpBody {
                    len,
                    content_type,
                    keep,
                } => {
                    if self.inbuf.len() < len {
                        self.state = State::HttpBody {
                            len,
                            content_type,
                            keep,
                        };
                        return;
                    }
                    let body: Vec<u8> = self.inbuf.drain(..len).collect();
                    self.http_ingest(shared, &body, &content_type, keep);
                }
            }
        }
    }

    /// The next `\n`-terminated line (CR stripped), or `None` when no full
    /// line is buffered yet. Overlong and non-UTF-8 lines kill the
    /// connection, as the blocking reader did.
    fn take_line(&mut self) -> Option<String> {
        match self.inbuf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let mut line: Vec<u8> = self.inbuf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                match String::from_utf8(line) {
                    Ok(text) => Some(text),
                    Err(_) => {
                        self.dead = true;
                        None
                    }
                }
            }
            None => {
                if self.inbuf.len() > MAX_LINE_BYTES {
                    self.dead = true;
                }
                None
            }
        }
    }

    /// Answer an over-capacity connection's first line in its own protocol,
    /// then close.
    fn refuse(&mut self, line: &str) {
        if parse_http_request_line(line).is_some() {
            self.push_http(
                "503 Service Unavailable",
                CONTENT_TYPE_JSON,
                "{\"error\": \"listener at connection capacity\"}",
                false,
            );
        } else {
            self.push_line("REJECTED listener at connection capacity");
        }
        self.closing = true;
    }

    /// Dispatch one raw-protocol command line.
    fn raw_command(&mut self, line: &str, shared: &ConnShared) {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("BATCH") => match parse_batch_header(parts, shared.max_frame_bytes) {
                Ok((format, len)) => self.state = State::RawPayload { format, len },
                // A bad or oversized header leaves us unsure where the next
                // frame starts; reply, then drop the connection to
                // resynchronise.
                Err(e) => {
                    self.push_line(&format!("ERR {}", one_line(&e.to_string())));
                    self.closing = true;
                }
            },
            Some("STATS") => self.push_line(&format!("STATS {}", shared.stats_json())),
            Some("DRIFT") => match shared.drift_json() {
                Some(json) => self.push_line(&format!("DRIFT {json}")),
                None => self.push_line("ERR data telemetry not enabled"),
            },
            Some("METRICS") => match shared.prometheus() {
                // The payload is multi-line, so it is length-framed like
                // BATCH rather than line-framed like STATS.
                Some(text) => {
                    self.push_line(&format!("METRICS {}", text.len()));
                    self.outbuf.extend_from_slice(text.as_bytes());
                }
                None => self.push_line("ERR telemetry not enabled"),
            },
            Some("QUIT") => {
                self.push_line("BYE");
                self.closing = true;
            }
            Some(other) => {
                self.push_line(&format!("ERR unknown command `{}`", one_line(other)));
                self.closing = true;
            }
            None => {
                // Blank keep-alive line; ignore.
            }
        }
    }

    /// Route one HTTP request whose headers are fully read.
    fn http_request(
        &mut self,
        shared: &ConnShared,
        method: &str,
        path: &str,
        content_lengths: &[String],
        content_type: String,
        client_keep: bool,
    ) {
        // Keep-alive is opt-in on both sides: the client must ask, the
        // config must allow, and the request cap must not be reached.
        let keep = client_keep
            && shared.serving.keep_alive
            && self.http_requests + 1 < shared.serving.max_requests_per_connection;
        match (method, path) {
            ("POST", "/ingest") => {
                let len = match parse_content_length(content_lengths) {
                    Ok(Some(len)) => len,
                    Ok(None) => {
                        self.push_http(
                            "411 Length Required",
                            CONTENT_TYPE_JSON,
                            "{\"error\": \"Content-Length is required\"}",
                            false,
                        );
                        return self.finish_http(false);
                    }
                    // Malformed or conflicting framing: the body boundary is
                    // unknowable, so answer 400 and close.
                    Err(message) => {
                        self.push_http(
                            "400 Bad Request",
                            CONTENT_TYPE_JSON,
                            &format!("{{\"error\": \"{message}\"}}"),
                            false,
                        );
                        return self.finish_http(false);
                    }
                };
                if len > shared.max_frame_bytes {
                    self.push_http(
                        "413 Payload Too Large",
                        CONTENT_TYPE_JSON,
                        &format!(
                            "{{\"error\": \"body of {len} bytes exceeds the {}-byte limit\"}}",
                            shared.max_frame_bytes
                        ),
                        false,
                    );
                    return self.finish_http(false);
                }
                self.state = State::HttpBody {
                    len,
                    content_type,
                    keep,
                };
            }
            ("GET", "/stats") => {
                self.push_http("200 OK", CONTENT_TYPE_JSON, &shared.stats_json(), keep);
                self.finish_http(keep);
            }
            ("GET", "/metrics") => {
                match shared.prometheus() {
                    Some(text) => self.push_http("200 OK", CONTENT_TYPE_PROMETHEUS, &text, keep),
                    None => self.push_http(
                        "404 Not Found",
                        CONTENT_TYPE_JSON,
                        "{\"error\": \"telemetry not enabled\"}",
                        keep,
                    ),
                }
                self.finish_http(keep);
            }
            ("GET", "/drift") => {
                match shared.drift_json() {
                    Some(json) => self.push_http("200 OK", CONTENT_TYPE_JSON, &json, keep),
                    None => self.push_http(
                        "404 Not Found",
                        CONTENT_TYPE_JSON,
                        "{\"error\": \"data telemetry not enabled\"}",
                        keep,
                    ),
                }
                self.finish_http(keep);
            }
            _ => {
                self.push_http(
                    "404 Not Found",
                    CONTENT_TYPE_JSON,
                    "{\"error\": \"try POST /ingest, GET /stats, GET /metrics or GET /drift\"}",
                    keep,
                );
                self.finish_http(keep);
            }
        }
    }

    /// Decode and deliver one `POST /ingest` body, answering in HTTP.
    fn http_ingest(&mut self, shared: &ConnShared, body: &[u8], content_type: &str, keep: bool) {
        let format = WireFormat::from_content_type(content_type);
        match shared.decode_observed(format, body) {
            Ok(batch) if batch.is_empty() => {
                self.push_http(
                    "400 Bad Request",
                    CONTENT_TYPE_JSON,
                    "{\"error\": \"empty batch\"}",
                    keep,
                );
                self.finish_http(keep);
            }
            Ok(batch) => {
                let n_rows = batch.n_rows();
                match shared.sink.deliver(batch) {
                    Ok(SubmitOutcome::Enqueued(seq)) => {
                        self.push_http(
                            "202 Accepted",
                            CONTENT_TYPE_JSON,
                            &format!(
                                "{{\"status\": \"enqueued\", \"seq\": {seq}, \"rows\": {n_rows}}}"
                            ),
                            keep,
                        );
                        self.finish_http(keep);
                    }
                    Ok(other) => {
                        self.push_http(
                            "503 Service Unavailable",
                            CONTENT_TYPE_JSON,
                            &format!(
                                "{{\"status\": \"{}\"}}",
                                other.to_string().to_ascii_lowercase()
                            ),
                            keep,
                        );
                        self.finish_http(keep);
                    }
                    Err(_) => {
                        self.push_http(
                            "503 Service Unavailable",
                            CONTENT_TYPE_JSON,
                            "{\"error\": \"engine closed\"}",
                            false,
                        );
                        self.finish_http(false);
                    }
                }
            }
            Err(e) => {
                let message = one_line(&e.to_string()).replace('"', "'");
                self.push_http(
                    "400 Bad Request",
                    CONTENT_TYPE_JSON,
                    &format!("{{\"error\": \"{message}\"}}"),
                    keep,
                );
                self.finish_http(keep);
            }
        }
    }

    /// Book-keep one completed HTTP exchange: either rearm for the next
    /// request on the same socket or begin the graceful close.
    fn finish_http(&mut self, keep: bool) {
        self.http_requests += 1;
        if keep {
            self.state = State::Line;
        } else {
            self.closing = true;
        }
    }

    fn push_line(&mut self, line: &str) {
        self.outbuf.extend_from_slice(line.as_bytes());
        self.outbuf.push(b'\n');
    }

    fn push_http(&mut self, status: &str, content_type: &str, body: &str, keep: bool) {
        let connection = if keep { "keep-alive" } else { "close" };
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
            body.len()
        );
        self.outbuf.extend_from_slice(response.as_bytes());
    }
}

/// Interpret the `Content-Length` headers of one request: `Ok(Some(len))`
/// for exactly one well-formed length (repeats must agree), `Ok(None)` for
/// none at all, `Err(message)` for a malformed value or conflicting
/// repeats — the caller answers `400` naming the problem.
fn parse_content_length(values: &[String]) -> Result<Option<usize>, String> {
    let mut parsed: Option<usize> = None;
    for raw in values {
        let value: usize = raw.parse().map_err(|_| {
            format!(
                "invalid Content-Length `{}`",
                one_line(raw).replace('"', "'")
            )
        })?;
        match parsed {
            Some(previous) if previous != value => {
                return Err(format!(
                    "conflicting Content-Length headers ({previous} vs {value})"
                ));
            }
            _ => parsed = Some(value),
        }
    }
    Ok(parsed)
}

/// The strict request-line shape: `METHOD SP PATH SP VERSION`, with an
/// uppercase method, an origin-form path, and an `HTTP/` version. A raw
/// frame that merely *ends* in `HTTP/1.1` (the old heuristic) no longer
/// routes to the HTTP handler.
fn parse_http_request_line(line: &str) -> Option<(String, String)> {
    let mut parts = line.split_whitespace();
    let (method, path, version) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return None;
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return None;
    }
    if !path.starts_with('/') {
        return None;
    }
    Some((method.to_string(), path.to_string()))
}

/// Whether a first line selects the HTTP handler over the raw protocol.
#[cfg(test)]
fn is_http_request_line(line: &str) -> bool {
    parse_http_request_line(line).is_some()
}

/// `BATCH <fmt> <len>` → (format, len), enforcing the frame cap.
fn parse_batch_header<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    max_frame_bytes: usize,
) -> Result<(WireFormat, usize), SourceError> {
    let format: WireFormat = parts
        .next()
        .ok_or_else(|| SourceError::Frame("BATCH needs a format (csv|ndjson)".to_string()))?
        .parse()?;
    let len: usize = parts
        .next()
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| SourceError::Frame("BATCH needs a payload byte count".to_string()))?;
    if parts.next().is_some() {
        return Err(SourceError::Frame(
            "BATCH takes exactly two arguments".to_string(),
        ));
    }
    if len > max_frame_bytes {
        return Err(SourceError::Frame(format!(
            "frame of {len} bytes exceeds the {max_frame_bytes}-byte limit"
        )));
    }
    Ok((format, len))
}

/// Decode and deliver one payload, producing the raw-protocol reply line.
fn ingest_reply(payload: &[u8], format: WireFormat, conn: &ConnShared) -> String {
    match conn.decode_observed(format, payload) {
        Ok(batch) if batch.is_empty() => "ERR empty batch".to_string(),
        Ok(batch) => {
            let n_rows = batch.n_rows();
            match conn.sink.deliver(batch) {
                Ok(SubmitOutcome::Enqueued(seq)) => format!("ACK {seq} {n_rows}"),
                // DROPPED / REJECTED / TIMEOUT — Display is the wire spelling.
                Ok(other) => other.to_string(),
                Err(_) => "ERR engine closed".to_string(),
            }
        }
        Err(e) => format!("ERR {}", one_line(&e.to_string())),
    }
}

/// Replies are single-line; squash any embedded line breaks from error
/// messages.
fn one_line(text: &str) -> String {
    text.replace(['\r', '\n'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_headers_parse_and_enforce_limits() {
        let (format, len) = parse_batch_header("csv 120".split_whitespace(), 1024).unwrap();
        assert_eq!(format, WireFormat::Csv);
        assert_eq!(len, 120);
        assert!(parse_batch_header("csv".split_whitespace(), 1024).is_err());
        assert!(parse_batch_header("csv many".split_whitespace(), 1024).is_err());
        assert!(parse_batch_header("xml 10".split_whitespace(), 1024).is_err());
        assert!(parse_batch_header("csv 10 extra".split_whitespace(), 1024).is_err());
        let err = parse_batch_header("csv 2048".split_whitespace(), 1024).unwrap_err();
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn http_request_lines_are_recognised() {
        assert!(is_http_request_line("POST /ingest HTTP/1.1"));
        assert!(is_http_request_line("GET /stats HTTP/1.0"));
        assert!(!is_http_request_line("BATCH csv 99"));
        assert!(!is_http_request_line("STATS"));
    }

    #[test]
    fn request_line_requires_the_three_part_shape() {
        // The old suffix heuristic classified any line ending in HTTP/1.1 as
        // HTTP; these are raw-protocol frames and must stay raw.
        assert!(!is_http_request_line("BATCH csv HTTP/1.1"));
        assert!(!is_http_request_line("one two three HTTP/1.1"));
        assert!(!is_http_request_line("HTTP/1.1"));
        assert!(!is_http_request_line("GET HTTP/1.1"));
        assert!(!is_http_request_line("get /stats HTTP/1.1"));
        assert!(!is_http_request_line("GET stats HTTP/1.1"));
        assert!(!is_http_request_line("GET /stats FTP/1.1"));
        assert!(is_http_request_line("DELETE /anything HTTP/1.1"));
    }

    #[test]
    fn content_length_parsing_names_the_problem() {
        let none: &[String] = &[];
        assert_eq!(parse_content_length(none), Ok(None));
        assert_eq!(parse_content_length(&["42".to_string()]), Ok(Some(42)));
        assert_eq!(
            parse_content_length(&["42".to_string(), "42".to_string()]),
            Ok(Some(42)),
            "agreeing repeats are tolerated"
        );
        let bad = parse_content_length(&["abc".to_string()]).unwrap_err();
        assert!(bad.contains("invalid Content-Length `abc`"), "{bad}");
        let negative = parse_content_length(&["-1".to_string()]).unwrap_err();
        assert!(
            negative.contains("invalid Content-Length `-1`"),
            "{negative}"
        );
        let conflict = parse_content_length(&["10".to_string(), "20".to_string()]).unwrap_err();
        assert!(conflict.contains("conflicting"), "{conflict}");
    }

    #[test]
    fn replies_are_single_line() {
        assert_eq!(one_line("a\nb\rc"), "a b c");
    }
}
