//! The polling directory watcher: replays CSV file drops through the
//! engine, moving each processed file out of the inbox so the filesystem
//! itself is the durable record of what has been ingested.

use crate::source::{PollOutcome, Source, SourceError, SourceSink};
use dquag_stream::SubmitOutcome;
use dquag_tabular::{csv, Schema};
use std::fs;
use std::path::{Path, PathBuf};

/// Watches an inbox directory for `*.csv` drops (the Deequ-style batch
/// arrival model), decodes each via `dquag-tabular`, delivers it to the
/// engine and moves the file to `done/` — or to `failed/` when it cannot be
/// decoded, so one poisoned file never wedges the feed.
///
/// Durability: a file is moved to `done/` only after the engine accepted its
/// batch, so a crash between delivery and rename can at worst replay one
/// file — never skip one. Producers should drop files atomically (write to
/// a temp name, then rename into the inbox), the standard contract for
/// file-drop ingestion.
pub struct DirWatcherSource {
    name: String,
    inbox: PathBuf,
    done: PathBuf,
    failed: PathBuf,
    schema: Schema,
    sink: Option<SourceSink>,
    /// Files moved to `failed/` so far (exposed for tests and ops).
    failed_files: u64,
    /// The delivered-batch count as of shutdown, so [`Source::offset`]
    /// stays truthful after the sink is released.
    final_offset: u64,
}

impl DirWatcherSource {
    /// Watch `inbox`, with `done/` and `failed/` created inside it.
    pub fn new(inbox: impl Into<PathBuf>, schema: Schema) -> Self {
        let inbox = inbox.into();
        let done = inbox.join("done");
        let failed = inbox.join("failed");
        Self {
            name: "dir".to_string(),
            inbox,
            done,
            failed,
            schema,
            sink: None,
            failed_files: 0,
            final_offset: 0,
        }
    }

    /// Override the source name (the checkpoint key).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The watched inbox directory.
    pub fn inbox(&self) -> &Path {
        &self.inbox
    }

    /// Files that failed to decode and were quarantined so far.
    pub fn failed_files(&self) -> u64 {
        self.failed_files
    }

    /// Pending `*.csv` drops, sorted by file name so replay order is
    /// deterministic (producers that need strict ordering use sortable
    /// names, e.g. zero-padded sequence numbers).
    fn pending_files(&self) -> Result<Vec<PathBuf>, SourceError> {
        let entries = fs::read_dir(&self.inbox)
            .map_err(|e| SourceError::Io(format!("scanning {:?}: {e}", self.inbox)))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SourceError::Io(format!("reading dir entry: {e}")))?;
            let path = entry.path();
            let is_csv = path
                .extension()
                .is_some_and(|ext| ext.eq_ignore_ascii_case("csv"));
            if path.is_file() && is_csv {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    fn move_to(&self, path: &Path, target_dir: &Path) -> Result<(), SourceError> {
        let file_name = path
            .file_name()
            .ok_or_else(|| SourceError::Io(format!("{path:?} has no file name")))?;
        let mut target = target_dir.join(file_name);
        // A replayed name must not clobber an earlier file's record.
        let mut attempt = 1u32;
        while target.exists() {
            target = target_dir.join(format!("{}.{attempt}", file_name.to_string_lossy()));
            attempt += 1;
        }
        fs::rename(path, &target)
            .map_err(|e| SourceError::Io(format!("moving {path:?} to {target:?}: {e}")))
    }
}

impl Source for DirWatcherSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, sink: &SourceSink, _resume_from: u64) -> Result<(), SourceError> {
        // Position is carried by the filesystem (processed files live in
        // done/), so resuming needs no seeking; the restored offset keeps
        // the delivered-batch count continuous across restarts.
        for dir in [&self.inbox, &self.done, &self.failed] {
            fs::create_dir_all(dir)
                .map_err(|e| SourceError::Io(format!("creating {dir:?}: {e}")))?;
        }
        self.sink = Some(sink.clone());
        Ok(())
    }

    fn poll(&mut self, sink: &SourceSink) -> Result<PollOutcome, SourceError> {
        let files = self.pending_files()?;
        if files.is_empty() {
            return Ok(PollOutcome::Idle);
        }
        let mut progressed = false;
        for path in files {
            if sink.should_stop() {
                break;
            }
            match csv::read_csv(&path, &self.schema) {
                Ok(batch) if !batch.is_empty() => match sink.deliver(batch)? {
                    SubmitOutcome::Enqueued(_) => {
                        self.move_to(&path, &self.done)?;
                        progressed = true;
                    }
                    // The engine is shedding load; leave the file in the
                    // inbox and back off — it will be retried next poll.
                    SubmitOutcome::Dropped | SubmitOutcome::Rejected | SubmitOutcome::TimedOut => {
                        return Ok(PollOutcome::Idle)
                    }
                },
                Ok(_empty) => {
                    self.move_to(&path, &self.failed)?;
                    self.failed_files += 1;
                    progressed = true;
                }
                Err(_) => {
                    self.move_to(&path, &self.failed)?;
                    self.failed_files += 1;
                    progressed = true;
                }
            }
        }
        Ok(if progressed {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        })
    }

    fn drain(&mut self, _sink: &SourceSink) {
        // poll() is synchronous — nothing is in flight between calls.
    }

    fn shutdown(&mut self) {
        self.final_offset = self.offset();
        self.sink = None;
    }

    fn offset(&self) -> u64 {
        self.sink.as_ref().map_or(self.final_offset, |s| s.offset())
    }
}
