//! The polling directory watcher: replays CSV file drops through the
//! engine, moving each processed file out of the inbox so the filesystem
//! itself is the durable record of what has been ingested.

use crate::source::{PollOutcome, Source, SourceError, SourceSink};
use dquag_stream::SubmitOutcome;
use dquag_tabular::{csv, Schema};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema version of the inbox journal, bumped on incompatible change.
const JOURNAL_VERSION: u32 = 1;

/// The journal's file name inside the inbox directory (not `*.csv`, so the
/// drop scan never sees it).
const JOURNAL_FILE: &str = "inbox.journal.json";

/// Distinguishes concurrent journal writers' temp files (same discipline
/// as `checkpoint.rs`).
static JOURNAL_WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Watches an inbox directory for `*.csv` drops (the Deequ-style batch
/// arrival model), decodes each via `dquag-tabular`, delivers it to the
/// engine and moves the file to `done/` — or to `failed/` when it cannot be
/// decoded, so one poisoned file never wedges the feed.
///
/// Durability: delivery is **exactly-once per file across kill/restart**.
/// After the engine accepts a batch, the file's name is recorded in an
/// inbox journal (`inbox.journal.json`, written atomically via tmp+rename,
/// the same discipline as `checkpoint.rs`) *before* the file is renamed to
/// `done/`; the journal entry is cleared after the rename. A crash in the
/// journal→rename window — the window that used to replay a file — is
/// healed at the next [`start`]: journaled files still in the inbox are
/// moved straight to `done/` without redelivery (counted by
/// [`recovered_files`]). Only a crash in the tiny deliver→journal window
/// can still replay a file, and no crash can skip one. Producers should
/// drop files atomically (write to a temp name, then rename into the
/// inbox), the standard contract for file-drop ingestion.
///
/// [`start`]: Source::start
/// [`recovered_files`]: DirWatcherSource::recovered_files
pub struct DirWatcherSource {
    name: String,
    inbox: PathBuf,
    done: PathBuf,
    failed: PathBuf,
    schema: Schema,
    sink: Option<SourceSink>,
    journal: Option<InboxJournal>,
    /// Files moved to `failed/` so far (exposed for tests and ops).
    failed_files: u64,
    /// Journaled files healed to `done/` without redelivery at the last
    /// [`Source::start`].
    recovered_files: u64,
    /// Batches delivered by this instance (drives the crash hook).
    deliveries: u64,
    /// Test hook: simulate a crash between the journal record and the
    /// `done/` rename after this many deliveries.
    crash_after: Option<u64>,
    /// Once the hook fires the "process" stays down: every poll errors.
    crashed: bool,
    /// The delivered-batch count as of shutdown, so [`Source::offset`]
    /// stays truthful after the sink is released.
    final_offset: u64,
}

impl DirWatcherSource {
    /// Watch `inbox`, with `done/` and `failed/` created inside it.
    pub fn new(inbox: impl Into<PathBuf>, schema: Schema) -> Self {
        let inbox = inbox.into();
        let done = inbox.join("done");
        let failed = inbox.join("failed");
        Self {
            name: "dir".to_string(),
            inbox,
            done,
            failed,
            schema,
            sink: None,
            journal: None,
            failed_files: 0,
            recovered_files: 0,
            deliveries: 0,
            crash_after: None,
            crashed: false,
            final_offset: 0,
        }
    }

    /// Override the source name (the checkpoint key).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Simulate the process dying between a file's journal record and its
    /// `done/` rename, after `after_deliveries` batches have been
    /// delivered. The failure is sticky — every later poll errors too, as
    /// a dead process would — so only a *new* source instance (a restart)
    /// can make further progress. For the exactly-once regression test.
    #[doc(hidden)]
    pub fn with_crash_between_journal_and_rename(mut self, after_deliveries: u64) -> Self {
        self.crash_after = Some(after_deliveries);
        self
    }

    /// The watched inbox directory.
    pub fn inbox(&self) -> &Path {
        &self.inbox
    }

    /// Files that failed to decode and were quarantined so far.
    pub fn failed_files(&self) -> u64 {
        self.failed_files
    }

    /// Journaled files healed to `done/` without redelivery when this
    /// source last started — each one is a replay the journal prevented.
    pub fn recovered_files(&self) -> u64 {
        self.recovered_files
    }

    /// Pending `*.csv` drops, sorted by file name so replay order is
    /// deterministic (producers that need strict ordering use sortable
    /// names, e.g. zero-padded sequence numbers).
    fn pending_files(&self) -> Result<Vec<PathBuf>, SourceError> {
        let entries = fs::read_dir(&self.inbox)
            .map_err(|e| SourceError::Io(format!("scanning {:?}: {e}", self.inbox)))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| SourceError::Io(format!("reading dir entry: {e}")))?;
            let path = entry.path();
            let is_csv = path
                .extension()
                .is_some_and(|ext| ext.eq_ignore_ascii_case("csv"));
            if path.is_file() && is_csv {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    fn move_to(&self, path: &Path, target_dir: &Path) -> Result<(), SourceError> {
        let file_name = path
            .file_name()
            .ok_or_else(|| SourceError::Io(format!("{path:?} has no file name")))?;
        let mut target = target_dir.join(file_name);
        // A replayed name must not clobber an earlier file's record.
        let mut attempt = 1u32;
        while target.exists() {
            target = target_dir.join(format!("{}.{attempt}", file_name.to_string_lossy()));
            attempt += 1;
        }
        fs::rename(path, &target)
            .map_err(|e| SourceError::Io(format!("moving {path:?} to {target:?}: {e}")))
    }
}

impl Source for DirWatcherSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, sink: &SourceSink, _resume_from: u64) -> Result<(), SourceError> {
        // Position is carried by the filesystem (processed files live in
        // done/), so resuming needs no seeking; the restored offset keeps
        // the delivered-batch count continuous across restarts.
        for dir in [&self.inbox, &self.done, &self.failed] {
            fs::create_dir_all(dir)
                .map_err(|e| SourceError::Io(format!("creating {dir:?}: {e}")))?;
        }
        // Heal the journal→rename crash window: a journaled file was
        // already delivered, so finish its rename instead of replaying it.
        let mut journal = InboxJournal::load(&self.inbox)?;
        self.recovered_files = 0;
        for file_name in journal.delivered() {
            let path = self.inbox.join(&file_name);
            if path.is_file() {
                self.move_to(&path, &self.done)?;
                self.recovered_files += 1;
            }
            // Entries whose file is already gone (crash after the rename,
            // before the journal clear) are simply stale; sweep them.
            journal.clear(&file_name)?;
        }
        self.journal = Some(journal);
        self.sink = Some(sink.clone());
        Ok(())
    }

    fn poll(&mut self, sink: &SourceSink) -> Result<PollOutcome, SourceError> {
        if self.crashed {
            return Err(SourceError::Io(
                "injected crash: process is down".to_string(),
            ));
        }
        let files = self.pending_files()?;
        if files.is_empty() {
            return Ok(PollOutcome::Idle);
        }
        let mut progressed = false;
        for path in files {
            if sink.should_stop() {
                break;
            }
            match csv::read_csv(&path, &self.schema) {
                Ok(batch) if !batch.is_empty() => match sink.deliver(batch)? {
                    SubmitOutcome::Enqueued(_) => {
                        let file_name = path
                            .file_name()
                            .map(|name| name.to_string_lossy().into_owned())
                            .ok_or_else(|| SourceError::Io(format!("{path:?} has no file name")))?;
                        // Journal first: from here on a crash heals to
                        // "already delivered" instead of replaying.
                        self.journal
                            .as_mut()
                            .expect("poll is only called after start")
                            .record(&file_name)?;
                        self.deliveries += 1;
                        if self.crash_after.is_some_and(|n| self.deliveries >= n) {
                            self.crashed = true;
                            return Err(SourceError::Io(
                                "injected crash between journal record and done/ rename"
                                    .to_string(),
                            ));
                        }
                        self.move_to(&path, &self.done)?;
                        self.journal
                            .as_mut()
                            .expect("poll is only called after start")
                            .clear(&file_name)?;
                        progressed = true;
                    }
                    // The engine is shedding load; leave the file in the
                    // inbox and back off — it will be retried next poll.
                    SubmitOutcome::Dropped | SubmitOutcome::Rejected | SubmitOutcome::TimedOut => {
                        return Ok(PollOutcome::Idle)
                    }
                },
                Ok(_empty) => {
                    self.move_to(&path, &self.failed)?;
                    self.failed_files += 1;
                    progressed = true;
                }
                Err(_) => {
                    self.move_to(&path, &self.failed)?;
                    self.failed_files += 1;
                    progressed = true;
                }
            }
        }
        Ok(if progressed {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        })
    }

    fn drain(&mut self, _sink: &SourceSink) {
        // poll() is synchronous — nothing is in flight between calls.
    }

    fn shutdown(&mut self) {
        self.final_offset = self.offset();
        self.sink = None;
    }

    fn offset(&self) -> u64 {
        self.sink.as_ref().map_or(self.final_offset, |s| s.offset())
    }
}

/// On-disk shape of the inbox journal.
#[derive(serde::Serialize, serde::Deserialize)]
struct JournalState {
    version: u32,
    /// File names delivered to the engine but not yet renamed to `done/`.
    delivered: Vec<String>,
}

/// The delivered-but-not-yet-renamed record, persisted atomically on every
/// change so its on-disk state is always a consistent snapshot.
struct InboxJournal {
    path: PathBuf,
    delivered: Vec<String>,
}

impl InboxJournal {
    /// Load the journal from `inbox`, or start empty. A missing file is
    /// the normal first run; an unreadable or corrupt one degrades to the
    /// pre-journal at-least-once behaviour (replay, never skip) rather
    /// than wedging the source.
    fn load(inbox: &Path) -> Result<Self, SourceError> {
        let path = inbox.join(JOURNAL_FILE);
        let delivered = match fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str::<JournalState>(&text) {
                Ok(state) if state.version == JOURNAL_VERSION => state.delivered,
                _ => Vec::new(),
            },
            Err(_) => Vec::new(),
        };
        Ok(Self { path, delivered })
    }

    /// Snapshot of the journaled names (recovery iterates while clearing).
    fn delivered(&self) -> Vec<String> {
        self.delivered.clone()
    }

    /// Record `file_name` as delivered; idempotent.
    fn record(&mut self, file_name: &str) -> Result<(), SourceError> {
        if self.delivered.iter().any(|name| name == file_name) {
            return Ok(());
        }
        self.delivered.push(file_name.to_string());
        self.persist()
    }

    /// Forget `file_name` (its rename to `done/` is complete).
    fn clear(&mut self, file_name: &str) -> Result<(), SourceError> {
        let before = self.delivered.len();
        self.delivered.retain(|name| name != file_name);
        if self.delivered.len() == before {
            return Ok(());
        }
        self.persist()
    }

    /// Atomic write: serialise to a unique temp name in the same
    /// directory, then rename over the journal. Readers only ever see the
    /// old or the new snapshot, never a torn one.
    fn persist(&self) -> Result<(), SourceError> {
        let state = JournalState {
            version: JOURNAL_VERSION,
            delivered: self.delivered.clone(),
        };
        let json = serde_json::to_string_pretty(&state)
            .map_err(|e| SourceError::Io(format!("encoding inbox journal: {e}")))?;
        let tmp = self.path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            JOURNAL_WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, json)
            .map_err(|e| SourceError::Io(format!("writing inbox journal {tmp:?}: {e}")))?;
        fs::rename(&tmp, &self.path)
            .map_err(|e| SourceError::Io(format!("publishing inbox journal {:?}: {e}", self.path)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_round_trips_and_sweeps() {
        let dir = std::env::temp_dir().join(format!(
            "dquag-journal-test-{}-{}",
            std::process::id(),
            JOURNAL_WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();

        let mut journal = InboxJournal::load(&dir).unwrap();
        assert!(journal.delivered().is_empty(), "first run starts empty");
        journal.record("a.csv").unwrap();
        journal.record("b.csv").unwrap();
        journal.record("a.csv").unwrap(); // idempotent

        let reloaded = InboxJournal::load(&dir).unwrap();
        assert_eq!(reloaded.delivered(), vec!["a.csv", "b.csv"]);

        journal.clear("a.csv").unwrap();
        let reloaded = InboxJournal::load(&dir).unwrap();
        assert_eq!(reloaded.delivered(), vec!["b.csv"]);

        // Corrupt journal degrades to empty (at-least-once), not an error.
        fs::write(dir.join(JOURNAL_FILE), "{not json").unwrap();
        let recovered = InboxJournal::load(&dir).unwrap();
        assert!(recovered.delivered().is_empty());

        fs::remove_dir_all(&dir).ok();
    }
}
