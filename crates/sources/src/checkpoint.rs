//! Durable checkpoints: per-source offsets plus engine statistics, written
//! atomically as JSON and restored on startup.

use crate::SourceError;
use dquag_core::ValidatorSpec;
use dquag_stream::StreamStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Current checkpoint format version; bumped on incompatible layout changes
/// so a restore can refuse files from a future format instead of
/// mis-reading them.
pub const CHECKPOINT_VERSION: u64 = 1;

/// The durable state of a serving deployment: how far every source has
/// delivered, and the engine's cumulative statistics.
///
/// Serialised as JSON via the workspace serde; the `stats` block is the
/// exact same shape [`StreamStats`] uses on the wire (`STATS` command,
/// `GET /stats`), so checkpoints, monitoring responses and logs all read
/// one format.
///
/// Writes are atomic — the file is fully written to a `.tmp` sibling and
/// renamed into place — so a crash mid-write leaves the previous checkpoint
/// intact rather than a truncated one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, for forward-compatibility checks on restore.
    pub version: u64,
    /// Batches durably delivered, per source name.
    pub offsets: BTreeMap<String, u64>,
    /// Engine statistics at checkpoint time, restored into a new engine via
    /// `StreamEngineBuilder::restore_stats` so counters continue across
    /// restarts.
    pub stats: StreamStats,
    /// The declarative spec of the validator serving this deployment, when
    /// the runtime was told it ([`crate::SourceRuntimeBuilder::spec`]). A
    /// restart rebuilds the *same* validator tree from the checkpoint alone
    /// — and an operator reading the file sees what was judging their data.
    /// Absent in pre-spec checkpoints, which still load.
    pub spec: Option<ValidatorSpec>,
    /// Where the fitted model was persisted (`dquag_persist::save_validator`),
    /// when the deployment persists one. A restart can rebuild the *fitted*
    /// validator straight from this file — zero refit — instead of training
    /// from scratch. Absent in pre-persistence checkpoints, which still
    /// load.
    pub model_path: Option<PathBuf>,
}

/// A structured warning about capabilities a restored checkpoint cannot
/// offer because it was written by an older layout (or a deployment that
/// never recorded the field). Surfaced by [`Checkpoint::warnings`] so
/// restart flows can log exactly what degraded instead of silently
/// refitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointWarning {
    /// No validator spec: the restart cannot rebuild the validator tree
    /// declaratively and must be configured out of band.
    MissingSpec,
    /// No persisted-model path: the restart cannot reload the fitted model
    /// from disk and will refit from scratch before serving.
    MissingModelPath,
}

impl std::fmt::Display for CheckpointWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingSpec => write!(
                f,
                "checkpoint predates validator specs (no `spec`): the restart \
                 cannot rebuild the validator tree from the checkpoint alone"
            ),
            Self::MissingModelPath => write!(
                f,
                "checkpoint predates persisted models (no `model_path`): the \
                 restart will refit from scratch instead of loading the \
                 fitted model from disk"
            ),
        }
    }
}

impl Checkpoint {
    /// A checkpoint of the given offsets and statistics.
    pub fn new(offsets: BTreeMap<String, u64>, stats: StreamStats) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            offsets,
            stats,
            spec: None,
            model_path: None,
        }
    }

    /// Record the validator spec serving this deployment.
    pub fn with_spec(mut self, spec: ValidatorSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Record where the fitted model is persisted, so a restart reloads it
    /// instead of refitting.
    pub fn with_model_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.model_path = Some(path.into());
        self
    }

    /// Structured warnings about restore capabilities this checkpoint lacks
    /// — empty for a fully-populated current-layout checkpoint. Legacy files
    /// (pre-spec, pre-model-path) load fine; this names what degraded.
    pub fn warnings(&self) -> Vec<CheckpointWarning> {
        let mut warnings = Vec::new();
        if self.spec.is_none() {
            warnings.push(CheckpointWarning::MissingSpec);
        }
        if self.model_path.is_none() {
            warnings.push(CheckpointWarning::MissingModelPath);
        }
        warnings
    }

    /// The restored offset for one source (0 when the source is new).
    pub fn offset_for(&self, source: &str) -> u64 {
        self.offsets.get(source).copied().unwrap_or(0)
    }

    /// Serialise to pretty JSON (what [`save`] writes).
    ///
    /// [`save`]: Checkpoint::save
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serialisation is infallible")
    }

    /// Parse a checkpoint from JSON text, rejecting future format versions
    /// with the distinct [`SourceError::CheckpointVersion`].
    pub fn from_json(text: &str) -> Result<Self, SourceError> {
        let checkpoint: Checkpoint =
            serde_json::from_str(text).map_err(|e| SourceError::Checkpoint(e.to_string()))?;
        if checkpoint.version > CHECKPOINT_VERSION {
            return Err(SourceError::CheckpointVersion {
                found: checkpoint.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(checkpoint)
    }

    /// Write atomically: the JSON goes in full to a temp sibling unique to
    /// this call (so concurrent writers — the interval checkpointer racing
    /// a manual `write_checkpoint` — can never interleave into one file),
    /// then a rename moves it into place. Last rename wins, and the file at
    /// `path` is always a complete document.
    pub fn save(&self, path: &Path) -> Result<(), SourceError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)
                    .map_err(|e| SourceError::Checkpoint(format!("creating {parent:?}: {e}")))?;
            }
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, self.to_json())
            .map_err(|e| SourceError::Checkpoint(format!("writing {tmp:?}: {e}")))?;
        fs::rename(&tmp, path)
            .map_err(|e| SourceError::Checkpoint(format!("renaming {tmp:?} into place: {e}")))?;
        Ok(())
    }

    /// Load a checkpoint, erroring on unreadable or corrupt files. Use
    /// [`recover`] for the lenient startup path.
    ///
    /// [`recover`]: Checkpoint::recover
    pub fn load(path: &Path) -> Result<Self, SourceError> {
        let text = fs::read_to_string(path)
            .map_err(|e| SourceError::Checkpoint(format!("reading {path:?}: {e}")))?;
        Self::from_json(&text)
    }

    /// The lenient startup path: a missing, truncated or otherwise corrupt
    /// checkpoint yields `Ok(None)` — the deployment starts fresh instead
    /// of refusing to boot over a damaged file. (The atomic [`save`] makes
    /// corruption unlikely; this guards against operator edits and partial
    /// disks.)
    ///
    /// One failure is *not* forgiven: a checkpoint written by a newer build
    /// ([`SourceError::CheckpointVersion`]) propagates as an error. Starting
    /// fresh there would soon overwrite the newer deployment's durable
    /// offsets — a rollback must be an explicit operator decision.
    ///
    /// [`save`]: Checkpoint::save
    pub fn recover(path: &Path) -> Result<Option<Self>, SourceError> {
        match Self::load(path) {
            Ok(checkpoint) => Ok(Some(checkpoint)),
            Err(version @ SourceError::CheckpointVersion { .. }) => Err(version),
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut offsets = BTreeMap::new();
        offsets.insert("net".to_string(), 17);
        offsets.insert("dir".to_string(), 4);
        let stats_json = serde_json::to_string(&StreamStats {
            submitted: 21,
            dropped: 0,
            rejected: 0,
            timed_out: 0,
            emitted: 21,
            dirty: 6,
            failed: 0,
            deadline_exceeded: 0,
            late_discarded: 0,
            queue_depth: 0,
            in_flight: 0,
            rows_validated: 2_100,
            rows_per_sec: 350.5,
            p50_latency: std::time::Duration::from_millis(12),
            p99_latency: std::time::Duration::from_millis(40),
            uptime: std::time::Duration::from_secs(6),
            replicas: 2,
        })
        .unwrap();
        Checkpoint::new(offsets, serde_json::from_str(&stats_json).unwrap())
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let checkpoint = sample();
        let back = Checkpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(back, checkpoint);
        assert_eq!(back.offset_for("net"), 17);
        assert_eq!(back.offset_for("unknown"), 0);
    }

    #[test]
    fn validator_spec_rides_the_checkpoint_and_old_files_still_load() {
        use dquag_core::spec::{ValidatorSpec, Voting};
        let spec = ValidatorSpec::ensemble(
            vec![ValidatorSpec::backend("dquag"), ValidatorSpec::drift()],
            Voting::Majority,
        );
        let checkpoint = sample().with_spec(spec.clone());
        let back = Checkpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(back.spec.as_ref(), Some(&spec));

        // A pre-spec checkpoint (no `spec` key at all) loads with `None`.
        let mut legacy = serde_json::to_value(&sample());
        if let serde::Value::Object(map) = &mut legacy {
            assert!(map.remove("spec").is_some());
        }
        let legacy_text = serde_json::to_string(&legacy).unwrap();
        let restored = Checkpoint::from_json(&legacy_text).unwrap();
        assert_eq!(restored.spec, None);
        assert_eq!(restored.offset_for("net"), 17);
    }

    #[test]
    fn legacy_layouts_load_with_structured_warnings() {
        use dquag_core::spec::ValidatorSpec;

        // A fully-populated current-layout checkpoint: nothing degraded.
        let full = sample()
            .with_spec(ValidatorSpec::drift())
            .with_model_path("/var/lib/dquag/model.json");
        let back = Checkpoint::from_json(&full.to_json()).unwrap();
        assert_eq!(
            back.model_path.as_deref(),
            Some(Path::new("/var/lib/dquag/model.json"))
        );
        assert!(back.warnings().is_empty());

        // Spec-era fixture (specs existed, persisted models did not): the
        // `model_path` key is absent from the file entirely.
        let mut spec_era = serde_json::to_value(&full);
        if let serde::Value::Object(map) = &mut spec_era {
            assert!(map.remove("model_path").is_some());
        }
        let text = serde_json::to_string(&spec_era).unwrap();
        let restored = Checkpoint::from_json(&text).unwrap();
        assert_eq!(restored.model_path, None);
        assert_eq!(
            restored.warnings(),
            vec![CheckpointWarning::MissingModelPath]
        );
        assert!(restored.warnings()[0]
            .to_string()
            .contains("refit from scratch"));

        // Pre-spec fixture (the oldest layout): neither key exists. Offsets
        // and stats still restore; both capabilities are reported missing.
        let mut pre_spec = serde_json::to_value(&full);
        if let serde::Value::Object(map) = &mut pre_spec {
            assert!(map.remove("spec").is_some());
            assert!(map.remove("model_path").is_some());
        }
        let text = serde_json::to_string(&pre_spec).unwrap();
        let restored = Checkpoint::from_json(&text).unwrap();
        assert_eq!(
            restored.warnings(),
            vec![
                CheckpointWarning::MissingSpec,
                CheckpointWarning::MissingModelPath
            ]
        );
        assert_eq!(restored.offset_for("net"), 17);
    }

    #[test]
    fn future_versions_are_refused_even_by_recover() {
        let mut checkpoint = sample();
        checkpoint.version = CHECKPOINT_VERSION + 1;
        let err = Checkpoint::from_json(&checkpoint.to_json()).unwrap_err();
        assert!(matches!(
            err,
            crate::SourceError::CheckpointVersion { found, supported }
                if found == CHECKPOINT_VERSION + 1 && supported == CHECKPOINT_VERSION
        ));
        assert!(err.to_string().contains("newer"));

        // The lenient path forgives corruption, never a version rollback:
        // starting fresh would overwrite the newer deployment's offsets.
        let dir = std::env::temp_dir().join("dquag_checkpoint_version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        std::fs::write(&path, checkpoint.to_json()).unwrap();
        assert!(Checkpoint::recover(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir().join("dquag_checkpoint_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let checkpoint = sample();
        checkpoint.save(&path).unwrap();
        // No temp-file residue.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), checkpoint);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_saves_never_corrupt_the_file() {
        let dir = std::env::temp_dir().join("dquag_checkpoint_concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let checkpoint = sample();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        checkpoint.save(&path).expect("save succeeds");
                        // Whatever writer last renamed, the file is complete.
                        assert_eq!(Checkpoint::load(&path).unwrap(), checkpoint);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_tolerates_missing_and_corrupt_files() {
        let dir = std::env::temp_dir().join("dquag_checkpoint_recover");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Checkpoint::recover(&dir.join("nope.json")).unwrap(), None);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"version\": 1, \"offse").unwrap();
        assert_eq!(Checkpoint::recover(&bad).unwrap(), None);
        assert!(Checkpoint::load(&bad).is_err());
        std::fs::remove_file(&bad).ok();
    }
}
