//! `poll(2)`-style readiness for the connection multiplexer — no async
//! runtime, no extra dependencies.
//!
//! On Linux this calls the real `poll(2)` through the libc the standard
//! library already links, so a worker parks in the kernel until one of its
//! sockets has bytes (or can take bytes) and wakes in microseconds. On
//! other platforms the same API degrades to a short-sleep emulation that
//! reports every socket ready; the nonblocking reads then sort out who
//! actually had data. Correctness is identical either way — only the idle
//! cost differs.

use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// What one descriptor can do right now.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Readiness {
    /// Bytes (or EOF, or a pending error) can be read.
    pub readable: bool,
    /// The send buffer can take more bytes.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; the owner should drive
    /// the connection and let the read surface the close.
    pub closed: bool,
}

/// Anything with a kernel descriptor the poll set can watch.
pub(crate) trait PollSource {
    #[cfg(unix)]
    fn poll_fd(&self) -> RawFd;
}

#[cfg(unix)]
impl<T: AsRawFd> PollSource for T {
    fn poll_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> PollSource for T {}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_short, c_ulong};

    pub(super) const POLLIN: c_short = 0x001;
    pub(super) const POLLOUT: c_short = 0x004;
    pub(super) const POLLERR: c_short = 0x008;
    pub(super) const POLLHUP: c_short = 0x010;
    pub(super) const POLLNVAL: c_short = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub(super) struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        // The libc std already links; `nfds_t` is `unsigned long` on Linux.
        pub(super) fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

/// A reusable readiness set: push the descriptors to watch, [`wait`], then
/// read each one's [`Readiness`] back by push order.
///
/// [`wait`]: PollSet::wait
#[derive(Default)]
pub(crate) struct PollSet {
    #[cfg(target_os = "linux")]
    fds: Vec<sys::PollFd>,
    #[cfg(not(target_os = "linux"))]
    len: usize,
}

impl PollSet {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Forget every watched descriptor (buffers are reused).
    pub(crate) fn clear(&mut self) {
        #[cfg(target_os = "linux")]
        self.fds.clear();
        #[cfg(not(target_os = "linux"))]
        {
            self.len = 0;
        }
    }

    /// Watch `source` for readability, and for writability too when
    /// `want_write` is set (a connection with queued reply bytes).
    pub(crate) fn push(&mut self, source: &impl PollSource, want_write: bool) {
        #[cfg(target_os = "linux")]
        {
            let mut events = sys::POLLIN;
            if want_write {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd: source.poll_fd(),
                events,
                revents: 0,
            });
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (source, want_write);
            self.len += 1;
        }
    }

    /// Block until at least one watched descriptor is ready or `timeout`
    /// elapses. Interruptions and poll errors report as a plain timeout —
    /// the caller's loop re-polls, so nothing is lost.
    pub(crate) fn wait(&mut self, timeout: Duration) {
        #[cfg(target_os = "linux")]
        {
            let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: `fds` is a correctly-shaped `pollfd` array and the
            // kernel only writes `revents` within its bounds.
            let rc = unsafe {
                sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    millis,
                )
            };
            if rc < 0 {
                // EINTR or transient failure: report nothing ready.
                for fd in &mut self.fds {
                    fd.revents = 0;
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
    }

    /// The readiness of the `index`-th pushed descriptor after [`wait`].
    /// The non-Linux emulation reports everything ready, which is safe
    /// because every consumer reads/writes nonblockingly.
    ///
    /// [`wait`]: PollSet::wait
    pub(crate) fn readiness(&self, index: usize) -> Readiness {
        #[cfg(target_os = "linux")]
        {
            let revents = self.fds[index].revents;
            Readiness {
                readable: revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                writable: revents & sys::POLLOUT != 0,
                closed: revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = index;
            Readiness {
                readable: true,
                writable: true,
                closed: false,
            }
        }
    }
}

/// A wake channel into a worker's poll loop: the accept side signals a new
/// registration (or shutdown) and the worker returns from [`PollSet::wait`]
/// immediately instead of at its next timeout.
///
/// On Unix this is a nonblocking socketpair whose read end sits in the poll
/// set; elsewhere the worker's short emulation timeout bounds the latency
/// and the wake is a no-op.
pub(crate) struct WakeReceiver {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

/// The sending half of a worker's wake channel (cloneable, thread-safe).
#[derive(Clone)]
pub(crate) struct WakeSender {
    #[cfg(unix)]
    tx: std::sync::Arc<std::os::unix::net::UnixStream>,
}

/// A connected wake pair, or a no-op stand-in when pairs are unavailable.
pub(crate) fn wake_channel() -> (WakeSender, WakeReceiver) {
    #[cfg(unix)]
    {
        use std::os::unix::net::UnixStream;
        let (tx, rx) = UnixStream::pair().expect("socketpair for worker wake channel");
        tx.set_nonblocking(true).ok();
        rx.set_nonblocking(true).ok();
        (
            WakeSender {
                tx: std::sync::Arc::new(tx),
            },
            WakeReceiver { rx },
        )
    }
    #[cfg(not(unix))]
    {
        (WakeSender {}, WakeReceiver {})
    }
}

impl WakeSender {
    /// Nudge the worker. A full pipe means a wake is already pending, which
    /// is exactly as good as another byte.
    pub(crate) fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&*self.tx).write(&[1u8]);
        }
    }
}

impl WakeReceiver {
    /// Whether the receiver owns a real descriptor to poll.
    #[cfg(unix)]
    pub(crate) fn pollable(&self) -> Option<&std::os::unix::net::UnixStream> {
        Some(&self.rx)
    }

    #[cfg(not(unix))]
    pub(crate) fn pollable(&self) -> Option<&std::net::TcpStream> {
        None
    }

    /// Swallow every pending wake byte so the next poll blocks again.
    pub(crate) fn drain(&mut self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Instant;

    #[test]
    fn wake_interrupts_a_long_wait() {
        let (tx, mut rx) = wake_channel();
        let mut set = PollSet::new();
        if let Some(source) = rx.pollable() {
            set.push(source, false);
        }
        tx.wake();
        let started = Instant::now();
        set.wait(Duration::from_secs(2));
        // Real poll returns on the wake byte; the emulation's wait is capped
        // at a couple of milliseconds. Either way this must be fast.
        assert!(started.elapsed() < Duration::from_secs(1));
        rx.drain();
    }

    #[test]
    fn readable_socket_reports_readiness() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = std::net::TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        client.write_all(b"x").expect("write");

        let mut set = PollSet::new();
        set.push(&server, true);
        set.wait(Duration::from_secs(2));
        let ready = set.readiness(0);
        assert!(ready.readable);
        assert!(ready.writable);

        set.clear();
        set.push(&server, false);
        drop(client);
        set.wait(Duration::from_secs(2));
        assert!(set.readiness(0).readable, "EOF must read as readable");
    }
}
