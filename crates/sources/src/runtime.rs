//! The [`SourceRuntime`]: a supervisor multiplexing N sources into one
//! [`IngestHandle`], with background checkpointing and a graceful,
//! checkpoint-on-drain shutdown.

use crate::checkpoint::Checkpoint;
use crate::source::{PollOutcome, Source, SourceError, SourceSink};
use dquag_core::{SourceConfig, ValidatorSpec};
use dquag_stream::IngestHandle;
use dquag_telemetry::{Counter, FlightEventKind, Telemetry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sleep granularity for stop-aware waits: how quickly supervisors notice
/// shutdown while idling through a poll interval.
const STOP_CHECK: Duration = Duration::from_millis(10);

/// Per-source bookkeeping the runtime keeps after handing the source itself
/// to its supervisor thread.
struct SourceSlot {
    name: String,
    offset: Arc<AtomicU64>,
}

/// State shared between the runtime handle, the supervisors and the
/// checkpointer.
struct RuntimeShared {
    /// The same flag every [`SourceSink`] carries: one raise stops sinks,
    /// supervisors and the checkpointer together.
    stop: Arc<AtomicBool>,
    slots: Vec<SourceSlot>,
    /// Used for statistics snapshots in checkpoints; also keeps the engine's
    /// ingestion side open for the runtime's whole lifetime.
    ingest: IngestHandle,
    config: SourceConfig,
    /// The declarative spec of the validator the engine runs, recorded into
    /// every checkpoint when known.
    spec: Option<ValidatorSpec>,
    /// Errors source supervisors survived (decode failures are handled
    /// inside the sources; what lands here is I/O-level trouble).
    errors: Mutex<Vec<String>>,
    metrics: Option<RuntimeMetrics>,
}

/// Telemetry handles the runtime resolves once at start.
struct RuntimeMetrics {
    telemetry: Arc<Telemetry>,
    checkpoint_writes: Arc<Counter>,
}

impl RuntimeMetrics {
    fn new(telemetry: Arc<Telemetry>) -> Self {
        Self {
            checkpoint_writes: telemetry.registry().counter(
                "dquag_checkpoint_writes_total",
                "Durable source-offset checkpoints written",
            ),
            telemetry,
        }
    }
}

impl RuntimeShared {
    fn record_error(&self, source: &str, error: &SourceError) {
        let mut errors = self.errors.lock().expect("runtime error log poisoned");
        errors.push(format!("{source}: {error}"));
        drop(errors);
        if let Some(metrics) = &self.metrics {
            metrics.telemetry.event(FlightEventKind::SourceError {
                source: source.to_string(),
                message: error.to_string(),
            });
        }
    }

    fn snapshot(&self) -> Checkpoint {
        let offsets: BTreeMap<String, u64> = self
            .slots
            .iter()
            .map(|slot| (slot.name.clone(), slot.offset.load(Ordering::SeqCst)))
            .collect();
        let checkpoint = Checkpoint::new(offsets, self.ingest.stats());
        match &self.spec {
            Some(spec) => checkpoint.with_spec(spec.clone()),
            None => checkpoint,
        }
    }

    fn write_checkpoint(&self) -> Result<Option<Checkpoint>, SourceError> {
        let Some(path) = &self.config.checkpoint.path else {
            return Ok(None);
        };
        let checkpoint = self.snapshot();
        checkpoint.save(path)?;
        if let Some(metrics) = &self.metrics {
            metrics.checkpoint_writes.inc();
            metrics.telemetry.event(FlightEventKind::CheckpointWrite {
                path: path.display().to_string(),
            });
        }
        Ok(Some(checkpoint))
    }
}

/// Configures and starts a [`SourceRuntime`].
#[derive(Default)]
pub struct SourceRuntimeBuilder {
    config: SourceConfig,
    sources: Vec<Box<dyn Source>>,
    restored: Option<Checkpoint>,
    spec: Option<ValidatorSpec>,
    telemetry: Option<Arc<Telemetry>>,
}

impl SourceRuntimeBuilder {
    /// Adopt a whole source-layer configuration block (typically
    /// `DquagConfig::source`).
    pub fn config(mut self, config: &SourceConfig) -> Self {
        self.config = config.clone();
        self
    }

    /// Register one source. Names must be unique within the runtime — they
    /// key the checkpoint.
    pub fn source(mut self, source: Box<dyn Source>) -> Self {
        self.sources.push(source);
        self
    }

    /// Resume from a restored checkpoint: every registered source starts at
    /// its persisted offset. Pair this with
    /// `StreamEngineBuilder::restore_stats(checkpoint.stats)` on the engine
    /// side so the statistics continue too. A spec recorded in the
    /// checkpoint carries over unless [`spec`] overrides it.
    ///
    /// [`spec`]: SourceRuntimeBuilder::spec
    pub fn restore(mut self, checkpoint: Checkpoint) -> Self {
        if self.spec.is_none() {
            self.spec = checkpoint.spec.clone();
        }
        self.restored = Some(checkpoint);
        self
    }

    /// Record the declarative spec of the validator the engine runs, so
    /// every checkpoint (and the listener's stats surfaces) names the
    /// active validator tree.
    pub fn spec(mut self, spec: ValidatorSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Attach a telemetry bundle: the runtime counts checkpoint writes and
    /// journals checkpoint/error events in the flight recorder. Share the
    /// engine's bundle so the whole pipeline lands in one registry.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Start every source (synchronously, so bind/scan failures surface
    /// here) and spawn the supervisor and checkpointer threads.
    pub fn start(self, ingest: IngestHandle) -> Result<SourceRuntime, SourceError> {
        let config = self
            .config
            .validated()
            .map_err(|e| SourceError::InvalidConfig(e.to_string()))?;
        if self.sources.is_empty() {
            return Err(SourceError::InvalidConfig(
                "a source runtime needs at least one source".to_string(),
            ));
        }
        for (i, source) in self.sources.iter().enumerate() {
            if self.sources[..i].iter().any(|s| s.name() == source.name()) {
                return Err(SourceError::InvalidConfig(format!(
                    "duplicate source name `{}`",
                    source.name()
                )));
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut slots = Vec::new();
        let mut started: Vec<(Box<dyn Source>, SourceSink)> = Vec::new();
        for mut source in self.sources {
            let resume_from = self
                .restored
                .as_ref()
                .map_or(0, |checkpoint| checkpoint.offset_for(source.name()));
            let offset = Arc::new(AtomicU64::new(resume_from));
            let sink = SourceSink::new(
                source.name(),
                ingest.clone(),
                Arc::clone(&offset),
                Arc::clone(&stop),
            );
            if let Err(e) = source.start(&sink, resume_from) {
                // Unwind the sources already started so no listener leaks.
                for (mut other, _sink) in started {
                    other.shutdown();
                }
                return Err(e);
            }
            slots.push(SourceSlot {
                name: source.name().to_string(),
                offset,
            });
            started.push((source, sink));
        }

        let shared = Arc::new(RuntimeShared {
            stop,
            slots,
            ingest,
            config,
            spec: self.spec,
            errors: Mutex::new(Vec::new()),
            metrics: self.telemetry.map(RuntimeMetrics::new),
        });

        let supervisors = started
            .into_iter()
            .map(|(source, sink)| {
                let shared = Arc::clone(&shared);
                let name = source.name().to_string();
                std::thread::Builder::new()
                    .name(format!("dquag-source-{name}"))
                    .spawn(move || supervise(source, sink, &shared))
                    .expect("spawning a source supervisor succeeds")
            })
            .collect();

        let checkpointer = shared.config.checkpoint.path.is_some().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dquag-checkpointer".to_string())
                .spawn(move || {
                    let interval = shared.config.checkpoint.interval;
                    loop {
                        if !sleep_unless(&shared.stop, interval) {
                            // Final write happens in shutdown(), with the
                            // sources already drained.
                            return;
                        }
                        if let Err(e) = shared.write_checkpoint() {
                            shared.record_error("checkpointer", &e);
                        }
                    }
                })
                .expect("spawning the checkpointer succeeds")
        });

        Ok(SourceRuntime {
            shared,
            supervisors,
            checkpointer,
            finished: false,
        })
    }
}

/// Sleep up to `duration` in stop-aware increments; false when stopped.
fn sleep_unless(stop: &AtomicBool, duration: Duration) -> bool {
    let deadline = Instant::now() + duration;
    loop {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep(STOP_CHECK.min(deadline - now));
    }
}

/// One supervisor thread: drive a source through its lifecycle.
fn supervise(mut source: Box<dyn Source>, sink: SourceSink, shared: &RuntimeShared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match source.poll(&sink) {
            Ok(PollOutcome::Progressed) => {}
            Ok(PollOutcome::Idle) => {
                sleep_unless(&shared.stop, shared.config.poll_interval);
            }
            Ok(PollOutcome::Exhausted) => break,
            // Nothing left to deliver into; retire the source.
            Err(SourceError::EngineClosed) => break,
            Err(e) => {
                // Transient trouble (a failing disk, a hostile peer) must
                // not kill the whole source: log it and back off.
                shared.record_error(source.name(), &e);
                sleep_unless(&shared.stop, shared.config.poll_interval);
            }
        }
    }
    source.drain(&sink);
    source.shutdown();
}

/// The running source layer: N supervised sources feeding one engine, plus
/// the background checkpointer.
///
/// [`shutdown`] stops every source, lets each drain (the network listener
/// finishes in-flight frames, the directory watcher completes its current
/// file), writes a final checkpoint and returns it. Dropping the runtime
/// does the same minus the returned value.
///
/// [`shutdown`]: SourceRuntime::shutdown
pub struct SourceRuntime {
    shared: Arc<RuntimeShared>,
    supervisors: Vec<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    /// True once [`shutdown`] has run, so the `Drop` impl does not write a
    /// second, later-stamped checkpoint over the one shutdown returned.
    ///
    /// [`shutdown`]: SourceRuntime::shutdown
    finished: bool,
}

impl SourceRuntime {
    /// Start configuring a runtime.
    pub fn builder() -> SourceRuntimeBuilder {
        SourceRuntimeBuilder::default()
    }

    /// Durable offsets per source, as they would be checkpointed right now.
    pub fn offsets(&self) -> BTreeMap<String, u64> {
        self.shared.snapshot().offsets
    }

    /// A checkpoint snapshot of the current state (without writing it).
    pub fn checkpoint(&self) -> Checkpoint {
        self.shared.snapshot()
    }

    /// Write a checkpoint immediately. `Ok(None)` when checkpointing is
    /// disabled (no path configured).
    pub fn write_checkpoint(&self) -> Result<Option<Checkpoint>, SourceError> {
        self.shared.write_checkpoint()
    }

    /// Errors the supervisors and checkpointer survived so far.
    pub fn errors(&self) -> Vec<String> {
        self.shared
            .errors
            .lock()
            .expect("runtime error log poisoned")
            .clone()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for supervisor in self.supervisors.drain(..) {
            let _ = supervisor.join();
        }
        if let Some(checkpointer) = self.checkpointer.take() {
            let _ = checkpointer.join();
        }
    }

    /// Stop and drain every source, write the final checkpoint (when
    /// configured) and return the runtime's last snapshot.
    pub fn shutdown(mut self) -> Result<Checkpoint, SourceError> {
        self.stop_and_join();
        self.finished = true;
        match self.shared.write_checkpoint()? {
            Some(checkpoint) => Ok(checkpoint),
            None => Ok(self.shared.snapshot()),
        }
    }
}

impl Drop for SourceRuntime {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        self.stop_and_join();
        // Best effort: never panic in drop over a full disk.
        let _ = self.shared.write_checkpoint();
    }
}
