//! The network source: one TCP listener serving both the line-framed raw
//! protocol and a minimal HTTP/1.1 endpoint.
//!
//! ## Raw protocol
//!
//! Line-framed, one reply line per command:
//!
//! ```text
//! client: BATCH <csv|ndjson> <payload-bytes>\n<payload>
//! server: ACK <seq> <rows>\n        (accepted; outcome appears on the verdict stream)
//!         DROPPED\n | REJECTED\n | TIMEOUT\n   (backpressure policy verdicts)
//!         ERR <message>\n            (decode/protocol problem; framing stays intact)
//! client: STATS\n
//! server: STATS <StreamStats JSON>\n
//! client: METRICS\n
//! server: METRICS <payload-bytes>\n<payload>   (Prometheus text; multi-line)
//! client: DRIFT\n
//! server: DRIFT <scoreboard JSON>\n  (ERR when data telemetry is off)
//! client: QUIT\n
//! server: BYE\n                      (connection closes)
//! ```
//!
//! ## HTTP
//!
//! The same listener speaks HTTP when the first line looks like a request
//! line: `POST /ingest` with a `Content-Length` body (`Content-Type:
//! text/csv` or `application/x-ndjson`) answers `202 Accepted` with a JSON
//! body, `GET /stats` serves the live [`StreamStats`] as
//! `application/json`, `GET /metrics` serves the attached telemetry
//! bundle's registry as Prometheus text (`text/plain; version=0.0.4`),
//! `GET /drift` serves the per-column drift scoreboard as JSON (404 when
//! the bundle's data layer is off), and decode problems come back as
//! `400`. One request per connection (`Connection: close`).
//!
//! [`StreamStats`]: dquag_stream::StreamStats

use crate::decode::{decode_batch, WireFormat};
use crate::source::{PollOutcome, Source, SourceError, SourceSink};
use dquag_stream::SubmitOutcome;
use dquag_tabular::{DataFrame, Schema};
use dquag_telemetry::{Counter, Stage, Telemetry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// `Content-Type` of `GET /stats` (and every JSON error body).
const CONTENT_TYPE_JSON: &str = "application/json";
/// `Content-Type` of `GET /metrics` — the Prometheus text exposition
/// format version clients content-negotiate on.
const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";

/// Cap on a protocol header line; a peer streaming an endless first line is
/// cut off instead of buffering unboundedly.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// How long a blocked connection read waits before re-checking the stop
/// flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// The TCP + HTTP ingestion listener.
///
/// Binding happens eagerly in [`bind`]/[`from_config`], so the caller can
/// learn the ephemeral port via [`local_addr`] before handing the source to
/// the runtime — and so a bad address fails at construction, not inside a
/// supervisor thread.
///
/// [`bind`]: NetListenerSource::bind
/// [`from_config`]: NetListenerSource::from_config
/// [`local_addr`]: NetListenerSource::local_addr
pub struct NetListenerSource {
    name: String,
    schema: Schema,
    max_frame_bytes: usize,
    spec: Option<dquag_core::ValidatorSpec>,
    telemetry: Option<Arc<Telemetry>>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Option<Arc<ConnShared>>,
    handlers: Vec<JoinHandle<()>>,
    /// The delivered-batch count as of shutdown, so [`Source::offset`]
    /// stays truthful after the sink is released.
    final_offset: u64,
}

/// Telemetry handles the listener resolves once at start.
struct NetMetrics {
    telemetry: Arc<Telemetry>,
    connections: Arc<Counter>,
    decode_errors: Arc<Counter>,
}

impl NetMetrics {
    fn new(telemetry: Arc<Telemetry>) -> Self {
        let r = telemetry.registry();
        Self {
            connections: r.counter(
                "dquag_source_connections_total",
                "TCP connections accepted by the network listener",
            ),
            decode_errors: r.counter(
                "dquag_source_decode_errors_total",
                "Payloads that failed wire-format decoding",
            ),
            telemetry,
        }
    }
}

/// Everything a per-connection handler thread needs.
struct ConnShared {
    schema: Schema,
    max_frame_bytes: usize,
    spec: Option<dquag_core::ValidatorSpec>,
    sink: SourceSink,
    metrics: Option<NetMetrics>,
}

impl ConnShared {
    /// The `STATS` / `GET /stats` payload: the live [`dquag_stream::StreamStats`]
    /// object, extended with an `active_spec` key naming the validator tree
    /// when the listener knows it. Extra keys are invisible to
    /// `StreamStats`-shaped readers, so pre-spec monitoring keeps parsing.
    fn stats_json(&self) -> String {
        let mut value = serde::Serialize::to_value(&self.sink.stats());
        if let (serde::Value::Object(map), Some(spec)) = (&mut value, &self.spec) {
            map.insert("active_spec".to_string(), serde::Serialize::to_value(spec));
        }
        serde_json::to_string(&value).expect("stats serialisation is infallible")
    }

    /// Decode one payload, timing the `decode` stage and counting failures
    /// when telemetry is attached.
    fn decode_observed(
        &self,
        format: WireFormat,
        payload: &[u8],
    ) -> Result<DataFrame, SourceError> {
        let started = Instant::now();
        let decoded = decode_batch(format, payload, &self.schema);
        if let Some(metrics) = &self.metrics {
            metrics
                .telemetry
                .record_stage(Stage::Decode, started.elapsed());
            if decoded.is_err() {
                metrics.decode_errors.inc();
            }
        }
        decoded
    }

    /// The Prometheus payload, or `None` when no telemetry is attached.
    fn prometheus(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .map(|metrics| metrics.telemetry.prometheus())
    }

    /// The `DRIFT` / `GET /drift` payload: the ranked per-column drift
    /// scoreboard as JSON, or `None` when no telemetry is attached or its
    /// data layer is off.
    fn drift_json(&self) -> Option<String> {
        self.metrics
            .as_ref()
            .and_then(|metrics| metrics.telemetry.drift_scoreboard())
            .map(|board| board.to_json_string())
    }
}

impl NetListenerSource {
    /// Bind the listener on `addr` (port 0 = ephemeral), serving batches
    /// typed by `schema`.
    pub fn bind(addr: &str, schema: Schema) -> Result<Self, SourceError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| SourceError::Io(format!("binding {addr}: {e}")))?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            name: "net".to_string(),
            schema,
            max_frame_bytes: dquag_core::SourceConfig::default().max_frame_bytes,
            spec: None,
            telemetry: None,
            listener,
            local_addr,
            shared: None,
            handlers: Vec::new(),
            final_offset: 0,
        })
    }

    /// Bind according to a [`dquag_core::SourceConfig`] block.
    pub fn from_config(
        config: &dquag_core::SourceConfig,
        schema: Schema,
    ) -> Result<Self, SourceError> {
        let mut source = Self::bind(&config.bind_addr, schema)?;
        source.max_frame_bytes = config.max_frame_bytes;
        Ok(source)
    }

    /// Override the source name (the checkpoint key); useful when one
    /// runtime hosts several listeners.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Override the per-frame payload cap.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Advertise the declarative spec of the validator behind this
    /// listener: `STATS` and `GET /stats` responses gain an `active_spec`
    /// key, so a monitoring client sees *what* is judging the traffic, not
    /// just how fast.
    pub fn with_spec(mut self, spec: dquag_core::ValidatorSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Attach a telemetry bundle: the listener counts connections and
    /// decode errors, times the `decode` stage, and serves the bundle's
    /// whole registry over `GET /metrics` (Prometheus text format) and the
    /// raw-protocol `METRICS` command. Share the same bundle with the
    /// engine so one scrape covers the full pipeline.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The bound address — ask after construction to learn an ephemeral
    /// port.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn reap_finished_handlers(&mut self) {
        let mut alive = Vec::new();
        for handle in self.handlers.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                alive.push(handle);
            }
        }
        self.handlers = alive;
    }
}

impl Source for NetListenerSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, sink: &SourceSink, _resume_from: u64) -> Result<(), SourceError> {
        // Network peers own redelivery (an unacknowledged frame is resent by
        // the client), so resuming needs no positioning here — the restored
        // offset already lives in the sink's counter.
        self.shared = Some(Arc::new(ConnShared {
            schema: self.schema.clone(),
            max_frame_bytes: self.max_frame_bytes,
            spec: self.spec.clone(),
            sink: sink.clone(),
            metrics: self.telemetry.clone().map(NetMetrics::new),
        }));
        Ok(())
    }

    fn poll(&mut self, _sink: &SourceSink) -> Result<PollOutcome, SourceError> {
        self.reap_finished_handlers();
        let shared = self
            .shared
            .as_ref()
            .expect("poll is only called after start")
            .clone();
        let mut accepted_any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted_any = true;
                    if let Some(metrics) = &shared.metrics {
                        metrics.connections.inc();
                    }
                    // Replies are single small lines; Nagle + delayed ACK
                    // would stall the request/reply rhythm by ~40 ms.
                    stream.set_nodelay(true).ok();
                    let conn = Arc::clone(&shared);
                    let handle = std::thread::Builder::new()
                        .name("dquag-source-conn".to_string())
                        .spawn(move || {
                            // Connection-level failures (peer reset, garbage
                            // mid-frame) end that connection only; the
                            // listener keeps serving.
                            let _ = handle_connection(stream, &conn);
                        })
                        .expect("spawning a connection handler succeeds");
                    self.handlers.push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SourceError::Io(format!("accept: {e}"))),
            }
        }
        Ok(if accepted_any {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        })
    }

    fn drain(&mut self, _sink: &SourceSink) {
        // The stop flag is set; handlers notice it within one read timeout
        // and exit after finishing the frame they are on, so joining here
        // never hangs and never abandons an accepted frame.
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
    }

    fn shutdown(&mut self) {
        self.final_offset = self.offset();
        self.shared = None;
    }

    fn offset(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(self.final_offset, |s| s.sink.offset())
    }
}

/// A line/payload reader over a non-blocking-ish socket: maintains its own
/// buffer so a read timeout (used to stay responsive to shutdown) never
/// loses partially received bytes.
struct FrameReader {
    stream: TcpStream,
    buffered: Vec<u8>,
}

/// Why a read loop ended without producing data.
enum ReadEnd {
    /// Peer closed the connection cleanly between frames.
    Eof,
    /// The runtime asked us to stop.
    Stopped,
}

impl FrameReader {
    fn new(stream: TcpStream) -> Result<Self, SourceError> {
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Self {
            stream,
            buffered: Vec::new(),
        })
    }

    fn fill(&mut self, sink: &SourceSink) -> Result<Option<ReadEnd>, SourceError> {
        if sink.should_stop() {
            return Ok(Some(ReadEnd::Stopped));
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Some(ReadEnd::Eof)),
            Ok(n) => {
                self.buffered.extend_from_slice(&chunk[..n]);
                Ok(None)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(SourceError::Io(format!("connection read: {e}"))),
        }
    }

    /// The next `\n`-terminated line (CR stripped), or `None` on clean EOF /
    /// stop. EOF in the middle of a line is a protocol error.
    fn read_line(&mut self, sink: &SourceSink) -> Result<Option<String>, SourceError> {
        loop {
            if let Some(pos) = self.buffered.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buffered.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                let text = String::from_utf8(line)
                    .map_err(|_| SourceError::Frame("non-UTF-8 protocol line".to_string()))?;
                return Ok(Some(text));
            }
            if self.buffered.len() > MAX_LINE_BYTES {
                return Err(SourceError::Frame("protocol line too long".to_string()));
            }
            match self.fill(sink)? {
                Some(ReadEnd::Stopped) => return Ok(None),
                Some(ReadEnd::Eof) if self.buffered.is_empty() => return Ok(None),
                Some(ReadEnd::Eof) => {
                    return Err(SourceError::Frame("connection closed mid-line".to_string()))
                }
                None => {}
            }
        }
    }

    /// Exactly `n` payload bytes, or `None` when stopped mid-wait.
    fn read_exact(&mut self, n: usize, sink: &SourceSink) -> Result<Option<Vec<u8>>, SourceError> {
        loop {
            if self.buffered.len() >= n {
                return Ok(Some(self.buffered.drain(..n).collect()));
            }
            match self.fill(sink)? {
                Some(ReadEnd::Stopped) => return Ok(None),
                Some(ReadEnd::Eof) => {
                    return Err(SourceError::Frame(format!(
                        "connection closed {} bytes into a {n}-byte payload",
                        self.buffered.len()
                    )))
                }
                None => {}
            }
        }
    }
}

/// Serve one connection until QUIT, EOF, stop, or an HTTP request (which is
/// one-shot).
fn handle_connection(stream: TcpStream, conn: &ConnShared) -> Result<(), SourceError> {
    let mut writer = stream
        .try_clone()
        .map_err(|e| SourceError::Io(format!("cloning connection: {e}")))?;
    let mut reader = FrameReader::new(stream)?;
    loop {
        let Some(line) = reader.read_line(&conn.sink)? else {
            return Ok(());
        };
        if is_http_request_line(&line) {
            handle_http(&line, &mut reader, &mut writer, conn)?;
            return Ok(()); // Connection: close
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("BATCH") => {
                let reply = match parse_batch_header(parts, conn.max_frame_bytes) {
                    Ok((format, len)) => {
                        let Some(payload) = reader.read_exact(len, &conn.sink)? else {
                            return Ok(());
                        };
                        ingest_reply(&payload, format, conn)
                    }
                    // A bad or oversized header leaves us unsure where the
                    // next frame starts; reply, then drop the connection to
                    // resynchronise.
                    Err(e) => {
                        write_line(&mut writer, &format!("ERR {}", one_line(&e.to_string())))?;
                        return Ok(());
                    }
                };
                write_line(&mut writer, &reply)?;
            }
            Some("STATS") => {
                write_line(&mut writer, &format!("STATS {}", conn.stats_json()))?;
            }
            Some("DRIFT") => match conn.drift_json() {
                Some(json) => write_line(&mut writer, &format!("DRIFT {json}"))?,
                None => write_line(&mut writer, "ERR data telemetry not enabled")?,
            },
            Some("METRICS") => match conn.prometheus() {
                // The payload is multi-line, so it is length-framed like
                // BATCH rather than line-framed like STATS.
                Some(text) => {
                    write_line(&mut writer, &format!("METRICS {}", text.len()))?;
                    writer
                        .write_all(text.as_bytes())
                        .map_err(|e| SourceError::Io(format!("connection write: {e}")))?;
                }
                None => write_line(&mut writer, "ERR telemetry not enabled")?,
            },
            Some("QUIT") => {
                write_line(&mut writer, "BYE")?;
                return Ok(());
            }
            Some(other) => {
                write_line(
                    &mut writer,
                    &format!("ERR unknown command `{}`", one_line(other)),
                )?;
                return Ok(());
            }
            None => {
                // Blank keep-alive line; ignore.
            }
        }
    }
}

/// `BATCH <fmt> <len>` → (format, len), enforcing the frame cap.
fn parse_batch_header<'a>(
    mut parts: impl Iterator<Item = &'a str>,
    max_frame_bytes: usize,
) -> Result<(WireFormat, usize), SourceError> {
    let format: WireFormat = parts
        .next()
        .ok_or_else(|| SourceError::Frame("BATCH needs a format (csv|ndjson)".to_string()))?
        .parse()?;
    let len: usize = parts
        .next()
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| SourceError::Frame("BATCH needs a payload byte count".to_string()))?;
    if parts.next().is_some() {
        return Err(SourceError::Frame(
            "BATCH takes exactly two arguments".to_string(),
        ));
    }
    if len > max_frame_bytes {
        return Err(SourceError::Frame(format!(
            "frame of {len} bytes exceeds the {max_frame_bytes}-byte limit"
        )));
    }
    Ok((format, len))
}

/// Decode and deliver one payload, producing the raw-protocol reply line.
fn ingest_reply(payload: &[u8], format: WireFormat, conn: &ConnShared) -> String {
    match conn.decode_observed(format, payload) {
        Ok(batch) if batch.is_empty() => "ERR empty batch".to_string(),
        Ok(batch) => {
            let n_rows = batch.n_rows();
            match conn.sink.deliver(batch) {
                Ok(SubmitOutcome::Enqueued(seq)) => format!("ACK {seq} {n_rows}"),
                // DROPPED / REJECTED / TIMEOUT — Display is the wire spelling.
                Ok(other) => other.to_string(),
                Err(_) => "ERR engine closed".to_string(),
            }
        }
        Err(e) => format!("ERR {}", one_line(&e.to_string())),
    }
}

/// Replies are single-line; squash any embedded line breaks from error
/// messages.
fn one_line(text: &str) -> String {
    text.replace(['\r', '\n'], " ")
}

fn write_line(writer: &mut TcpStream, line: &str) -> Result<(), SourceError> {
    writer
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| SourceError::Io(format!("connection write: {e}")))
}

// --- HTTP ------------------------------------------------------------------

fn is_http_request_line(line: &str) -> bool {
    line.ends_with("HTTP/1.1") || line.ends_with("HTTP/1.0")
}

/// Serve one HTTP request on the already-consumed request line.
fn handle_http(
    request_line: &str,
    reader: &mut FrameReader,
    writer: &mut TcpStream,
    conn: &ConnShared,
) -> Result<(), SourceError> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    // Drain headers, keeping the two we interpret.
    let mut content_length: Option<usize> = None;
    let mut content_type = String::new();
    loop {
        let Some(line) = reader.read_line(&conn.sink)? else {
            return Ok(());
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("content-type") {
                content_type = value.to_string();
            }
        }
    }

    match (method, path) {
        ("POST", "/ingest") => {
            let Some(len) = content_length else {
                return http_json(
                    writer,
                    "411 Length Required",
                    "{\"error\": \"Content-Length is required\"}",
                );
            };
            if len > conn.max_frame_bytes {
                return http_json(
                    writer,
                    "413 Payload Too Large",
                    &format!(
                        "{{\"error\": \"body of {len} bytes exceeds the {}-byte limit\"}}",
                        conn.max_frame_bytes
                    ),
                );
            }
            let Some(body) = reader.read_exact(len, &conn.sink)? else {
                return Ok(());
            };
            let format = WireFormat::from_content_type(&content_type);
            match conn.decode_observed(format, &body) {
                Ok(batch) if batch.is_empty() => {
                    http_json(writer, "400 Bad Request", "{\"error\": \"empty batch\"}")
                }
                Ok(batch) => {
                    let n_rows = batch.n_rows();
                    match conn.sink.deliver(batch) {
                        Ok(SubmitOutcome::Enqueued(seq)) => http_json(
                            writer,
                            "202 Accepted",
                            &format!(
                                "{{\"status\": \"enqueued\", \"seq\": {seq}, \"rows\": {n_rows}}}"
                            ),
                        ),
                        Ok(other) => http_json(
                            writer,
                            "503 Service Unavailable",
                            &format!(
                                "{{\"status\": \"{}\"}}",
                                other.to_string().to_ascii_lowercase()
                            ),
                        ),
                        Err(_) => http_json(
                            writer,
                            "503 Service Unavailable",
                            "{\"error\": \"engine closed\"}",
                        ),
                    }
                }
                Err(e) => {
                    let message = one_line(&e.to_string()).replace('"', "'");
                    http_json(
                        writer,
                        "400 Bad Request",
                        &format!("{{\"error\": \"{message}\"}}"),
                    )
                }
            }
        }
        ("GET", "/stats") => http_json(writer, "200 OK", &conn.stats_json()),
        ("GET", "/metrics") => match conn.prometheus() {
            Some(text) => http_reply(writer, "200 OK", CONTENT_TYPE_PROMETHEUS, &text),
            None => http_json(
                writer,
                "404 Not Found",
                "{\"error\": \"telemetry not enabled\"}",
            ),
        },
        ("GET", "/drift") => match conn.drift_json() {
            Some(json) => http_json(writer, "200 OK", &json),
            None => http_json(
                writer,
                "404 Not Found",
                "{\"error\": \"data telemetry not enabled\"}",
            ),
        },
        _ => http_json(
            writer,
            "404 Not Found",
            "{\"error\": \"try POST /ingest, GET /stats, GET /metrics or GET /drift\"}",
        ),
    }
}

/// A JSON-bodied reply (every route except the Prometheus scrape).
fn http_json(writer: &mut TcpStream, status: &str, body: &str) -> Result<(), SourceError> {
    http_reply(writer, status, CONTENT_TYPE_JSON, body)
}

fn http_reply(
    writer: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> Result<(), SourceError> {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    writer
        .write_all(response.as_bytes())
        .map_err(|e| SourceError::Io(format!("connection write: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_headers_parse_and_enforce_limits() {
        let (format, len) = parse_batch_header("csv 120".split_whitespace(), 1024).unwrap();
        assert_eq!(format, WireFormat::Csv);
        assert_eq!(len, 120);
        assert!(parse_batch_header("csv".split_whitespace(), 1024).is_err());
        assert!(parse_batch_header("csv many".split_whitespace(), 1024).is_err());
        assert!(parse_batch_header("xml 10".split_whitespace(), 1024).is_err());
        assert!(parse_batch_header("csv 10 extra".split_whitespace(), 1024).is_err());
        let err = parse_batch_header("csv 2048".split_whitespace(), 1024).unwrap_err();
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn http_request_lines_are_recognised() {
        assert!(is_http_request_line("POST /ingest HTTP/1.1"));
        assert!(is_http_request_line("GET /stats HTTP/1.0"));
        assert!(!is_http_request_line("BATCH csv 99"));
        assert!(!is_http_request_line("STATS"));
    }

    #[test]
    fn replies_are_single_line() {
        assert_eq!(one_line("a\nb\rc"), "a b c");
    }
}
