//! The network source: one TCP listener serving both the line-framed raw
//! protocol and a minimal HTTP/1.1 endpoint, multiplexed over a small
//! fixed worker pool.
//!
//! ## Serving model
//!
//! Accepted sockets are made nonblocking and handed to one of
//! [`ServingConfig::workers`] pool threads, each driving its set of
//! connections off `poll(2)`-style readiness (see [`poll`](crate::poll) —
//! no async runtime). The thread budget is the pool size, independent of
//! connection count. Accepts beyond [`ServingConfig::max_connections`] are
//! refused *loudly*: the first line is answered with `503 Service
//! Unavailable` (HTTP) or `REJECTED` (raw protocol), the refusal is
//! counted (`dquag_source_accept_rejects_total`) and recorded as an
//! `accept_overflow` flight event, and the socket closes. Connections idle
//! longer than [`ServingConfig::idle_timeout`] are closed.
//!
//! ## Raw protocol
//!
//! Line-framed, one reply line per command:
//!
//! ```text
//! client: BATCH <csv|ndjson> <payload-bytes>\n<payload>
//! server: ACK <seq> <rows>\n        (accepted; outcome appears on the verdict stream)
//!         DROPPED\n | REJECTED\n | TIMEOUT\n   (backpressure policy verdicts)
//!         ERR <message>\n            (decode/protocol problem; framing stays intact)
//! client: STATS\n
//! server: STATS <StreamStats JSON>\n
//! client: METRICS\n
//! server: METRICS <payload-bytes>\n<payload>   (Prometheus text; multi-line)
//! client: DRIFT\n
//! server: DRIFT <scoreboard JSON>\n  (ERR when data telemetry is off)
//! client: QUIT\n
//! server: BYE\n                      (connection closes)
//! ```
//!
//! ## HTTP
//!
//! The same listener speaks HTTP when the first line has the
//! `METHOD SP PATH SP VERSION` request-line shape: `POST /ingest` with a
//! `Content-Length` body (`Content-Type: text/csv` or
//! `application/x-ndjson`) answers `202 Accepted` with a JSON body,
//! `GET /stats` serves the live [`StreamStats`] as `application/json`,
//! `GET /metrics` serves the attached telemetry bundle's registry as
//! Prometheus text (`text/plain; version=0.0.4`), `GET /drift` serves the
//! per-column drift scoreboard as JSON (404 when the bundle's data layer
//! is off), and decode problems come back as `400`. A request carrying
//! `Connection: keep-alive` is answered in kind and the socket serves the
//! next request, up to [`ServingConfig::max_requests_per_connection`];
//! requests without the header get `Connection: close`, exactly as before
//! keep-alive existed.
//!
//! [`StreamStats`]: dquag_stream::StreamStats
//! [`ServingConfig::workers`]: dquag_core::ServingConfig::workers
//! [`ServingConfig::max_connections`]: dquag_core::ServingConfig::max_connections
//! [`ServingConfig::idle_timeout`]: dquag_core::ServingConfig::idle_timeout
//! [`ServingConfig::max_requests_per_connection`]: dquag_core::ServingConfig::max_requests_per_connection

use crate::conn::{Conn, ConnShared, NetMetrics};
use crate::poll::{wake_channel, PollSet, WakeReceiver, WakeSender};
use crate::source::{PollOutcome, Source, SourceError, SourceSink};
use dquag_telemetry::{FlightEventKind, Telemetry};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker's readiness wait lasts before it re-checks the stop
/// flag and connection deadlines.
const POLL_TICK: Duration = Duration::from_millis(50);

/// The TCP + HTTP ingestion listener.
///
/// Binding happens eagerly in [`bind`]/[`from_config`], so the caller can
/// learn the ephemeral port via [`local_addr`] before handing the source to
/// the runtime — and so a bad address fails at construction, not inside a
/// supervisor thread.
///
/// [`bind`]: NetListenerSource::bind
/// [`from_config`]: NetListenerSource::from_config
/// [`local_addr`]: NetListenerSource::local_addr
pub struct NetListenerSource {
    name: String,
    schema: dquag_tabular::Schema,
    max_frame_bytes: usize,
    serving: dquag_core::ServingConfig,
    spec: Option<dquag_core::ValidatorSpec>,
    telemetry: Option<Arc<Telemetry>>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Option<Arc<ConnShared>>,
    pool: Option<Pool>,
    /// Remaining dispatches forced to fail, for the fail-soft regression
    /// test (see [`inject_dispatch_failures`]).
    ///
    /// [`inject_dispatch_failures`]: NetListenerSource::inject_dispatch_failures
    dispatch_failures: usize,
    /// The delivered-batch count as of shutdown, so [`Source::offset`]
    /// stays truthful after the sink is released.
    final_offset: u64,
}

/// Connection tallies shared between the accept loop and the workers.
struct PoolCounts {
    /// Connections currently being served (the `max_connections` cap and
    /// the open-connection gauge).
    open: AtomicUsize,
    /// Over-capacity refusal connections currently draining; bounded so the
    /// refusal path itself cannot grow without limit.
    rejects_open: AtomicUsize,
}

/// One pool worker's handle on the accept side.
struct Worker {
    inbox: Arc<Mutex<Vec<Conn>>>,
    wake: WakeSender,
    /// Connections dispatched to (and not yet retired by) this worker —
    /// the least-loaded dispatch key.
    owned: Arc<AtomicUsize>,
    handle: Option<JoinHandle<()>>,
}

struct Pool {
    workers: Vec<Worker>,
    counts: Arc<PoolCounts>,
}

impl NetListenerSource {
    /// Bind the listener on `addr` (port 0 = ephemeral), serving batches
    /// typed by `schema`.
    pub fn bind(addr: &str, schema: dquag_tabular::Schema) -> Result<Self, SourceError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| SourceError::Io(format!("binding {addr}: {e}")))?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let defaults = dquag_core::SourceConfig::default();
        Ok(Self {
            name: "net".to_string(),
            schema,
            max_frame_bytes: defaults.max_frame_bytes,
            serving: defaults.serving,
            spec: None,
            telemetry: None,
            listener,
            local_addr,
            shared: None,
            pool: None,
            dispatch_failures: 0,
            final_offset: 0,
        })
    }

    /// Bind according to a [`dquag_core::SourceConfig`] block.
    pub fn from_config(
        config: &dquag_core::SourceConfig,
        schema: dquag_tabular::Schema,
    ) -> Result<Self, SourceError> {
        let mut source = Self::bind(&config.bind_addr, schema)?;
        source.max_frame_bytes = config.max_frame_bytes;
        source.serving = config.serving.clone();
        Ok(source)
    }

    /// Override the source name (the checkpoint key); useful when one
    /// runtime hosts several listeners.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Override the per-frame payload cap.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Override the serving-edge limits (worker pool size, connection cap,
    /// keep-alive policy, idle timeout).
    pub fn with_serving(mut self, serving: dquag_core::ServingConfig) -> Self {
        self.serving = serving;
        self
    }

    /// Advertise the declarative spec of the validator behind this
    /// listener: `STATS` and `GET /stats` responses gain an `active_spec`
    /// key, so a monitoring client sees *what* is judging the traffic, not
    /// just how fast.
    pub fn with_spec(mut self, spec: dquag_core::ValidatorSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Attach a telemetry bundle: the listener counts connections, decode
    /// errors, accept rejects/errors and keep-alive reuse, exposes an
    /// open-connection gauge, times the `decode` stage, and serves the
    /// bundle's whole registry over `GET /metrics` (Prometheus text
    /// format) and the raw-protocol `METRICS` command. Share the same
    /// bundle with the engine so one scrape covers the full pipeline.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The bound address — ask after construction to learn an ephemeral
    /// port.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Force the next `n` accepted sockets to fail worker hand-off, so
    /// tests can prove a dispatch failure is survived (logged, counted,
    /// socket closed) rather than panicking the listener.
    #[doc(hidden)]
    pub fn inject_dispatch_failures(&mut self, n: usize) {
        self.dispatch_failures = n;
    }

    /// Hand a connection to the least-loaded worker.
    fn dispatch(&mut self, conn: Conn) -> Result<(), String> {
        if self.dispatch_failures > 0 {
            self.dispatch_failures -= 1;
            return Err("injected dispatch failure".to_string());
        }
        let pool = self.pool.as_ref().ok_or("worker pool not running")?;
        let worker = pool
            .workers
            .iter()
            .min_by_key(|w| w.owned.load(Ordering::Relaxed))
            .ok_or("worker pool is empty")?;
        worker
            .inbox
            .lock()
            .map_err(|_| "worker inbox poisoned".to_string())?
            .push(conn);
        worker.owned.fetch_add(1, Ordering::Relaxed);
        worker.wake.wake();
        Ok(())
    }
}

impl Source for NetListenerSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, sink: &SourceSink, _resume_from: u64) -> Result<(), SourceError> {
        // Network peers own redelivery (an unacknowledged frame is resent by
        // the client), so resuming needs no positioning here — the restored
        // offset already lives in the sink's counter.
        let shared = Arc::new(ConnShared {
            schema: self.schema.clone(),
            max_frame_bytes: self.max_frame_bytes,
            spec: self.spec.clone(),
            serving: self.serving.clone(),
            sink: sink.clone(),
            metrics: self.telemetry.clone().map(NetMetrics::new),
        });
        let counts = Arc::new(PoolCounts {
            open: AtomicUsize::new(0),
            rejects_open: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(self.serving.workers);
        let mut spawn_errors = Vec::new();
        for index in 0..self.serving.workers {
            let inbox = Arc::new(Mutex::new(Vec::new()));
            let owned = Arc::new(AtomicUsize::new(0));
            let (wake_tx, wake_rx) = wake_channel();
            let thread_shared = Arc::clone(&shared);
            let thread_inbox = Arc::clone(&inbox);
            let thread_owned = Arc::clone(&owned);
            let thread_counts = Arc::clone(&counts);
            match std::thread::Builder::new()
                .name(format!("dquag-source-worker-{index}"))
                .spawn(move || {
                    worker_loop(
                        thread_shared,
                        thread_inbox,
                        wake_rx,
                        thread_owned,
                        thread_counts,
                    )
                }) {
                Ok(handle) => workers.push(Worker {
                    inbox,
                    wake: wake_tx,
                    owned,
                    handle: Some(handle),
                }),
                // A partially-spawned pool still serves; only a fully failed
                // one is fatal.
                Err(e) => spawn_errors.push(e.to_string()),
            }
        }
        if workers.is_empty() {
            return Err(SourceError::Io(format!(
                "spawning serving workers: {}",
                spawn_errors.join("; ")
            )));
        }
        self.shared = Some(shared);
        self.pool = Some(Pool { workers, counts });
        Ok(())
    }

    fn poll(&mut self, _sink: &SourceSink) -> Result<PollOutcome, SourceError> {
        let shared = self
            .shared
            .as_ref()
            .expect("poll is only called after start")
            .clone();
        let max_connections = self.serving.max_connections;
        let mut accepted_any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    accepted_any = true;
                    if let Some(metrics) = &shared.metrics {
                        metrics.connections.inc();
                    }
                    // Replies are single small lines; Nagle + delayed ACK
                    // would stall the request/reply rhythm by ~40 ms.
                    stream.set_nodelay(true).ok();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let counts = Arc::clone(
                        &self
                            .pool
                            .as_ref()
                            .expect("pool is running after start")
                            .counts,
                    );
                    let open = counts.open.load(Ordering::Relaxed);
                    if open >= max_connections {
                        if let Some(metrics) = &shared.metrics {
                            metrics.accept_rejects.inc();
                            metrics.telemetry.event(FlightEventKind::AcceptOverflow {
                                open,
                                max: max_connections,
                            });
                        }
                        // The refusal path is itself bounded: beyond a full
                        // backlog of in-flight refusals, just drop.
                        if counts.rejects_open.load(Ordering::Relaxed) >= max_connections {
                            continue;
                        }
                        counts.rejects_open.fetch_add(1, Ordering::Relaxed);
                        if self.dispatch(Conn::reject(stream)).is_err() {
                            counts.rejects_open.fetch_sub(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    counts.open.fetch_add(1, Ordering::Relaxed);
                    if let Err(reason) = self.dispatch(Conn::new(stream)) {
                        // Fail soft: losing one socket must not take down
                        // the listener (the old code panicked here).
                        counts.open.fetch_sub(1, Ordering::Relaxed);
                        if let Some(metrics) = &shared.metrics {
                            metrics.accept_errors.inc();
                            metrics.telemetry.event(FlightEventKind::SourceError {
                                source: self.name.clone(),
                                message: format!("connection hand-off failed: {reason}"),
                            });
                        }
                        continue;
                    }
                    if let Some(metrics) = &shared.metrics {
                        metrics
                            .open_connections
                            .set(counts.open.load(Ordering::Relaxed) as f64);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(SourceError::Io(format!("accept: {e}"))),
            }
        }
        Ok(if accepted_any {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        })
    }

    fn drain(&mut self, _sink: &SourceSink) {
        // The stop flag is set; each worker notices within one poll tick,
        // flushes any queued reply ("ERR engine closed" included) and
        // exits, so joining here never hangs.
        if let Some(pool) = &mut self.pool {
            for worker in &pool.workers {
                worker.wake.wake();
            }
            for worker in &mut pool.workers {
                if let Some(handle) = worker.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }

    fn shutdown(&mut self) {
        self.final_offset = self.offset();
        self.pool = None;
        self.shared = None;
    }

    fn offset(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(self.final_offset, |s| s.sink.offset())
    }
}

/// One pool thread: drain the inbox, poll every owned socket for
/// readiness, drive each connection's state machine, retire the dead.
fn worker_loop(
    shared: Arc<ConnShared>,
    inbox: Arc<Mutex<Vec<Conn>>>,
    mut wake: WakeReceiver,
    owned: Arc<AtomicUsize>,
    counts: Arc<PoolCounts>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut poll = PollSet::new();
    loop {
        if let Ok(mut handed_off) = inbox.lock() {
            conns.append(&mut handed_off);
        }
        if shared.sink.should_stop() {
            // A connection may hold a reply its peer has not read yet —
            // "ERR engine closed" after a blocked delivery — flush those
            // before the pool disappears.
            for conn in &mut conns {
                conn.final_flush();
            }
            break;
        }
        poll.clear();
        let mut wake_slots = 0;
        if let Some(source) = wake.pollable() {
            poll.push(source, false);
            wake_slots = 1;
        }
        for conn in &conns {
            poll.push(conn.stream(), conn.wants_write());
        }
        poll.wait(POLL_TICK);
        wake.drain();
        for (index, conn) in conns.iter_mut().enumerate() {
            let ready = poll.readiness(index + wake_slots);
            if ready.readable || ready.writable || ready.closed {
                conn.drive(&shared);
            } else {
                // No I/O this tick; only the deadlines can progress.
                conn.tick(&shared);
            }
        }
        let mut died = 0usize;
        conns.retain(|conn| {
            if conn.is_dead() {
                died += 1;
                if conn.is_reject() {
                    counts.rejects_open.fetch_sub(1, Ordering::Relaxed);
                } else {
                    counts.open.fetch_sub(1, Ordering::Relaxed);
                }
                false
            } else {
                true
            }
        });
        if died > 0 {
            owned.fetch_sub(died, Ordering::Relaxed);
            if let Some(metrics) = &shared.metrics {
                metrics
                    .open_connections
                    .set(counts.open.load(Ordering::Relaxed) as f64);
            }
        }
    }
    // Pool teardown: the sockets close with the Conn drops; keep the
    // tallies truthful for anything still watching the gauge.
    for conn in &conns {
        if conn.is_reject() {
            counts.rejects_open.fetch_sub(1, Ordering::Relaxed);
        } else {
            counts.open.fetch_sub(1, Ordering::Relaxed);
        }
    }
    owned.fetch_sub(conns.len(), Ordering::Relaxed);
    if let Some(metrics) = &shared.metrics {
        metrics
            .open_connections
            .set(counts.open.load(Ordering::Relaxed) as f64);
    }
}
