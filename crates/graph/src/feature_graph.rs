//! The feature graph: columns as nodes, relationships as undirected edges.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced when building or loading feature graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a feature name that is not a node of the graph.
    UnknownFeature(String),
    /// A node index was out of range.
    NodeOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of nodes.
        n_nodes: usize,
    },
    /// The relationship JSON could not be parsed.
    InvalidJson(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownFeature(name) => write!(f, "unknown feature `{name}`"),
            GraphError::NodeOutOfRange { index, n_nodes } => {
                write!(
                    f,
                    "node index {index} out of range (graph has {n_nodes} nodes)"
                )
            }
            GraphError::InvalidJson(msg) => write!(f, "invalid relationship JSON: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One relationship between two features, in the paper's JSON vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relationship {
    /// First feature name.
    pub feature1: String,
    /// Second feature name.
    pub feature2: String,
}

/// The JSON document the paper's ChatGPT-4 prompt returns:
/// `{"relationships": [{"feature1": …, "feature2": …}, …]}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RelationshipSet {
    /// All inferred feature pairs.
    pub relationships: Vec<Relationship>,
}

impl RelationshipSet {
    /// Parse the paper-format JSON document.
    pub fn from_json(json: &str) -> crate::Result<Self> {
        serde_json::from_str(json).map_err(|e| GraphError::InvalidJson(e.to_string()))
    }

    /// Serialise to the paper-format JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RelationshipSet is always serialisable")
    }

    /// Add one pair.
    pub fn push(&mut self, feature1: &str, feature2: &str) {
        self.relationships.push(Relationship {
            feature1: feature1.to_string(),
            feature2: feature2.to_string(),
        });
    }
}

/// An undirected graph over dataset columns.
///
/// Self-loops are never stored explicitly; the adjacency constructors add
/// them where the layer semantics require them (GIN / GCN / GAT all attend to
/// the node itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureGraph {
    node_names: Vec<String>,
    neighbors: Vec<BTreeSet<usize>>,
}

// Hand-written serde impls: the adjacency sets are an in-memory index, so
// the wire form stores node names plus the undirected edge list and rebuilds
// the sets on load. Keeps persisted models readable and the invariants
// (no self-loops, indices in range) enforced by `add_edge` on the way in.
impl Serialize for FeatureGraph {
    fn to_value(&self) -> serde::Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("node_names".to_string(), self.node_names.to_value());
        map.insert(
            "edges".to_string(),
            self.edges().collect::<Vec<(usize, usize)>>().to_value(),
        );
        serde::Value::Object(map)
    }
}

impl Deserialize for FeatureGraph {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = v.as_object().ok_or_else(|| {
            serde::DeError::custom(format!(
                "expected object for FeatureGraph, found {}",
                v.kind()
            ))
        })?;
        let node_names =
            Vec::<String>::from_value(obj.get("node_names").unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::DeError::custom(format!("FeatureGraph node_names: {e}")))?;
        let edges =
            Vec::<(usize, usize)>::from_value(obj.get("edges").unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::DeError::custom(format!("FeatureGraph edges: {e}")))?;
        let mut graph = FeatureGraph::new(node_names);
        for (i, j) in edges {
            graph
                .add_edge(i, j)
                .map_err(|e| serde::DeError::custom(format!("FeatureGraph edge ({i},{j}): {e}")))?;
        }
        Ok(graph)
    }
}

impl FeatureGraph {
    /// Create a graph with the given nodes and no edges.
    pub fn new<S: Into<String>>(node_names: Vec<S>) -> Self {
        let node_names: Vec<String> = node_names.into_iter().map(Into::into).collect();
        let neighbors = vec![BTreeSet::new(); node_names.len()];
        Self {
            node_names,
            neighbors,
        }
    }

    /// Create a fully connected graph (every pair of distinct nodes linked).
    /// Used by the `ablation_graph` benchmark as a "no knowledge" upper bound.
    pub fn fully_connected<S: Into<String>>(node_names: Vec<S>) -> Self {
        let mut g = Self::new(node_names);
        for i in 0..g.n_nodes() {
            for j in (i + 1)..g.n_nodes() {
                g.add_edge(i, j).expect("indices in range");
            }
        }
        g
    }

    /// Build a graph from node names plus a paper-format relationship set.
    /// Pairs naming unknown features are reported as errors.
    pub fn from_relationships<S: Into<String>>(
        node_names: Vec<S>,
        relationships: &RelationshipSet,
    ) -> crate::Result<Self> {
        let mut graph = Self::new(node_names);
        for rel in &relationships.relationships {
            let i = graph
                .index_of(&rel.feature1)
                .ok_or_else(|| GraphError::UnknownFeature(rel.feature1.clone()))?;
            let j = graph
                .index_of(&rel.feature2)
                .ok_or_else(|| GraphError::UnknownFeature(rel.feature2.clone()))?;
            if i != j {
                graph.add_edge(i, j)?;
            }
        }
        Ok(graph)
    }

    /// Export the edge set in the paper's JSON vocabulary.
    pub fn to_relationships(&self) -> RelationshipSet {
        let mut set = RelationshipSet::default();
        for (i, j) in self.edges() {
            set.push(&self.node_names[i], &self.node_names[j]);
        }
        set
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.neighbors.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Node names in index order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Index of the node with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == name)
    }

    /// Add an undirected edge between two nodes (self-loops are ignored).
    pub fn add_edge(&mut self, i: usize, j: usize) -> crate::Result<()> {
        let n = self.n_nodes();
        for idx in [i, j] {
            if idx >= n {
                return Err(GraphError::NodeOutOfRange {
                    index: idx,
                    n_nodes: n,
                });
            }
        }
        if i != j {
            self.neighbors[i].insert(j);
            self.neighbors[j].insert(i);
        }
        Ok(())
    }

    /// True if nodes `i` and `j` are connected by an edge.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.neighbors.get(i).is_some_and(|s| s.contains(&j))
    }

    /// The neighbours of node `i` in ascending order.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.neighbors[i].iter().copied()
    }

    /// Degree (number of neighbours) of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors[i].len()
    }

    /// Iterate over undirected edges as `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.neighbors
            .iter()
            .enumerate()
            .flat_map(|(i, set)| set.iter().filter(move |&&j| j > i).map(move |&j| (i, j)))
    }

    /// True if every node can reach every other node (isolated single-node
    /// graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.n_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(node) = stack.pop() {
            for &next in &self.neighbors[node] {
                if !seen[next] {
                    seen[next] = true;
                    visited += 1;
                    stack.push(next);
                }
            }
        }
        visited == n
    }

    /// Binary adjacency matrix in row-major order (`n × n`), with self-loops
    /// if requested. This is the aggregation operator used by the GIN layers.
    pub fn adjacency_matrix(&self, self_loops: bool) -> Vec<f32> {
        let n = self.n_nodes();
        let mut out = vec![0.0f32; n * n];
        for i in 0..n {
            if self_loops {
                out[i * n + i] = 1.0;
            }
            for &j in &self.neighbors[i] {
                out[i * n + j] = 1.0;
            }
        }
        out
    }

    /// Symmetric-normalised adjacency `D^{-1/2} (A + I) D^{-1/2}` in row-major
    /// order — the propagation operator of a GCN layer (Kipf & Welling).
    pub fn gcn_normalized_adjacency(&self) -> Vec<f32> {
        let n = self.n_nodes();
        let a = self.adjacency_matrix(true);
        let mut degree = vec![0.0f32; n];
        for i in 0..n {
            degree[i] = a[i * n..(i + 1) * n].iter().sum();
        }
        let mut out = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                if a[i * n + j] > 0.0 {
                    out[i * n + j] = a[i * n + j] / (degree[i].sqrt() * degree[j].sqrt());
                }
            }
        }
        out
    }

    /// Additive attention mask for GAT layers: `0` where attention is allowed
    /// (edges and self-loops), `mask_value` (a large negative number)
    /// elsewhere, row-major `n × n`.
    pub fn attention_mask(&self, mask_value: f32) -> Vec<f32> {
        let n = self.n_nodes();
        let mut out = vec![mask_value; n * n];
        for i in 0..n {
            out[i * n + i] = 0.0;
            for &j in &self.neighbors[i] {
                out[i * n + j] = 0.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    // Indices are deliberately written as `row * stride + col`, zeros
    // included, to keep the row-major layout visible.
    #![allow(clippy::identity_op, clippy::erasing_op)]

    use super::*;

    #[test]
    fn feature_graph_round_trips_through_json() {
        let g = diamond();
        let json = serde_json::to_string(&g).unwrap();
        let back: FeatureGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        // Out-of-range edges in a tampered file fail instead of panicking.
        let bad = r#"{"node_names": ["a", "b"], "edges": [[0, 9]]}"#;
        assert!(serde_json::from_str::<FeatureGraph>(bad).is_err());
    }

    fn diamond() -> FeatureGraph {
        // 0 - 1
        // |   |
        // 2 - 3
        let mut g = FeatureGraph::new(vec!["a", "b", "c", "d"]);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(2, 3).unwrap();
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = diamond();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(3).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.index_of("c"), Some(2));
        assert_eq!(g.index_of("zz"), None);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn self_loops_and_duplicates_are_ignored() {
        let mut g = FeatureGraph::new(vec!["a", "b"]);
        g.add_edge(0, 0).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 0).unwrap();
        assert_eq!(g.n_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn out_of_range_edges_error() {
        let mut g = FeatureGraph::new(vec!["a"]);
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { index: 5, .. })
        ));
    }

    #[test]
    fn connectivity() {
        assert!(diamond().is_connected());
        let mut g = FeatureGraph::new(vec!["a", "b", "c"]);
        g.add_edge(0, 1).unwrap();
        assert!(!g.is_connected());
        assert!(FeatureGraph::new(vec!["solo"]).is_connected());
        assert!(FeatureGraph::new(Vec::<String>::new()).is_connected());
    }

    #[test]
    fn fully_connected_has_all_pairs() {
        let g = FeatureGraph::fully_connected(vec!["a", "b", "c", "d", "e"]);
        assert_eq!(g.n_edges(), 10);
        assert!(g.is_connected());
    }

    #[test]
    fn adjacency_matrix_with_and_without_self_loops() {
        let g = diamond();
        let a = g.adjacency_matrix(false);
        assert_eq!(a[0 * 4 + 1], 1.0);
        assert_eq!(a[0 * 4 + 0], 0.0);
        let a_loop = g.adjacency_matrix(true);
        assert_eq!(a_loop[0 * 4 + 0], 1.0);
        // symmetry
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(a[i * 4 + j], a[j * 4 + i]);
            }
        }
    }

    #[test]
    fn gcn_normalisation_rows_are_bounded() {
        let g = diamond();
        let norm = g.gcn_normalized_adjacency();
        // every diamond node has degree 3 after the self-loop, so all entries are 1/3
        for i in 0..4 {
            for j in 0..4 {
                let v = norm[i * 4 + j];
                if g.has_edge(i, j) || i == j {
                    assert!((v - 1.0 / 3.0).abs() < 1e-6);
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
    }

    #[test]
    fn attention_mask_marks_non_edges() {
        let g = diamond();
        let mask = g.attention_mask(-1e9);
        assert_eq!(mask[0 * 4 + 1], 0.0);
        assert_eq!(mask[0 * 4 + 0], 0.0);
        assert_eq!(mask[0 * 4 + 3], -1e9);
    }

    #[test]
    fn relationship_json_round_trip() {
        let g = diamond();
        let set = g.to_relationships();
        let json = set.to_json();
        let parsed = RelationshipSet::from_json(&json).unwrap();
        let rebuilt = FeatureGraph::from_relationships(vec!["a", "b", "c", "d"], &parsed).unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn paper_format_json_is_accepted() {
        let json = r#"{"relationships": [
            {"feature1": "Age", "feature2": "IncomeType"},
            {"feature1": "Country", "feature2": "City"}
        ]}"#;
        let set = RelationshipSet::from_json(json).unwrap();
        assert_eq!(set.relationships.len(), 2);
        let g =
            FeatureGraph::from_relationships(vec!["Age", "IncomeType", "Country", "City"], &set)
                .unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn unknown_features_in_relationships_error() {
        let mut set = RelationshipSet::default();
        set.push("a", "nope");
        let err = FeatureGraph::from_relationships(vec!["a", "b"], &set).unwrap_err();
        assert!(matches!(err, GraphError::UnknownFeature(name) if name == "nope"));
    }

    #[test]
    fn invalid_json_is_reported() {
        assert!(matches!(
            RelationshipSet::from_json("{not json"),
            Err(GraphError::InvalidJson(_))
        ));
    }
}
