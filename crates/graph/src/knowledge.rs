//! Knowledge-based relationship inference — the ChatGPT-4 substitution.
//!
//! The paper constructs its feature graph by sending the feature names `F`,
//! the feature descriptions `D` and 100 sampled data points `S` to ChatGPT-4
//! and parsing the returned JSON (§3.1.1). The [`RelationshipOracle`] trait
//! captures exactly that contract: *given a schema and a sample, return a
//! [`RelationshipSet`]*.
//!
//! Two oracles are provided:
//!
//! * [`StatisticalOracle`] — the default in this reproduction. It computes
//!   pairwise association strengths on the sampled rows (Pearson / Cramér's V
//!   / correlation ratio from [`crate::measures`]) and a lightweight
//!   name-token heuristic that mimics the semantic hints the LLM derives from
//!   names and descriptions (e.g. `Country` ↔ `City`, `DAYS_BIRTH` ↔
//!   `DAYS_EMPLOYED`). Pairs whose combined evidence clears the configured
//!   threshold become edges.
//! * [`StaticKnowledge`] — replays a fixed relationship document (hand-written
//!   or produced by an actual LLM run of the paper's prompt, which
//!   [`build_prompt`] regenerates verbatim).

use crate::feature_graph::{FeatureGraph, RelationshipSet};
use crate::measures::{correlation_ratio, cramers_v, pearson_abs};
use dquag_tabular::{DataFrame, DataType, Schema};

/// Number of sample rows the paper sends to the LLM.
pub const PAPER_SAMPLE_SIZE: usize = 100;

/// An oracle that proposes relationships between dataset columns.
///
/// Implementations receive the schema (names + descriptions) and a small
/// sample dataframe — the same inputs the paper's prompt carries.
pub trait RelationshipOracle {
    /// Infer the set of related feature pairs.
    fn infer(&self, schema: &Schema, sample: &DataFrame) -> RelationshipSet;
}

/// Configuration of the [`StatisticalOracle`].
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceConfig {
    /// Rows sampled from the clean dataset (paper: 100).
    pub sample_size: usize,
    /// Minimum absolute Pearson correlation for a numeric-numeric edge.
    pub numeric_threshold: f64,
    /// Minimum Cramér's V for a categorical-categorical edge.
    pub categorical_threshold: f64,
    /// Minimum correlation ratio for a mixed-type edge.
    pub mixed_threshold: f64,
    /// Whether to add edges for columns whose names share informative tokens.
    pub use_name_heuristics: bool,
    /// Guarantee a connected graph by linking isolated nodes to their
    /// strongest-association partner even when below threshold.
    pub connect_isolated_nodes: bool,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self {
            sample_size: PAPER_SAMPLE_SIZE,
            numeric_threshold: 0.30,
            categorical_threshold: 0.30,
            mixed_threshold: 0.35,
            use_name_heuristics: true,
            connect_isolated_nodes: true,
        }
    }
}

/// Statistical stand-in for the paper's ChatGPT-4 oracle.
#[derive(Debug, Clone, Default)]
pub struct StatisticalOracle {
    config: InferenceConfig,
}

impl StatisticalOracle {
    /// Create an oracle with the given configuration.
    pub fn new(config: InferenceConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// Association strength between two columns of the sample, by type pair.
    fn association(&self, sample: &DataFrame, i: usize, j: usize) -> f64 {
        let fi = &sample.schema().fields()[i];
        let fj = &sample.schema().fields()[j];
        let ci = sample.column(i).expect("column in range");
        let cj = sample.column(j).expect("column in range");
        match (fi.dtype, fj.dtype) {
            (DataType::Numeric, DataType::Numeric) => pearson_abs(
                ci.numeric_values().expect("numeric column"),
                cj.numeric_values().expect("numeric column"),
            ),
            (DataType::Categorical, DataType::Categorical) => cramers_v(
                ci.categorical_values().expect("categorical column"),
                cj.categorical_values().expect("categorical column"),
            ),
            (DataType::Categorical, DataType::Numeric) => correlation_ratio(
                ci.categorical_values().expect("categorical column"),
                cj.numeric_values().expect("numeric column"),
            ),
            (DataType::Numeric, DataType::Categorical) => correlation_ratio(
                cj.categorical_values().expect("categorical column"),
                ci.numeric_values().expect("numeric column"),
            ),
        }
    }

    fn threshold_for(&self, schema: &Schema, i: usize, j: usize) -> f64 {
        let ti = schema.fields()[i].dtype;
        let tj = schema.fields()[j].dtype;
        match (ti, tj) {
            (DataType::Numeric, DataType::Numeric) => self.config.numeric_threshold,
            (DataType::Categorical, DataType::Categorical) => self.config.categorical_threshold,
            _ => self.config.mixed_threshold,
        }
    }
}

impl RelationshipOracle for StatisticalOracle {
    fn infer(&self, schema: &Schema, sample: &DataFrame) -> RelationshipSet {
        assert_eq!(
            schema,
            sample.schema(),
            "oracle sample must share the dataset schema"
        );
        let n = schema.len();
        let mut set = RelationshipSet::default();
        let mut strengths = vec![0.0f64; n * n];
        let mut linked = vec![false; n];

        for i in 0..n {
            for j in (i + 1)..n {
                let mut strength = self.association(sample, i, j);
                if self.config.use_name_heuristics
                    && names_look_related(&schema.fields()[i], &schema.fields()[j])
                {
                    // Names sharing informative tokens get the same boost a
                    // language model derives from the descriptions.
                    strength = (strength + 0.25).min(1.0);
                }
                strengths[i * n + j] = strength;
                strengths[j * n + i] = strength;
                if strength >= self.threshold_for(schema, i, j) {
                    set.push(&schema.fields()[i].name, &schema.fields()[j].name);
                    linked[i] = true;
                    linked[j] = true;
                }
            }
        }

        if self.config.connect_isolated_nodes && n > 1 {
            for i in 0..n {
                if linked[i] {
                    continue;
                }
                // Attach the isolated column to its strongest partner so the
                // GNN can still propagate information through it.
                let best = (0..n)
                    .filter(|&j| j != i)
                    .max_by(|&a, &b| {
                        strengths[i * n + a]
                            .partial_cmp(&strengths[i * n + b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("n > 1 guarantees a partner");
                set.push(&schema.fields()[i].name, &schema.fields()[best].name);
                linked[i] = true;
            }
        }
        set
    }
}

/// Replays a fixed relationship document — the drop-in slot for a real
/// ChatGPT-4 response in the paper's JSON format.
#[derive(Debug, Clone)]
pub struct StaticKnowledge {
    relationships: RelationshipSet,
}

impl StaticKnowledge {
    /// Wrap an existing relationship set.
    pub fn new(relationships: RelationshipSet) -> Self {
        Self { relationships }
    }

    /// Parse the paper-format JSON document.
    pub fn from_json(json: &str) -> crate::Result<Self> {
        Ok(Self::new(RelationshipSet::from_json(json)?))
    }
}

impl RelationshipOracle for StaticKnowledge {
    fn infer(&self, _schema: &Schema, _sample: &DataFrame) -> RelationshipSet {
        self.relationships.clone()
    }
}

/// Reconstruct the paper's prompt (§3.1.1) so a user with LLM access can
/// reproduce the original feature-graph construction and feed the answer back
/// through [`StaticKnowledge`].
pub fn build_prompt(schema: &Schema, sample: &DataFrame) -> String {
    let mut prompt = String::new();
    prompt.push_str(
        "Given the following information, please infer the relationships between features. \
         Provide your output in JSON format, capturing the type of relationships.\n\n",
    );
    prompt.push_str("Feature Names: ");
    prompt.push_str(&schema.names().join(", "));
    prompt.push_str("\nFeature Descriptions:\n");
    for field in schema.fields() {
        prompt.push_str(&format!("  - {}: {}\n", field.name, field.description));
    }
    prompt.push_str(&format!(
        "Sample Data Points: {} data samples from the dataset\n",
        sample.n_rows()
    ));
    for row in sample.iter_rows().take(PAPER_SAMPLE_SIZE) {
        let rendered: Vec<String> = row.iter().map(|v| v.to_csv_field()).collect();
        prompt.push_str("  ");
        prompt.push_str(&rendered.join(", "));
        prompt.push('\n');
    }
    prompt.push_str(
        "\nOutput: Please return a JSON object in the format:\n\
         {\"relationships\": [{\"feature1\", \"feature2\"}, {\"feature3\", \"feature4\"}, ...]}\n",
    );
    prompt
}

/// Deterministically sample up to `sample_size` rows (evenly strided) — the
/// stand-in for the paper's random 100-row sample, chosen deterministic so
/// experiments are reproducible.
pub fn sample_rows(df: &DataFrame, sample_size: usize) -> DataFrame {
    if df.n_rows() <= sample_size || sample_size == 0 {
        return df.clone();
    }
    let stride = df.n_rows() as f64 / sample_size as f64;
    let indices: Vec<usize> = (0..sample_size)
        .map(|i| ((i as f64 * stride) as usize).min(df.n_rows() - 1))
        .collect();
    df.select_rows(&indices).expect("indices in range")
}

/// End-to-end helper: sample the clean dataframe, run the oracle, and build
/// the [`FeatureGraph`] over the schema's columns.
pub fn build_feature_graph(
    df: &DataFrame,
    oracle: &dyn RelationshipOracle,
    sample_size: usize,
) -> crate::Result<FeatureGraph> {
    let sample = sample_rows(df, sample_size);
    let relationships = oracle.infer(df.schema(), &sample);
    let names: Vec<String> = df
        .schema()
        .names()
        .into_iter()
        .map(str::to_string)
        .collect();
    FeatureGraph::from_relationships(names, &relationships)
}

/// Heuristic mirror of the semantic cues an LLM reads from names and
/// descriptions: shared informative tokens (split on `_`, spaces and case
/// boundaries) or well-known geographic/temporal pairings.
fn names_look_related(a: &dquag_tabular::Field, b: &dquag_tabular::Field) -> bool {
    let ta = tokens(&format!("{} {}", a.name, a.description));
    let tb = tokens(&format!("{} {}", b.name, b.description));
    let shared = ta.iter().filter(|t| tb.contains(*t)).count();
    if shared > 0 {
        return true;
    }
    const KNOWN_PAIRS: &[(&str, &str)] = &[
        ("country", "city"),
        ("city", "neighbourhood"),
        ("city", "neighborhood"),
        ("start", "end"),
        ("pickup", "dropoff"),
        ("income", "occupation"),
        ("income", "education"),
        ("education", "occupation"),
        ("age", "occupation"),
        ("age", "income"),
        ("birth", "employed"),
        ("adults", "babies"),
        ("adults", "children"),
        ("price", "room"),
        ("rating", "reviews"),
        ("duration", "distance"),
    ];
    let has = |set: &[String], token: &str| set.iter().any(|t| t == token);
    KNOWN_PAIRS
        .iter()
        .any(|(x, y)| (has(&ta, x) && has(&tb, y)) || (has(&ta, y) && has(&tb, x)))
}

/// Lower-cased informative tokens of a name/description string.
fn tokens(text: &str) -> Vec<String> {
    const STOPWORDS: &[&str] = &[
        "the", "of", "a", "an", "in", "for", "and", "or", "type", "name", "total", "amt", "id",
        "days", "number", "value",
    ];
    let mut out = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            // split camelCase boundaries
            if ch.is_uppercase() && prev_lower && !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
            prev_lower = ch.is_lowercase();
            current.push(ch.to_ascii_lowercase());
        } else {
            prev_lower = false;
            if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out.retain(|t| t.len() > 2 && !STOPWORDS.contains(&t.as_str()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dquag_tabular::{Field, Value};

    /// A clean dataset with a built-in dependency structure:
    /// income ≈ f(education), city determined by country, age independent.
    fn correlated_frame(rows: usize) -> DataFrame {
        let schema = Schema::new(vec![
            Field::numeric("age", "age of the person in years"),
            Field::numeric("income", "annual income in dollars"),
            Field::categorical("education", "highest education level"),
            Field::categorical("country", "country of residence"),
            Field::categorical("city", "city of residence"),
        ]);
        let mut df = DataFrame::new(schema);
        for i in 0..rows {
            let education = match i % 3 {
                0 => "primary",
                1 => "bachelor",
                _ => "master",
            };
            let income = match i % 3 {
                0 => 20_000.0 + (i % 7) as f64 * 500.0,
                1 => 60_000.0 + (i % 7) as f64 * 500.0,
                _ => 100_000.0 + (i % 7) as f64 * 500.0,
            };
            let (country, city) = if i % 2 == 0 {
                ("USA", "New York")
            } else {
                ("France", "Paris")
            };
            let age = 20.0 + ((i * 37) % 45) as f64;
            df.push_row(vec![
                Value::Number(age),
                Value::Number(income),
                Value::Text(education.into()),
                Value::Text(country.into()),
                Value::Text(city.into()),
            ])
            .unwrap();
        }
        df
    }

    #[test]
    fn statistical_oracle_finds_real_dependencies() {
        let df = correlated_frame(200);
        let oracle = StatisticalOracle::default();
        let graph = build_feature_graph(&df, &oracle, 100).unwrap();
        let edu = graph.index_of("education").unwrap();
        let income = graph.index_of("income").unwrap();
        let country = graph.index_of("country").unwrap();
        let city = graph.index_of("city").unwrap();
        assert!(graph.has_edge(edu, income), "income depends on education");
        assert!(
            graph.has_edge(country, city),
            "city is determined by country"
        );
    }

    #[test]
    fn isolated_columns_still_get_connected() {
        let df = correlated_frame(120);
        let oracle = StatisticalOracle::default();
        let graph = build_feature_graph(&df, &oracle, 100).unwrap();
        // age is independent of everything, but the config links isolated nodes
        let age = graph.index_of("age").unwrap();
        assert!(graph.degree(age) >= 1, "isolated node must be attached");
    }

    #[test]
    fn disabling_isolation_link_can_leave_singletons() {
        let df = correlated_frame(120);
        let oracle = StatisticalOracle::new(InferenceConfig {
            connect_isolated_nodes: false,
            use_name_heuristics: false,
            numeric_threshold: 0.95,
            categorical_threshold: 0.999,
            mixed_threshold: 0.999,
            ..InferenceConfig::default()
        });
        let graph = build_feature_graph(&df, &oracle, 100).unwrap();
        assert!(
            graph.n_edges() <= 2,
            "very strict thresholds keep the graph sparse"
        );
    }

    #[test]
    fn static_knowledge_replays_fixed_edges() {
        let df = correlated_frame(30);
        let json = r#"{"relationships": [{"feature1": "age", "feature2": "income"}]}"#;
        let oracle = StaticKnowledge::from_json(json).unwrap();
        let graph = build_feature_graph(&df, &oracle, 100).unwrap();
        assert_eq!(graph.n_edges(), 1);
        assert!(graph.has_edge(
            graph.index_of("age").unwrap(),
            graph.index_of("income").unwrap()
        ));
    }

    #[test]
    fn prompt_contains_names_descriptions_and_samples() {
        let df = correlated_frame(10);
        let sample = sample_rows(&df, 5);
        let prompt = build_prompt(df.schema(), &sample);
        assert!(prompt.contains("Feature Names: age, income, education, country, city"));
        assert!(prompt.contains("annual income in dollars"));
        assert!(prompt.contains("relationships"));
        assert!(prompt.contains("New York") || prompt.contains("Paris"));
    }

    #[test]
    fn sample_rows_is_deterministic_and_bounded() {
        let df = correlated_frame(500);
        let s1 = sample_rows(&df, 100);
        let s2 = sample_rows(&df, 100);
        assert_eq!(s1, s2);
        assert_eq!(s1.n_rows(), 100);
        let small = correlated_frame(7);
        assert_eq!(sample_rows(&small, 100).n_rows(), 7);
    }

    #[test]
    fn name_heuristics_pick_up_geography_and_shared_tokens() {
        let country = Field::categorical("Country", "country of the listing");
        let city = Field::categorical("City", "city of the listing");
        assert!(names_look_related(&country, &city));
        let start = Field::numeric("trip_start_hour", "hour the trip started");
        let end = Field::numeric("trip_end_hour", "hour the trip ended");
        assert!(names_look_related(&start, &end));
        let unrelated_a = Field::numeric("price", "listing price");
        let unrelated_b = Field::categorical("colour", "favourite colour");
        assert!(!names_look_related(&unrelated_a, &unrelated_b));
    }

    #[test]
    fn tokens_split_snake_and_camel_case() {
        let t = tokens("DAYS_EMPLOYED customerType");
        assert!(t.contains(&"employed".to_string()));
        assert!(t.contains(&"customer".to_string()));
        assert!(!t.contains(&"days".to_string()), "stopword removed");
    }
}
