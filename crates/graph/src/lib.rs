//! # dquag-graph
//!
//! Feature-graph construction for DQuaG (EDBT 2025).
//!
//! The paper builds a *knowledge-based feature graph* `G = (V, E)` whose nodes
//! are the columns of the tabular dataset and whose edges connect columns
//! that are semantically or statistically related. In the paper this edge set
//! is produced by prompting **ChatGPT-4** with the feature names, feature
//! descriptions and 100 sampled rows, and parsing the returned JSON.
//!
//! An interactive LLM is not available in this reproduction, so the crate
//! provides two interchangeable oracles behind the same interface
//! ([`knowledge::RelationshipOracle`]):
//!
//! * [`knowledge::StatisticalOracle`] — the default substitute. It computes
//!   pairwise association strengths on the same 100-row sample the paper
//!   would send to the LLM (Pearson correlation for numeric pairs, Cramér's V
//!   for categorical pairs, the correlation ratio η for mixed pairs, plus a
//!   light name-token heuristic) and keeps the pairs that clear a threshold.
//! * [`knowledge::StaticKnowledge`] — replays a hand-written or LLM-produced
//!   relationship JSON document in exactly the paper's format
//!   (`{"relationships": [{"feature1": …, "feature2": …}, …]}`), so a real
//!   ChatGPT-4 response can be dropped in unchanged.
//!
//! Downstream, [`FeatureGraph`] exposes the dense adjacency structures the
//! GNN layers need: a binary adjacency with self-loops (GIN), the
//! symmetric-normalised adjacency (GCN), and an additive attention mask
//! (GAT).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod feature_graph;

pub mod knowledge;
pub mod measures;

pub use feature_graph::{FeatureGraph, GraphError, Relationship, RelationshipSet};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
