//! Pairwise association measures used by the statistical relationship oracle.
//!
//! Three classic measures cover the three column-type pairings:
//!
//! * numeric ↔ numeric: absolute Pearson correlation,
//! * categorical ↔ categorical: Cramér's V (bias-uncorrected, adequate for
//!   the 100-row samples the oracle works on),
//! * numeric ↔ categorical: the correlation ratio η (eta).
//!
//! All three return a strength in `[0, 1]`; missing values are dropped
//! pairwise.

use std::collections::HashMap;

/// Absolute Pearson correlation between two numeric columns, computed over
/// rows where both values are present. Returns 0 when fewer than two complete
/// pairs exist or either column is constant.
pub fn pearson_abs(x: &[Option<f64>], y: &[Option<f64>]) -> f64 {
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y.iter())
        .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
        .collect();
    if pairs.len() < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mean_x = pairs.iter().map(|(a, _)| a).sum::<f64>() / n;
    let mean_y = pairs.iter().map(|(_, b)| b).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (a, b) in &pairs {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= f64::EPSILON || var_y <= f64::EPSILON {
        return 0.0;
    }
    (cov / (var_x.sqrt() * var_y.sqrt())).abs().clamp(0.0, 1.0)
}

/// Cramér's V between two categorical columns, computed over rows where both
/// values are present. Returns 0 when the contingency table is degenerate.
pub fn cramers_v(x: &[Option<String>], y: &[Option<String>]) -> f64 {
    let pairs: Vec<(&str, &str)> = x
        .iter()
        .zip(y.iter())
        .filter_map(|(a, b)| Some((a.as_deref()?, b.as_deref()?)))
        .collect();
    if pairs.is_empty() {
        return 0.0;
    }
    let mut x_levels: HashMap<&str, usize> = HashMap::new();
    let mut y_levels: HashMap<&str, usize> = HashMap::new();
    for (a, b) in &pairs {
        let next = x_levels.len();
        x_levels.entry(a).or_insert(next);
        let next = y_levels.len();
        y_levels.entry(b).or_insert(next);
    }
    let r = x_levels.len();
    let c = y_levels.len();
    if r < 2 || c < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mut table = vec![0.0f64; r * c];
    for (a, b) in &pairs {
        table[x_levels[a] * c + y_levels[b]] += 1.0;
    }
    let row_totals: Vec<f64> = (0..r)
        .map(|i| table[i * c..(i + 1) * c].iter().sum())
        .collect();
    let col_totals: Vec<f64> = (0..c)
        .map(|j| (0..r).map(|i| table[i * c + j]).sum())
        .collect();
    let mut chi2 = 0.0;
    for i in 0..r {
        for j in 0..c {
            let expected = row_totals[i] * col_totals[j] / n;
            if expected > 0.0 {
                let diff = table[i * c + j] - expected;
                chi2 += diff * diff / expected;
            }
        }
    }
    let denom = n * ((r.min(c) - 1) as f64);
    if denom <= 0.0 {
        return 0.0;
    }
    (chi2 / denom).sqrt().clamp(0.0, 1.0)
}

/// Correlation ratio η between a categorical column (groups) and a numeric
/// column: the share of the numeric variance explained by the grouping.
pub fn correlation_ratio(categories: &[Option<String>], values: &[Option<f64>]) -> f64 {
    let pairs: Vec<(&str, f64)> = categories
        .iter()
        .zip(values.iter())
        .filter_map(|(c, v)| Some((c.as_deref()?, (*v)?)))
        .collect();
    if pairs.len() < 2 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let overall_mean = pairs.iter().map(|(_, v)| v).sum::<f64>() / n;
    let mut groups: HashMap<&str, (f64, f64)> = HashMap::new(); // (sum, count)
    for (c, v) in &pairs {
        let entry = groups.entry(c).or_insert((0.0, 0.0));
        entry.0 += v;
        entry.1 += 1.0;
    }
    if groups.len() < 2 {
        return 0.0;
    }
    let between: f64 = groups
        .values()
        .map(|(sum, count)| {
            let group_mean = sum / count;
            count * (group_mean - overall_mean).powi(2)
        })
        .sum();
    let total: f64 = pairs.iter().map(|(_, v)| (v - overall_mean).powi(2)).sum();
    if total <= f64::EPSILON {
        return 0.0;
    }
    (between / total).sqrt().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt_f(values: &[f64]) -> Vec<Option<f64>> {
        values.iter().copied().map(Some).collect()
    }

    fn opt_s(values: &[&str]) -> Vec<Option<String>> {
        values.iter().map(|s| Some(s.to_string())).collect()
    }

    #[test]
    fn pearson_detects_linear_dependence() {
        let x = opt_f(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let y_pos = opt_f(&[2.0, 4.0, 6.0, 8.0, 10.0]);
        let y_neg = opt_f(&[10.0, 8.0, 6.0, 4.0, 2.0]);
        assert!((pearson_abs(&x, &y_pos) - 1.0).abs() < 1e-9);
        assert!((pearson_abs(&x, &y_neg) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_near_zero_for_independent_data() {
        let x = opt_f(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let y = opt_f(&[5.0, -3.0, 4.0, -2.0, 5.5, -3.2, 4.1, -2.4]);
        assert!(pearson_abs(&x, &y) < 0.3);
    }

    #[test]
    fn pearson_handles_missing_and_constant_columns() {
        let x = vec![Some(1.0), None, Some(3.0)];
        let y = vec![Some(2.0), Some(9.0), None];
        assert_eq!(pearson_abs(&x, &y), 0.0, "only one complete pair");
        let constant = opt_f(&[5.0, 5.0, 5.0]);
        let varying = opt_f(&[1.0, 2.0, 3.0]);
        assert_eq!(pearson_abs(&constant, &varying), 0.0);
    }

    #[test]
    fn cramers_v_detects_perfect_association() {
        let x = opt_s(&["a", "a", "b", "b", "a", "b"]);
        let y = opt_s(&["u", "u", "v", "v", "u", "v"]);
        assert!((cramers_v(&x, &y) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cramers_v_low_for_independence() {
        let x = opt_s(&["a", "a", "b", "b", "a", "a", "b", "b"]);
        let y = opt_s(&["u", "v", "u", "v", "u", "v", "u", "v"]);
        assert!(cramers_v(&x, &y) < 1e-9);
    }

    #[test]
    fn cramers_v_degenerate_tables() {
        let single = opt_s(&["a", "a", "a"]);
        let other = opt_s(&["u", "v", "u"]);
        assert_eq!(cramers_v(&single, &other), 0.0);
        assert_eq!(cramers_v(&[], &[]), 0.0);
        let with_missing = vec![Some("a".to_string()), None];
        assert_eq!(cramers_v(&with_missing, &opt_s(&["u", "v"])), 0.0);
    }

    #[test]
    fn correlation_ratio_detects_group_separation() {
        // group "low" has values near 1, group "high" near 100 → strong association
        let cats = opt_s(&["low", "low", "low", "high", "high", "high"]);
        let vals = opt_f(&[1.0, 1.2, 0.8, 100.0, 99.0, 101.0]);
        assert!(correlation_ratio(&cats, &vals) > 0.99);
    }

    #[test]
    fn correlation_ratio_low_when_groups_overlap() {
        let cats = opt_s(&["a", "b", "a", "b", "a", "b"]);
        let vals = opt_f(&[1.0, 1.1, 2.0, 1.9, 3.0, 3.05]);
        assert!(correlation_ratio(&cats, &vals) < 0.2);
    }

    #[test]
    fn correlation_ratio_degenerate_cases() {
        assert_eq!(correlation_ratio(&[], &[]), 0.0);
        let one_group = opt_s(&["a", "a"]);
        assert_eq!(correlation_ratio(&one_group, &opt_f(&[1.0, 2.0])), 0.0);
        let constant = opt_f(&[5.0, 5.0, 5.0, 5.0]);
        let groups = opt_s(&["a", "a", "b", "b"]);
        assert_eq!(correlation_ratio(&groups, &constant), 0.0);
    }

    #[test]
    fn all_measures_stay_in_unit_interval() {
        let x = opt_f(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let y = opt_f(&[2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0]);
        let c1 = opt_s(&["a", "b", "a", "c", "b", "a", "c", "b"]);
        let c2 = opt_s(&["x", "x", "y", "y", "x", "y", "x", "y"]);
        for v in [
            pearson_abs(&x, &y),
            cramers_v(&c1, &c2),
            correlation_ratio(&c1, &x),
        ] {
            assert!((0.0..=1.0).contains(&v), "measure {v} out of range");
        }
    }
}
