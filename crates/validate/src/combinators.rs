//! Composite validators: ensembles with voting and gated cheap→expensive
//! escalation.
//!
//! Both combinators implement [`Validator`] *compositionally*: `fit` fits
//! every member, `validate` delegates and combines, `capabilities` derives
//! from the members', and `replicate` succeeds iff every member replicates —
//! so the streaming engine's sharding and the session's parallel validation
//! work unchanged above any spec tree.

use crate::verdict::Capabilities;
use crate::{FitReport, Result, ValidateError, Validator, Verdict};
use dquag_core::spec::{EscalateWhen, Voting};
use dquag_tabular::DataFrame;

/// Several member validators put to a vote.
///
/// Every member judges every batch; the [`Voting`] policy turns the member
/// verdicts into one decision. The ensemble's score is the (weighted)
/// fraction of dirty votes, so it lives on `[0, 1]` regardless of the
/// members' native scales.
pub struct EnsembleValidator {
    members: Vec<Box<dyn Validator>>,
    weights: Vec<f64>,
    voting: Voting,
    name: String,
}

impl EnsembleValidator {
    /// An ensemble over `members` under the given voting policy.
    ///
    /// Fails with [`ValidateError::InvalidConfig`] on an empty member list
    /// or a weight vector that does not match the members.
    pub fn new(members: Vec<Box<dyn Validator>>, voting: Voting) -> Result<Self> {
        if members.is_empty() {
            return Err(ValidateError::InvalidConfig(
                "an ensemble needs at least one member".to_string(),
            ));
        }
        let weights = match &voting {
            Voting::Weighted(weights) => {
                if weights.len() != members.len() {
                    return Err(ValidateError::InvalidConfig(format!(
                        "ensemble has {} members but {} weights",
                        members.len(),
                        weights.len()
                    )));
                }
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0)
                    || weights.iter().sum::<f64>() <= 0.0
                {
                    return Err(ValidateError::InvalidConfig(
                        "ensemble weights must be finite, non-negative and not all zero"
                            .to_string(),
                    ));
                }
                weights.clone()
            }
            Voting::Majority | Voting::Any => vec![1.0; members.len()],
        };
        let label = match &voting {
            Voting::Majority => "majority",
            Voting::Any => "any",
            Voting::Weighted(_) => "weighted",
        };
        let name = format!(
            "{label}({})",
            members
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        Ok(Self {
            members,
            weights,
            voting,
            name,
        })
    }

    /// The member validators, in voting order.
    pub fn members(&self) -> impl Iterator<Item = &dyn Validator> {
        self.members.iter().map(|m| &**m)
    }
}

impl Validator for EnsembleValidator {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        // The combined verdict is dataset-level: member-specific instance
        // detail does not survive the vote.
        Capabilities {
            instance_errors: false,
            cell_flags: false,
            repair: false,
            trains_model: self.members.iter().any(|m| m.capabilities().trains_model),
        }
    }

    fn fit(&mut self, clean: &DataFrame) -> Result<FitReport> {
        let mut notes = Vec::with_capacity(self.members.len());
        let mut n_parameters: Option<usize> = None;
        for member in &mut self.members {
            let report = member.fit(clean)?;
            if let Some(params) = report.n_parameters {
                n_parameters = Some(n_parameters.unwrap_or(0) + params);
            }
            notes.push(format!("fitted member `{}`", report.validator));
        }
        Ok(FitReport {
            validator: self.name.clone(),
            n_rows: clean.n_rows(),
            n_columns: clean.n_cols(),
            threshold: None,
            n_parameters,
            notes,
        })
    }

    fn validate(&self, batch: &DataFrame) -> Result<Verdict> {
        let verdicts: Vec<Verdict> = self
            .members
            .iter()
            .map(|m| m.validate(batch))
            .collect::<Result<_>>()?;
        let total: f64 = self.weights.iter().sum();
        let dirty_weight: f64 = verdicts
            .iter()
            .zip(&self.weights)
            .filter(|(v, _)| v.is_dirty)
            .map(|(_, w)| w)
            .sum();
        let score = dirty_weight / total;
        let is_dirty = match &self.voting {
            Voting::Any => verdicts.iter().any(|v| v.is_dirty),
            Voting::Majority | Voting::Weighted(_) => dirty_weight * 2.0 > total,
        };

        let mut violations = Vec::new();
        if is_dirty {
            violations.push(format!(
                "{:.0}% of the voting weight judged the batch dirty",
                100.0 * score
            ));
            for verdict in &verdicts {
                violations.push(format!(
                    "member `{}` voted {} (score {:.4})",
                    verdict.validator,
                    if verdict.is_dirty { "dirty" } else { "clean" },
                    verdict.score
                ));
            }
        }

        Ok(Verdict::dataset_level(
            self.name.clone(),
            is_dirty,
            score,
            batch.n_rows(),
            violations,
        ))
    }

    fn attach_telemetry(&mut self, telemetry: &std::sync::Arc<dquag_telemetry::Telemetry>) {
        // Recurse so any observing node (a drift detector, the DQuaG
        // backend) reports no matter how deep in the spec tree it sits.
        for member in &mut self.members {
            member.attach_telemetry(telemetry);
        }
    }

    fn replicate(&self) -> Option<Box<dyn Validator>> {
        // An ensemble replicates iff every member does; one Arc-shared
        // member would make the "independent replica" promise a lie.
        let members: Option<Vec<Box<dyn Validator>>> =
            self.members.iter().map(|m| m.replicate()).collect();
        Some(Box::new(EnsembleValidator {
            members: members?,
            weights: self.weights.clone(),
            voting: self.voting.clone(),
            name: self.name.clone(),
        }))
    }

    fn health_check(&self) -> Result<()> {
        // One corrupt member corrupts the vote, so the first violation
        // fails the whole ensemble.
        for member in &self.members {
            member.health_check()?;
        }
        Ok(())
    }

    fn persisted_state(&self) -> Option<crate::PersistedValidatorState> {
        // Persistable iff every member is; a part-persisted ensemble would
        // silently change its verdicts after a reload.
        let members: Option<Vec<_>> = self.members.iter().map(|m| m.persisted_state()).collect();
        Some(crate::PersistedValidatorState::Ensemble(
            crate::EnsembleState {
                members: members?,
                voting: self.voting.clone(),
            },
        ))
    }
}

/// A cheap validator screening every batch, escalating suspicious ones to an
/// expensive judge.
///
/// The paper's deployment story in miniature: a statistical screen (drift
/// detector, Deequ) runs on everything, and only batches it escalates pay
/// for the GNN. Both members are fitted up front, so escalation is a pure
/// `validate`-time decision.
pub struct GatedValidator {
    cheap: Box<dyn Validator>,
    expensive: Box<dyn Validator>,
    escalate_when: EscalateWhen,
    name: String,
}

impl GatedValidator {
    /// A gated pair under the given escalation rule.
    pub fn new(
        cheap: Box<dyn Validator>,
        expensive: Box<dyn Validator>,
        escalate_when: EscalateWhen,
    ) -> Result<Self> {
        if let EscalateWhen::ScoreAtLeast(score) = escalate_when {
            if !score.is_finite() {
                return Err(ValidateError::InvalidConfig(format!(
                    "gated escalation score must be finite, got {score}"
                )));
            }
        }
        let name = format!("gated({} -> {})", cheap.name(), expensive.name());
        Ok(Self {
            cheap,
            expensive,
            escalate_when,
            name,
        })
    }
}

impl Validator for GatedValidator {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> Capabilities {
        // Escalated verdicts carry whatever the expensive member produces;
        // the flags promise what the composite *can* emit.
        let expensive = self.expensive.capabilities();
        let cheap = self.cheap.capabilities();
        Capabilities {
            instance_errors: expensive.instance_errors,
            cell_flags: expensive.cell_flags,
            repair: expensive.repair,
            trains_model: cheap.trains_model || expensive.trains_model,
        }
    }

    fn fit(&mut self, clean: &DataFrame) -> Result<FitReport> {
        let cheap = self.cheap.fit(clean)?;
        let expensive = self.expensive.fit(clean)?;
        Ok(FitReport {
            validator: self.name.clone(),
            n_rows: clean.n_rows(),
            n_columns: clean.n_cols(),
            threshold: expensive.threshold,
            n_parameters: match (cheap.n_parameters, expensive.n_parameters) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
            },
            notes: vec![
                format!("screen `{}` fitted", cheap.validator),
                format!("judge `{}` fitted", expensive.validator),
            ],
        })
    }

    fn validate(&self, batch: &DataFrame) -> Result<Verdict> {
        let screen = self.cheap.validate(batch)?;
        let escalate = match self.escalate_when {
            EscalateWhen::Dirty => screen.is_dirty,
            EscalateWhen::ScoreAtLeast(score) => screen.score >= score,
        };
        let mut verdict = if escalate {
            let mut judged = self.expensive.validate(batch)?;
            judged.violations.insert(
                0,
                format!(
                    "escalated by screen `{}` (score {:.4}); judged by `{}`",
                    screen.validator, screen.score, judged.validator
                ),
            );
            judged
        } else {
            screen
        };
        // Both paths answer as the composite, so a verdict stream over a
        // gated validator is uniformly labelled.
        verdict.validator = self.name.clone();
        Ok(verdict)
    }

    fn repair(&self, batch: &DataFrame, verdict: &Verdict) -> Result<Option<DataFrame>> {
        // Only escalated verdicts carry the expensive member's instance
        // detail; a screen-level verdict has nothing to repair from, so the
        // answer is the trait's graceful "cannot repair this one", not the
        // judge's missing-detail error.
        if verdict.instance_errors.is_none() {
            return Ok(None);
        }
        self.expensive.repair(batch, verdict)
    }

    fn attach_telemetry(&mut self, telemetry: &std::sync::Arc<dquag_telemetry::Telemetry>) {
        self.cheap.attach_telemetry(telemetry);
        self.expensive.attach_telemetry(telemetry);
    }

    fn replicate(&self) -> Option<Box<dyn Validator>> {
        Some(Box::new(GatedValidator {
            cheap: self.cheap.replicate()?,
            expensive: self.expensive.replicate()?,
            escalate_when: self.escalate_when.clone(),
            name: self.name.clone(),
        }))
    }

    fn health_check(&self) -> Result<()> {
        self.cheap.health_check()?;
        self.expensive.health_check()
    }

    fn persisted_state(&self) -> Option<crate::PersistedValidatorState> {
        Some(crate::PersistedValidatorState::Gated(crate::GatedState {
            cheap: Box::new(self.cheap.persisted_state()?),
            expensive: Box::new(self.expensive.persisted_state()?),
            escalate_when: self.escalate_when.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stub whose verdict is fixed at construction.
    struct Fixed {
        name: &'static str,
        dirty: bool,
        score: f64,
        fitted: bool,
        replicable: bool,
    }

    impl Fixed {
        fn new(name: &'static str, dirty: bool, score: f64) -> Box<Self> {
            Box::new(Self {
                name,
                dirty,
                score,
                fitted: false,
                replicable: true,
            })
        }

        fn unreplicable(name: &'static str, dirty: bool) -> Box<Self> {
            Box::new(Self {
                name,
                dirty,
                score: if dirty { 1.0 } else { 0.0 },
                fitted: false,
                replicable: false,
            })
        }
    }

    impl Validator for Fixed {
        fn name(&self) -> &str {
            self.name
        }

        fn capabilities(&self) -> Capabilities {
            Capabilities::dataset_level()
        }

        fn fit(&mut self, clean: &DataFrame) -> Result<FitReport> {
            self.fitted = true;
            Ok(FitReport {
                validator: self.name.to_string(),
                n_rows: clean.n_rows(),
                n_columns: clean.n_cols(),
                threshold: None,
                n_parameters: None,
                notes: vec![],
            })
        }

        fn validate(&self, batch: &DataFrame) -> Result<Verdict> {
            if !self.fitted {
                return Err(ValidateError::NotFitted(self.name.to_string()));
            }
            Ok(Verdict::dataset_level(
                self.name,
                self.dirty,
                self.score,
                batch.n_rows(),
                if self.dirty {
                    vec!["stub violation".to_string()]
                } else {
                    vec![]
                },
            ))
        }

        fn replicate(&self) -> Option<Box<dyn Validator>> {
            (self.fitted && self.replicable).then(|| {
                Box::new(Fixed {
                    name: self.name,
                    dirty: self.dirty,
                    score: self.score,
                    fitted: true,
                    replicable: true,
                }) as Box<dyn Validator>
            })
        }
    }

    fn tiny_frame() -> DataFrame {
        use dquag_tabular::{Field, Schema, Value};
        let schema = Schema::new(vec![Field::numeric("x", "")]);
        let mut df = DataFrame::new(schema);
        for i in 0..4 {
            df.push_row(vec![Value::Number(i as f64)]).unwrap();
        }
        df
    }

    fn fitted_ensemble(members: Vec<Box<dyn Validator>>, voting: Voting) -> EnsembleValidator {
        let mut ensemble = EnsembleValidator::new(members, voting).unwrap();
        ensemble.fit(&tiny_frame()).unwrap();
        ensemble
    }

    #[test]
    fn majority_needs_a_strict_majority() {
        let batch = tiny_frame();
        let split = fitted_ensemble(
            vec![
                Fixed::new("a", true, 1.0),
                Fixed::new("b", false, 0.0),
                Fixed::new("c", false, 0.0),
            ],
            Voting::Majority,
        );
        let verdict = split.validate(&batch).unwrap();
        assert!(!verdict.is_dirty);
        assert!((verdict.score - 1.0 / 3.0).abs() < 1e-12);
        assert!(verdict.violations.is_empty());

        let majority = fitted_ensemble(
            vec![
                Fixed::new("a", true, 1.0),
                Fixed::new("b", true, 0.9),
                Fixed::new("c", false, 0.0),
            ],
            Voting::Majority,
        );
        let verdict = majority.validate(&batch).unwrap();
        assert!(verdict.is_dirty);
        assert_eq!(verdict.validator, "majority(a, b, c)");
        // Dirty verdicts grade every member's vote.
        assert_eq!(verdict.violations.len(), 4);
    }

    #[test]
    fn any_fires_on_a_single_dirty_vote() {
        let batch = tiny_frame();
        let ensemble = fitted_ensemble(
            vec![
                Fixed::new("a", false, 0.0),
                Fixed::new("b", false, 0.0),
                Fixed::new("c", true, 0.3),
            ],
            Voting::Any,
        );
        let verdict = ensemble.validate(&batch).unwrap();
        assert!(verdict.is_dirty);
        assert!((verdict.score - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_votes_count_by_weight() {
        let batch = tiny_frame();
        // The dirty member holds 3 of 4 weight units.
        let ensemble = fitted_ensemble(
            vec![
                Fixed::new("heavy", true, 1.0),
                Fixed::new("light", false, 0.0),
            ],
            Voting::Weighted(vec![3.0, 1.0]),
        );
        let verdict = ensemble.validate(&batch).unwrap();
        assert!(verdict.is_dirty);
        assert!((verdict.score - 0.75).abs() < 1e-12);

        // Flipped weights: the dirty vote is outweighed.
        let ensemble = fitted_ensemble(
            vec![
                Fixed::new("heavy", true, 1.0),
                Fixed::new("light", false, 0.0),
            ],
            Voting::Weighted(vec![1.0, 3.0]),
        );
        assert!(!ensemble.validate(&batch).unwrap().is_dirty);
    }

    #[test]
    fn ensemble_construction_rejects_bad_shapes() {
        assert!(EnsembleValidator::new(vec![], Voting::Majority).is_err());
        assert!(EnsembleValidator::new(
            vec![Fixed::new("a", false, 0.0)],
            Voting::Weighted(vec![1.0, 2.0])
        )
        .is_err());
        assert!(EnsembleValidator::new(
            vec![Fixed::new("a", false, 0.0)],
            Voting::Weighted(vec![0.0])
        )
        .is_err());
    }

    #[test]
    fn ensemble_replicates_iff_every_member_does() {
        let batch = tiny_frame();
        let all = fitted_ensemble(
            vec![Fixed::new("a", true, 1.0), Fixed::new("b", true, 1.0)],
            Voting::Majority,
        );
        let replica = all.replicate().expect("all members replicate");
        assert_eq!(replica.name(), all.name());
        assert_eq!(
            replica.validate(&batch).unwrap(),
            all.validate(&batch).unwrap()
        );

        let partial = fitted_ensemble(
            vec![Fixed::new("a", true, 1.0), Fixed::unreplicable("b", true)],
            Voting::Majority,
        );
        assert!(partial.replicate().is_none());
    }

    #[test]
    fn gated_escalates_on_dirty_and_relabels() {
        let batch = tiny_frame();
        let mut gated = GatedValidator::new(
            Fixed::new("screen", true, 0.8),
            Fixed::new("judge", false, 0.1),
            EscalateWhen::Dirty,
        )
        .unwrap();
        gated.fit(&batch).unwrap();
        let verdict = gated.validate(&batch).unwrap();
        // The screen escalated; the judge's clean verdict wins.
        assert!(!verdict.is_dirty);
        assert_eq!(verdict.validator, "gated(screen -> judge)");
        assert!(verdict.violations[0].contains("escalated by screen"));
        assert!((verdict.score - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gated_without_escalation_returns_the_screen_verdict() {
        let batch = tiny_frame();
        let mut gated = GatedValidator::new(
            Fixed::new("screen", false, 0.2),
            Fixed::new("judge", true, 0.9),
            EscalateWhen::ScoreAtLeast(0.5),
        )
        .unwrap();
        gated.fit(&batch).unwrap();
        let verdict = gated.validate(&batch).unwrap();
        assert!(!verdict.is_dirty);
        assert!((verdict.score - 0.2).abs() < 1e-12);
        assert_eq!(verdict.validator, "gated(screen -> judge)");
    }

    #[test]
    fn gated_score_threshold_escalates_below_the_dirty_line() {
        let batch = tiny_frame();
        let mut gated = GatedValidator::new(
            Fixed::new("screen", false, 0.6),
            Fixed::new("judge", true, 0.9),
            EscalateWhen::ScoreAtLeast(0.5),
        )
        .unwrap();
        gated.fit(&batch).unwrap();
        // The screen said clean, but its score crossed the escalation line.
        let verdict = gated.validate(&batch).unwrap();
        assert!(verdict.is_dirty);
        assert!((verdict.score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gated_repair_declines_screen_level_verdicts_gracefully() {
        let batch = tiny_frame();
        let mut gated = GatedValidator::new(
            Fixed::new("screen", true, 0.8),
            Fixed::new("judge", true, 0.9),
            // Never escalates, so verdicts always come from the screen and
            // carry no instance detail.
            EscalateWhen::ScoreAtLeast(2.0),
        )
        .unwrap();
        gated.fit(&batch).unwrap();
        let verdict = gated.validate(&batch).unwrap();
        assert!(verdict.is_dirty && verdict.instance_errors.is_none());
        // "Cannot repair this one" is Ok(None), not the judge's
        // missing-detail error.
        assert!(gated.repair(&batch, &verdict).unwrap().is_none());
    }

    #[test]
    fn gated_replicates_iff_both_members_do() {
        let batch = tiny_frame();
        let mut gated = GatedValidator::new(
            Fixed::new("screen", true, 1.0),
            Fixed::new("judge", true, 1.0),
            EscalateWhen::Dirty,
        )
        .unwrap();
        gated.fit(&batch).unwrap();
        let replica = gated.replicate().expect("both members replicate");
        assert_eq!(
            replica.validate(&batch).unwrap(),
            gated.validate(&batch).unwrap()
        );

        let mut partial = GatedValidator::new(
            Fixed::new("screen", true, 1.0),
            Fixed::unreplicable("judge", true),
            EscalateWhen::Dirty,
        )
        .unwrap();
        partial.fit(&batch).unwrap();
        assert!(partial.replicate().is_none());
    }
}
