//! Spec-tree construction helpers: re-exports of the `dquag-core` data
//! model plus the [`ValidatorKind`] lowering.
//!
//! The [`ValidatorSpec`] *data model* lives in `dquag-core` so it can embed
//! in `DquagConfig` and in source-layer checkpoints without a dependency
//! cycle; this module is the `dquag-validate`-side front door. Everything a
//! caller needs to author a spec — node types, voting policies, drift tests
//! — is re-exported here, and the legacy closed [`ValidatorKind`] lowers
//! into the open world via `From`.

pub use dquag_core::spec::{
    normalize_backend_name, BackendSpec, DriftSpec, DriftTest, EnsembleSpec, EscalateWhen,
    GatedSpec, ValidatorSpec, Voting,
};

use crate::registry::ValidatorKind;

/// Every legacy kind is exactly a backend leaf with no params — the shim
/// that lets PR 1–4 call sites ride the open registry unchanged.
impl From<ValidatorKind> for ValidatorSpec {
    fn from(kind: ValidatorKind) -> Self {
        ValidatorSpec::backend(kind.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_lowers_to_its_backend_leaf() {
        for kind in ValidatorKind::ALL {
            let spec = ValidatorSpec::from(kind);
            assert_eq!(spec, ValidatorSpec::backend(kind.key()));
            spec.validated().expect("lowered specs are valid");
        }
    }

    #[test]
    fn lowered_specs_build_the_same_backend_as_the_legacy_factory() {
        let config = dquag_core::DquagConfig::fast();
        for kind in ValidatorKind::ALL {
            let via_spec = crate::build_spec(&ValidatorSpec::from(kind), &config)
                .expect("lowered spec builds");
            let via_kind = crate::build_validator(kind, &config);
            assert_eq!(via_spec.name(), via_kind.name());
            assert_eq!(via_spec.capabilities(), via_kind.capabilities());
        }
    }
}
