//! Adapters plugging DQuaG and the four baselines into the unified
//! [`Validator`] trait.

use crate::verdict::Capabilities;
use crate::{FitReport, Result, ValidateError, Validator, Verdict};
use dquag_baselines::{BaselineKind, BatchValidator};
use dquag_core::{DquagConfig, DquagValidator};
use dquag_tabular::DataFrame;
use dquag_telemetry::Telemetry;
use std::sync::Arc;

/// How many flagged instances are spelled out as violation messages before
/// the rest are summarised in one line.
const MAX_INSTANCE_VIOLATIONS: usize = 5;

/// The DQuaG GNN pipeline behind the unified API.
///
/// Holds the pipeline configuration; [`Validator::fit`] trains the network
/// and calibrates the detection threshold, [`Validator::validate`] maps the
/// rich [`dquag_core::ValidationReport`] into a full-detail [`Verdict`].
pub struct DquagBackend {
    config: DquagConfig,
    future: Vec<DataFrame>,
    fitted: Option<DquagValidator>,
    telemetry: Option<Arc<Telemetry>>,
}

impl DquagBackend {
    /// An unfitted backend with the given pipeline configuration.
    pub fn new(config: DquagConfig) -> Self {
        Self {
            config,
            future: Vec::new(),
            fitted: None,
            telemetry: None,
        }
    }

    /// Register known future batches before fitting so the label encoder
    /// covers their categories (§3.1 of the paper).
    pub fn with_future(mut self, future: Vec<DataFrame>) -> Self {
        self.future = future;
        self
    }

    /// Wrap an already-trained core validator.
    pub fn from_trained(validator: DquagValidator) -> Self {
        Self {
            config: validator.config().clone(),
            future: Vec::new(),
            fitted: Some(validator),
            telemetry: None,
        }
    }

    /// Attach a telemetry bundle: the fitted core validator (current and
    /// every future refit through this backend) times its phase-2 stages and
    /// counts forward passes into the bundle's registry.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        if let Some(fitted) = self.fitted.take() {
            self.fitted = Some(fitted.with_telemetry(Arc::clone(&telemetry)));
        }
        self.telemetry = Some(telemetry);
        self
    }

    /// The trained core validator, if fitted — the escape hatch for
    /// DQuaG-only features (feature-graph inspection, training diagnostics).
    pub fn trained(&self) -> Option<&DquagValidator> {
        self.fitted.as_ref()
    }

    /// Mutable access to the trained core validator — the seam
    /// `dquag-faults` uses to corrupt fitted parameters or install
    /// activation faults on a live backend.
    pub fn trained_mut(&mut self) -> Option<&mut DquagValidator> {
        self.fitted.as_mut()
    }

    fn require_fitted(&self) -> Result<&DquagValidator> {
        self.fitted
            .as_ref()
            .ok_or_else(|| ValidateError::NotFitted(self.name().to_string()))
    }
}

impl Validator for DquagBackend {
    fn name(&self) -> &str {
        "DQuaG"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::full_detail()
    }

    fn fit(&mut self, clean: &DataFrame) -> Result<FitReport> {
        let future: Vec<&DataFrame> = self.future.iter().collect();
        let mut validator = DquagValidator::train(clean, &future, &self.config)?;
        if let Some(telemetry) = &self.telemetry {
            validator = validator.with_telemetry(Arc::clone(telemetry));
        }
        let summary = validator.training_summary();
        let report = FitReport {
            validator: self.name().to_string(),
            n_rows: clean.n_rows(),
            n_columns: clean.n_cols(),
            threshold: Some(summary.threshold),
            n_parameters: Some(summary.n_weights),
            notes: vec![
                format!(
                    "trained {} epochs on {} rows, calibrated on {}",
                    summary.epoch_losses.len(),
                    summary.n_train_rows,
                    summary.n_calibration_rows
                ),
                format!("feature graph has {} edges", summary.graph_edges.len()),
            ],
        };
        self.fitted = Some(validator);
        Ok(report)
    }

    fn validate(&self, batch: &DataFrame) -> Result<Verdict> {
        let validator = self.require_fitted()?;
        let report = validator.validate(batch)?;

        let mut violations = Vec::new();
        if report.dataset_is_dirty {
            violations.push(format!(
                "{:.1}% of instances exceed the reconstruction-error threshold {:.5} \
                 (dataset limit {:.1}%)",
                100.0 * report.error_rate,
                report.threshold,
                100.0 * validator.config().dataset_error_rate_threshold(),
            ));
            for &row in report
                .flagged_instances
                .iter()
                .take(MAX_INSTANCE_VIOLATIONS)
            {
                let blamed: Vec<&str> = report
                    .cell_flags
                    .iter()
                    .filter(|c| c.row == row)
                    .filter_map(|c| batch.schema().field(c.column).map(|f| f.name.as_str()))
                    .collect();
                violations.push(format!(
                    "instance {row}: error {:.5}, suspicious features {blamed:?}",
                    report.instance_errors[row]
                ));
            }
            if report.flagged_instances.len() > MAX_INSTANCE_VIOLATIONS {
                violations.push(format!(
                    "… and {} more flagged instances",
                    report.flagged_instances.len() - MAX_INSTANCE_VIOLATIONS
                ));
            }
        }

        Ok(Verdict {
            validator: self.name().to_string(),
            is_dirty: report.dataset_is_dirty,
            score: report.error_rate,
            n_instances: report.n_instances(),
            violations,
            instance_errors: Some(report.instance_errors),
            flagged_instances: Some(report.flagged_instances),
            cell_flags: Some(report.cell_flags),
            threshold: Some(report.threshold),
        })
    }

    fn repair(&self, batch: &DataFrame, verdict: &Verdict) -> Result<Option<DataFrame>> {
        let validator = self.require_fitted()?;
        // Repair targets the flagged cells, so a verdict without instance
        // detail (e.g. produced by a baseline backend) cannot drive it —
        // silently returning the batch unchanged would let dirty data pass
        // as "repaired".
        let (Some(instance_errors), Some(flagged_instances), Some(cell_flags)) = (
            verdict.instance_errors.clone(),
            verdict.flagged_instances.clone(),
            verdict.cell_flags.clone(),
        ) else {
            return Err(ValidateError::InvalidBatch(format!(
                "repair needs a verdict with instance detail; the given one \
                 (from `{}`) carries none",
                verdict.validator
            )));
        };
        // Rebuild the core report view the repair decoder expects.
        let report = dquag_core::ValidationReport::new(
            instance_errors,
            flagged_instances,
            cell_flags,
            verdict.is_dirty,
            verdict.threshold.unwrap_or(validator.threshold()),
        );
        Ok(Some(validator.repair(batch, &report)?))
    }

    fn attach_telemetry(&mut self, telemetry: &Arc<Telemetry>) {
        if let Some(fitted) = self.fitted.take() {
            self.fitted = Some(fitted.with_telemetry(Arc::clone(telemetry)));
        }
        self.telemetry = Some(Arc::clone(telemetry));
    }

    fn replicate(&self) -> Option<Box<dyn Validator>> {
        // The fitted core validator is plain data (weights, encoder,
        // thresholds), so a clone is a true independent replica.
        self.fitted.as_ref().map(|fitted| {
            Box::new(DquagBackend {
                config: self.config.clone(),
                future: self.future.clone(),
                fitted: Some(fitted.clone()),
                telemetry: self.telemetry.clone(),
            }) as Box<dyn Validator>
        })
    }

    fn health_check(&self) -> Result<()> {
        // An unfitted backend has no parameters to drift, so nothing to
        // verify; once fitted, re-hash against the checksum taken at fit.
        match &self.fitted {
            Some(fitted) => fitted.health_check().map_err(ValidateError::from),
            None => Ok(()),
        }
    }

    fn persisted_state(&self) -> Option<crate::PersistedValidatorState> {
        self.fitted
            .as_ref()
            .map(|fitted| crate::PersistedValidatorState::Dquag(Box::new(fitted.export_state())))
    }
}

/// One of the four baseline systems (six configurations) behind the unified
/// API.
///
/// Wraps the `dquag_baselines::BatchValidator` SPI and lifts its flat
/// [`dquag_baselines::BatchVerdict`] into the graded [`Verdict`] (without
/// instance detail — none of the baselines localises errors).
pub struct BaselineBackend {
    kind: BaselineKind,
    inner: Box<dyn BatchValidator>,
    fitted: bool,
}

impl BaselineBackend {
    /// An unfitted backend for the given baseline configuration.
    pub fn new(kind: BaselineKind) -> Self {
        Self {
            kind,
            inner: kind.build(),
            fitted: false,
        }
    }

    /// Which baseline configuration this wraps.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }
}

impl Validator for BaselineBackend {
    fn name(&self) -> &str {
        self.kind.label()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::dataset_level()
    }

    fn fit(&mut self, clean: &DataFrame) -> Result<FitReport> {
        self.inner.fit(clean);
        self.fitted = true;
        Ok(FitReport {
            validator: self.name().to_string(),
            n_rows: clean.n_rows(),
            n_columns: clean.n_cols(),
            threshold: None,
            n_parameters: None,
            notes: vec![format!("fitted on {} clean rows", clean.n_rows())],
        })
    }

    fn validate(&self, batch: &DataFrame) -> Result<Verdict> {
        if !self.fitted {
            return Err(ValidateError::NotFitted(self.name().to_string()));
        }
        let verdict = self.inner.validate(batch);
        Ok(Verdict::dataset_level(
            self.name(),
            verdict.is_dirty,
            verdict.score,
            batch.n_rows(),
            verdict.violations,
        ))
    }
}
