//! [`ValidationSession`]: a fitted validator plus a stream of incoming
//! batches.

use crate::{build_validator, FitReport, Result, Validator, ValidatorKind, Verdict};
use dquag_core::DquagConfig;
use dquag_tabular::DataFrame;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A streaming validation front-end over a fitted [`Validator`].
///
/// The deployment story of the paper's introduction: batches arrive
/// continuously (daily exports, upstream pipelines) and each one must be
/// judged against the clean reference distribution. The session owns the
/// fitted validator, ingests batches one at a time ([`push_batch`]) or in
/// bulk ([`push_batches`], [`push_stream`]), keeps the verdict history, and
/// fans bulk validation out across worker threads
/// ([`with_threads`] — typically `DquagConfig::validation_threads`).
///
/// [`push_batch`]: ValidationSession::push_batch
/// [`push_batches`]: ValidationSession::push_batches
/// [`push_stream`]: ValidationSession::push_stream
/// [`with_threads`]: ValidationSession::with_threads
pub struct ValidationSession {
    validator: Box<dyn Validator>,
    fit_report: Option<FitReport>,
    threads: usize,
    history: Vec<Verdict>,
}

impl ValidationSession {
    /// Fit `validator` on the clean reference data and open a session over
    /// it.
    pub fn fit(mut validator: Box<dyn Validator>, clean: &DataFrame) -> Result<Self> {
        let fit_report = validator.fit(clean)?;
        Ok(Self {
            validator,
            fit_report: Some(fit_report),
            threads: 1,
            history: Vec::new(),
        })
    }

    /// Open a session over an already-fitted validator.
    pub fn from_fitted(validator: Box<dyn Validator>) -> Self {
        Self {
            validator,
            fit_report: None,
            threads: 1,
            history: Vec::new(),
        }
    }

    /// Build, fit and wrap a validator of `kind` in one call, honouring
    /// `config.validation_threads` for bulk validation.
    ///
    /// Batch-level fan-out lives in the session, so the backend itself is
    /// built with a sequential row path — otherwise a parallel DQuaG backend
    /// under a parallel session would spawn `threads²` workers.
    pub fn train(kind: ValidatorKind, config: &DquagConfig, clean: &DataFrame) -> Result<Self> {
        let mut backend_config = config.clone();
        if config.validation_threads > 1 {
            backend_config.validation_threads = 1;
        }
        Ok(Self::fit(build_validator(kind, &backend_config), clean)?
            .with_threads(config.validation_threads))
    }

    /// Use up to `threads` worker threads for bulk validation (`0` and `1`
    /// both mean sequential).
    ///
    /// When wrapping a hand-built backend that parallelises internally (a
    /// `DquagBackend` with `validation_threads > 1`), keep one of the two
    /// levels sequential; [`ValidationSession::train`] does this
    /// automatically.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The wrapped validator.
    pub fn validator(&self) -> &dyn Validator {
        &*self.validator
    }

    /// The fit report, when the session fitted the validator itself.
    pub fn fit_report(&self) -> Option<&FitReport> {
        self.fit_report.as_ref()
    }

    /// Number of worker threads used for bulk validation.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Validate one incoming batch and record the verdict.
    pub fn push_batch(&mut self, batch: &DataFrame) -> Result<&Verdict> {
        let verdict = self.validator.validate(batch)?;
        self.history.push(verdict);
        Ok(self.history.last().expect("just pushed"))
    }

    /// Validate a slice of batches — in parallel when the session has more
    /// than one worker thread — record the verdicts in input order, and
    /// return them as a slice of the history (no copies; instance-level
    /// verdicts can be large).
    ///
    /// Verdicts are identical to the sequential path: the validator is
    /// immutable during validation, each batch is independent, and results
    /// are written back by input index.
    pub fn push_batches(&mut self, batches: &[DataFrame]) -> Result<&[Verdict]> {
        let verdicts = self.validate_batches(batches)?;
        let start = self.history.len();
        self.history.extend(verdicts);
        Ok(&self.history[start..])
    }

    /// Drain an iterator of batches through the session (collects, then
    /// validates in bulk so the thread pool is used).
    pub fn push_stream<I>(&mut self, stream: I) -> Result<&[Verdict]>
    where
        I: IntoIterator<Item = DataFrame>,
    {
        let batches: Vec<DataFrame> = stream.into_iter().collect();
        self.push_batches(&batches)
    }

    /// Validate a slice of batches without recording them in the history.
    pub fn validate_batches(&self, batches: &[DataFrame]) -> Result<Vec<Verdict>> {
        let threads = self.threads.clamp(1, batches.len().max(1));
        if threads == 1 {
            return batches.iter().map(|b| self.validator.validate(b)).collect();
        }

        let validator: &dyn Validator = &*self.validator;
        let chunk_size = batches.len().div_ceil(threads);
        let mut slots: Vec<Option<Result<Verdict>>> = Vec::new();
        slots.resize_with(batches.len(), || None);
        std::thread::scope(|scope| {
            for (batch_chunk, slot_chunk) in
                batches.chunks(chunk_size).zip(slots.chunks_mut(chunk_size))
            {
                scope.spawn(move || {
                    for (batch, slot) in batch_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(validator.validate(batch));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot is filled by its worker"))
            .collect()
    }

    /// All verdicts recorded so far, oldest first.
    pub fn history(&self) -> &[Verdict] {
        &self.history
    }

    /// Number of batches judged so far.
    pub fn n_batches(&self) -> usize {
        self.history.len()
    }

    /// Number of batches judged dirty so far.
    pub fn n_dirty(&self) -> usize {
        self.history.iter().filter(|v| v.is_dirty).count()
    }

    /// Fraction of judged batches that were dirty (0.0 when empty).
    pub fn dirty_fraction(&self) -> f64 {
        if self.history.is_empty() {
            0.0
        } else {
            self.n_dirty() as f64 / self.history.len() as f64
        }
    }

    /// Mean per-batch error rate ([`Verdict::error_rate`]) over the most
    /// recent `window` verdicts (0.0 when empty; `window == 0` means all).
    pub fn rolling_error_rate(&self, window: usize) -> f64 {
        let window = if window == 0 {
            self.history.len()
        } else {
            window
        };
        let tail = &self.history[self.history.len().saturating_sub(window)..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().map(Verdict::error_rate).sum::<f64>() / tail.len() as f64
        }
    }

    /// A serialisable snapshot of the session state.
    pub fn summary(&self) -> SessionSummary {
        SessionSummary {
            validator: self.validator.name().to_string(),
            n_batches: self.n_batches(),
            n_dirty: self.n_dirty(),
            dirty_fraction: self.dirty_fraction(),
            mean_error_rate: self.rolling_error_rate(0),
        }
    }
}

/// Serialisable snapshot of a [`ValidationSession`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Name of the wrapped validator.
    pub validator: String,
    /// Batches judged so far.
    pub n_batches: usize,
    /// Batches judged dirty.
    pub n_dirty: usize,
    /// `n_dirty / n_batches` (0.0 when empty).
    pub dirty_fraction: f64,
    /// Mean per-batch error rate over the whole history.
    pub mean_error_rate: f64,
}

/// One-line operational summary, e.g.
/// `DQuaG: 7 batches, 2 dirty (28.6%), mean error rate 4.2%`.
impl fmt::Display for SessionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} batches, {} dirty ({:.1}%), mean error rate {:.1}%",
            self.validator,
            self.n_batches,
            self.n_dirty,
            100.0 * self.dirty_fraction,
            100.0 * self.mean_error_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Capabilities, ValidateError};

    /// Minimal stub backend: fitting records nothing, validating always says
    /// clean. Enough to exercise the session plumbing without training.
    struct StubValidator {
        fitted: bool,
    }

    impl Validator for StubValidator {
        fn name(&self) -> &str {
            "Stub"
        }

        fn capabilities(&self) -> Capabilities {
            Capabilities::dataset_level()
        }

        fn fit(&mut self, clean: &DataFrame) -> Result<FitReport> {
            self.fitted = true;
            Ok(FitReport {
                validator: self.name().to_string(),
                n_rows: clean.n_rows(),
                n_columns: clean.n_cols(),
                threshold: None,
                n_parameters: None,
                notes: vec![],
            })
        }

        fn validate(&self, batch: &DataFrame) -> Result<Verdict> {
            if !self.fitted {
                return Err(ValidateError::NotFitted(self.name().to_string()));
            }
            Ok(Verdict::dataset_level(
                self.name(),
                false,
                0.0,
                batch.n_rows(),
                vec![],
            ))
        }
    }

    #[test]
    fn with_threads_zero_is_clamped_to_sequential() {
        // Regression test: `with_threads(0)` must not produce a session whose
        // bulk validation spawns zero workers (and therefore validates
        // nothing); 0 is clamped to 1 like the `DquagConfig` error path
        // demands for `validation_threads == 0`.
        let session = ValidationSession::from_fitted(Box::new(StubValidator { fitted: true }))
            .with_threads(0);
        assert_eq!(session.threads(), 1);

        let batches: Vec<DataFrame> = Vec::new();
        assert_eq!(
            session
                .validate_batches(&batches)
                .expect("no batches")
                .len(),
            0
        );
    }

    #[test]
    fn summary_display_is_one_line() {
        let summary = SessionSummary {
            validator: "Stub".into(),
            n_batches: 4,
            n_dirty: 1,
            dirty_fraction: 0.25,
            mean_error_rate: 0.05,
        };
        assert_eq!(
            summary.to_string(),
            "Stub: 4 batches, 1 dirty (25.0%), mean error rate 5.0%"
        );
    }
}
