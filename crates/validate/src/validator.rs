//! The unified [`Validator`] trait and its error type.

use crate::verdict::Capabilities;
use crate::{FitReport, Result, Verdict};
use dquag_core::{CoreError, HealthError};
use dquag_tabular::DataFrame;
use dquag_telemetry::Telemetry;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the unified validator API.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// `validate` (or `repair`) was called before `fit`.
    NotFitted(String),
    /// An error bubbled up from the DQuaG core pipeline.
    Core(CoreError),
    /// The batch is unusable for this validator (wrong schema, empty, …).
    InvalidBatch(String),
    /// A configuration value is out of its legal range.
    InvalidConfig(String),
    /// The *validator itself* failed a runtime self-check (checksum drift,
    /// non-finite kernel output, poisoned activations). Unlike the other
    /// variants this does not indict the batch: the replica is corrupt and
    /// should be quarantined and rebuilt, then the batch retried.
    Health(HealthError),
    /// The validator panicked while judging a batch. The streaming engine
    /// catches the unwind, fails the batch with this error, and records a
    /// replica quarantine instead of letting the worker thread die.
    Panicked(String),
}

impl ValidateError {
    /// True for health violations — the signal the streaming engine uses to
    /// quarantine a replica instead of merely failing the batch.
    pub fn is_health(&self) -> bool {
        matches!(self, ValidateError::Health(_))
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NotFitted(name) => {
                write!(f, "validator `{name}` must be fitted before validating")
            }
            ValidateError::Core(e) => write!(f, "pipeline error: {e}"),
            ValidateError::InvalidBatch(msg) => write!(f, "invalid batch: {msg}"),
            ValidateError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ValidateError::Health(violation) => {
                write!(f, "validator health violation: {violation}")
            }
            ValidateError::Panicked(msg) => write!(f, "validator panicked: {msg}"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<CoreError> for ValidateError {
    fn from(e: CoreError) -> Self {
        match e {
            // Health violations keep their structure so callers can match on
            // them without string-parsing a Core wrapper.
            CoreError::Health(violation) => ValidateError::Health(violation),
            other => ValidateError::Core(other),
        }
    }
}

/// A data-quality validator behind the unified API: fit once on a clean
/// reference dataset, then judge incoming batches.
///
/// The paper's five systems (DQuaG, Deequ, TFDV, ADQV, Gate) all answer the
/// same question — "is this incoming batch dirty?" — with different amounts
/// of detail. This trait is the single seam they plug into: benches,
/// examples, the [`crate::ValidationSession`] and future backends all program
/// against `dyn Validator` and construct instances through
/// [`crate::build_validator`].
///
/// Implementations must be `Send + Sync`: a fitted validator is immutable
/// during validation, and the session fans batches out across threads.
pub trait Validator: Send + Sync {
    /// Display name used in tables and verdicts (e.g. `"DQuaG"`,
    /// `"Deequ expert"`).
    fn name(&self) -> &str;

    /// How much detail this backend can produce.
    fn capabilities(&self) -> Capabilities;

    /// Fit on the clean reference dataset. May be called again to refit.
    fn fit(&mut self, clean: &DataFrame) -> Result<FitReport>;

    /// Judge a batch of new data. Errors with [`ValidateError::NotFitted`]
    /// when called before [`Validator::fit`].
    fn validate(&self, batch: &DataFrame) -> Result<Verdict>;

    /// Propose a repaired copy of `batch` for the problems named in
    /// `verdict`. Backends without [`Capabilities::repair`] return
    /// `Ok(None)` (the default).
    fn repair(&self, batch: &DataFrame, verdict: &Verdict) -> Result<Option<DataFrame>> {
        let _ = (batch, verdict);
        Ok(None)
    }

    /// Produce an independent fitted replica of this validator for
    /// data-parallel sharding, or `None` when the backend cannot copy its
    /// fitted state.
    ///
    /// The streaming engine shards heavy traffic across replicas; backends
    /// that return `None` are shared behind an `Arc` instead (sound, since
    /// [`Validator::validate`] takes `&self`), replicas merely avoid any
    /// cross-worker sharing. Must only be called on a fitted validator, and
    /// the replica must produce verdicts identical to the original's.
    fn replicate(&self) -> Option<Box<dyn Validator>> {
        None
    }

    /// Attach a shared telemetry bundle so this validator reports
    /// data-plane observations (per-column drift, backend scores) as it
    /// validates. The default is a no-op; composites recurse into their
    /// members so any spec containing an observing node reports. The
    /// streaming engine calls this automatically on start and on every
    /// hot swap when it was built with telemetry.
    fn attach_telemetry(&mut self, telemetry: &Arc<Telemetry>) {
        let _ = telemetry;
    }

    /// Verify this validator's own integrity: re-hash fitted parameters
    /// against the checksum recorded at fit time, scan for non-finite
    /// weights, and so on. Backends without fitted state (or without a
    /// cheap integrity proof) return `Ok(())` — the default.
    ///
    /// The streaming engine calls this when deciding whether a replica that
    /// produced a [`ValidateError::Health`] should be quarantined; external
    /// supervisors may call it periodically. Composites recurse into their
    /// members and surface the first violation.
    fn health_check(&self) -> Result<()> {
        Ok(())
    }

    /// Export this validator's complete fitted state for persistence, or
    /// `None` when the backend does not support it (the default) or has not
    /// been fitted yet.
    ///
    /// This is the *Persistable* capability: a returned state, fed through
    /// [`crate::rebuild_validator`], yields a scoring-ready validator whose
    /// verdicts are identical to this one's — across process restarts, with
    /// no refit. Composites (ensemble, gated) are persistable exactly when
    /// every member is.
    fn persisted_state(&self) -> Option<crate::PersistedValidatorState> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(ValidateError::NotFitted("Gate".into())
            .to_string()
            .contains("Gate"));
        assert!(ValidateError::InvalidConfig("epochs = 0".into())
            .to_string()
            .contains("epochs"));
        let core: ValidateError = CoreError::SchemaMismatch("col".into()).into();
        assert!(core.to_string().contains("col"));
    }

    #[test]
    fn health_violations_keep_their_structure_across_the_core_boundary() {
        let violation = HealthError::ChecksumMismatch {
            expected: 0xdead,
            actual: 0xbeef,
        };
        let err: ValidateError = CoreError::Health(violation.clone()).into();
        assert_eq!(err, ValidateError::Health(violation));
        assert!(err.is_health());
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        let plain: ValidateError = CoreError::SchemaMismatch("col".into()).into();
        assert!(!plain.is_health());
    }
}
