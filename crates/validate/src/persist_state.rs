//! Serialisable fitted-state mirrors for persistable validators.
//!
//! A [`PersistedValidatorState`] is the crate's *Persistable capability* made
//! concrete: any [`Validator`] that can produce one (via
//! [`Validator::persisted_state`]) can be saved to disk and rebuilt,
//! scoring-ready, by [`rebuild_validator`] — no refit. Backends opt in by
//! overriding the trait method; composites (ensemble, gated) are persistable
//! exactly when every member is, recursively.
//!
//! The mirrors exist because fitted state is not always serialisable as
//! stored: the drift detector keeps categorical proportions keyed by
//! `Option<String>` (not a JSON object key), so its profile is flattened
//! into explicit `{category, proportion}` records here. The DQuaG backend
//! reuses [`DquagModelState`] from `dquag-core` unchanged.
//!
//! The on-disk envelope (versioning, checksums, atomic writes, quarantine)
//! lives one layer up in `dquag-persist`; this module only defines what a
//! fitted validator *is* as data.

use crate::{Result, ValidateError, Validator};
use dquag_core::spec::{DriftSpec, EscalateWhen, Voting};
use dquag_core::DquagModelState;
use serde::{Deserialize, Serialize};

/// The complete fitted state of a persistable validator, as a serialisable
/// tree mirroring the validator composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PersistedValidatorState {
    /// A fitted DQuaG backend (network parameters, encoders, threshold).
    Dquag(Box<DquagModelState>),
    /// A fitted KS/PSI drift detector (per-column reference profiles).
    Drift(DriftState),
    /// An ensemble whose members are all persistable.
    Ensemble(EnsembleState),
    /// A gated pair whose members are both persistable.
    Gated(GatedState),
}

impl PersistedValidatorState {
    /// A short label for the root node — the `kind` field of the on-disk
    /// envelope, so tools can identify a file without decoding the payload.
    pub fn kind(&self) -> &'static str {
        match self {
            PersistedValidatorState::Dquag(_) => "dquag",
            PersistedValidatorState::Drift(_) => "drift",
            PersistedValidatorState::Ensemble(_) => "ensemble",
            PersistedValidatorState::Gated(_) => "gated",
        }
    }
}

/// Fitted state of a [`crate::DriftValidator`]: the spec plus one profile
/// per reference column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftState {
    /// Which tests run and their thresholds.
    pub spec: DriftSpec,
    /// Per-column reference profiles, in schema order.
    pub profiles: Vec<DriftColumnState>,
}

/// The reference profile of one column. Exactly one of `numeric` /
/// `categorical` is set; [`rebuild_validator`] rejects anything else.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftColumnState {
    /// Column name.
    pub column: String,
    /// Set when the reference column was numeric.
    pub numeric: Option<NumericProfileState>,
    /// Set when the reference column was categorical.
    pub categorical: Option<CategoricalProfileState>,
}

/// Numeric reference profile: empirical CDF sample, quantile bin edges and
/// per-bucket proportions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericProfileState {
    /// Sorted finite reference values.
    pub sorted: Vec<f64>,
    /// Quantile bin edges.
    pub edges: Vec<f64>,
    /// Reference proportion per bucket (`edges.len() + 2` entries: value
    /// buckets plus the trailing missing bucket).
    pub proportions: Vec<f64>,
}

/// Categorical reference profile as explicit records — `Option<String>`
/// categories cannot be JSON object keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalProfileState {
    /// One record per category; `category: None` counts missing values.
    pub categories: Vec<CategoryProportion>,
}

/// One category's reference proportion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryProportion {
    /// The category label; `None` is the missing-value bucket.
    pub category: Option<String>,
    /// Fraction of reference rows in this category.
    pub proportion: f64,
}

/// Fitted state of an [`crate::EnsembleValidator`]: member states in voting
/// order plus the voting policy (weights are re-derived from it on rebuild).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleState {
    /// Member states, in voting order.
    pub members: Vec<PersistedValidatorState>,
    /// How member verdicts combine.
    pub voting: Voting,
}

/// Fitted state of a [`crate::GatedValidator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatedState {
    /// The cheap screen's state.
    pub cheap: Box<PersistedValidatorState>,
    /// The expensive judge's state.
    pub expensive: Box<PersistedValidatorState>,
    /// The escalation rule.
    pub escalate_when: EscalateWhen,
}

/// Rebuild a fitted, scoring-ready validator from persisted state.
///
/// The inverse of [`Validator::persisted_state`]: the returned validator
/// produces verdicts identical to the one that exported the state. Loading
/// fails closed — structural inconsistencies (missing profiles, checksum
/// mismatches in the DQuaG parameters, invalid specs) are errors, never
/// silently-degraded validators.
pub fn rebuild_validator(state: PersistedValidatorState) -> Result<Box<dyn Validator>> {
    match state {
        PersistedValidatorState::Dquag(model) => {
            let fitted = dquag_core::DquagValidator::from_state(*model)?;
            Ok(Box::new(crate::DquagBackend::from_trained(fitted)))
        }
        PersistedValidatorState::Drift(drift) => {
            Ok(Box::new(crate::DriftValidator::from_state(drift)?))
        }
        PersistedValidatorState::Ensemble(ensemble) => {
            let members = ensemble
                .members
                .into_iter()
                .map(rebuild_validator)
                .collect::<Result<Vec<_>>>()?;
            Ok(Box::new(crate::EnsembleValidator::new(
                members,
                ensemble.voting,
            )?))
        }
        PersistedValidatorState::Gated(gated) => {
            let cheap = rebuild_validator(*gated.cheap)?;
            let expensive = rebuild_validator(*gated.expensive)?;
            Ok(Box::new(crate::GatedValidator::new(
                cheap,
                expensive,
                gated.escalate_when,
            )?))
        }
    }
}

impl DriftColumnState {
    /// Enforce the exactly-one-profile invariant, naming the column.
    pub(crate) fn validated(&self) -> Result<()> {
        match (&self.numeric, &self.categorical) {
            (Some(_), None) | (None, Some(_)) => Ok(()),
            (Some(_), Some(_)) => Err(ValidateError::InvalidConfig(format!(
                "persisted drift profile for column `{}` is both numeric and categorical",
                self.column
            ))),
            (None, None) => Err(ValidateError::InvalidConfig(format!(
                "persisted drift profile for column `{}` carries no distribution",
                self.column
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DriftValidator, EnsembleValidator, GatedValidator};
    use dquag_core::spec::DriftSpec;
    use dquag_tabular::{DataFrame, Field, Schema, Value};
    use serde::Serialize;

    fn frames() -> (DataFrame, DataFrame) {
        let schema = Schema::new(vec![Field::numeric("amount", "")]);
        let mut clean = DataFrame::new(schema.clone());
        for i in 0..50 {
            clean.push_row(vec![Value::Number(i as f64 / 5.0)]).unwrap();
        }
        let mut drifted = DataFrame::new(schema);
        for i in 0..20 {
            drifted
                .push_row(vec![Value::Number(500.0 + i as f64)])
                .unwrap();
        }
        (clean, drifted)
    }

    fn fitted_drift(clean: &DataFrame) -> DriftValidator {
        let mut d = DriftValidator::new(DriftSpec::default());
        d.fit(clean).unwrap();
        d
    }

    #[test]
    fn composite_state_round_trips_to_identical_verdicts() {
        let (clean, drifted) = frames();

        let ensemble = EnsembleValidator::new(
            vec![
                Box::new(fitted_drift(&clean)) as Box<dyn Validator>,
                Box::new(fitted_drift(&clean)),
            ],
            Voting::Majority,
        )
        .unwrap();
        let gated = GatedValidator::new(
            Box::new(fitted_drift(&clean)),
            Box::new(ensemble),
            EscalateWhen::ScoreAtLeast(0.5),
        )
        .unwrap();

        let state = gated
            .persisted_state()
            .expect("all members are persistable");
        assert_eq!(state.kind(), "gated");

        // Full JSON round-trip of the recursive state tree.
        let json = serde_json::to_string(&state.to_value()).unwrap();
        let parsed: PersistedValidatorState = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, state);

        let rebuilt = rebuild_validator(parsed).unwrap();
        assert_eq!(rebuilt.name(), gated.name());
        for batch in [&clean, &drifted] {
            assert_eq!(
                rebuilt.validate(batch).unwrap(),
                gated.validate(batch).unwrap()
            );
        }
        assert!(rebuilt.validate(&drifted).unwrap().is_dirty);
        // The rebuilt composite is itself persistable again.
        assert!(rebuilt.persisted_state().is_some());
    }

    #[test]
    fn composites_with_a_non_persistable_member_export_nothing() {
        struct Opaque;
        impl Validator for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn capabilities(&self) -> crate::Capabilities {
                crate::Capabilities::dataset_level()
            }
            fn fit(&mut self, _: &DataFrame) -> Result<crate::FitReport> {
                unreachable!("not fitted in this test")
            }
            fn validate(&self, batch: &DataFrame) -> Result<crate::Verdict> {
                Ok(crate::Verdict::dataset_level(
                    "opaque".to_string(),
                    false,
                    0.0,
                    batch.n_rows(),
                    vec![],
                ))
            }
        }

        let (clean, _) = frames();
        let ensemble = EnsembleValidator::new(
            vec![
                Box::new(fitted_drift(&clean)) as Box<dyn Validator>,
                Box::new(Opaque),
            ],
            Voting::Majority,
        )
        .unwrap();
        assert!(ensemble.persisted_state().is_none());

        let gated = GatedValidator::new(
            Box::new(Opaque),
            Box::new(fitted_drift(&clean)),
            EscalateWhen::ScoreAtLeast(0.5),
        )
        .unwrap();
        assert!(gated.persisted_state().is_none());

        // An unfitted persistable backend also exports nothing yet.
        assert!(DriftValidator::new(DriftSpec::default())
            .persisted_state()
            .is_none());
    }

    #[test]
    fn rebuild_rejects_hollow_drift_profiles() {
        let state = PersistedValidatorState::Drift(DriftState {
            spec: DriftSpec::default(),
            profiles: vec![DriftColumnState {
                column: "amount".into(),
                numeric: None,
                categorical: None,
            }],
        });
        let err = match rebuild_validator(state) {
            Err(err) => err,
            Ok(_) => panic!("a profile with no distribution must not rebuild"),
        };
        assert!(err.to_string().contains("amount"), "got `{err}`");
    }
}
