//! The backend registry: [`ValidatorKind`] and the [`build_validator`]
//! factory.

use crate::backends::{BaselineBackend, DquagBackend};
use crate::Validator;
use dquag_baselines::BaselineKind;
use dquag_core::DquagConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Every validator configuration the paper evaluates, constructible through
/// [`build_validator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValidatorKind {
    /// Deequ with automatically suggested constraints.
    DeequAuto,
    /// Deequ with expert-tuned constraints.
    DeequExpert,
    /// TFDV with the inferred schema as-is.
    TfdvAuto,
    /// TFDV with an expert-tuned schema.
    TfdvExpert,
    /// ADQV's kNN-over-batch-statistics approach.
    Adqv,
    /// Gate's learned statistical tests.
    Gate,
    /// The paper's contribution: the DQuaG GNN pipeline.
    Dquag,
}

impl ValidatorKind {
    /// All kinds in the order the paper's tables list them: baselines first,
    /// DQuaG last.
    pub const ALL: [ValidatorKind; 7] = [
        ValidatorKind::DeequAuto,
        ValidatorKind::DeequExpert,
        ValidatorKind::TfdvAuto,
        ValidatorKind::TfdvExpert,
        ValidatorKind::Adqv,
        ValidatorKind::Gate,
        ValidatorKind::Dquag,
    ];

    /// The display label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ValidatorKind::Dquag => "DQuaG",
            ValidatorKind::DeequAuto => "Deequ auto",
            ValidatorKind::DeequExpert => "Deequ expert",
            ValidatorKind::TfdvAuto => "TFDV auto",
            ValidatorKind::TfdvExpert => "TFDV expert",
            ValidatorKind::Adqv => "ADQV",
            ValidatorKind::Gate => "Gate",
        }
    }

    /// The underlying baseline configuration, for every kind but DQuaG.
    pub fn baseline(&self) -> Option<BaselineKind> {
        match self {
            ValidatorKind::Dquag => None,
            ValidatorKind::DeequAuto => Some(BaselineKind::DeequAuto),
            ValidatorKind::DeequExpert => Some(BaselineKind::DeequExpert),
            ValidatorKind::TfdvAuto => Some(BaselineKind::TfdvAuto),
            ValidatorKind::TfdvExpert => Some(BaselineKind::TfdvExpert),
            ValidatorKind::Adqv => Some(BaselineKind::Adqv),
            ValidatorKind::Gate => Some(BaselineKind::Gate),
        }
    }
}

impl fmt::Display for ValidatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ValidatorKind {
    type Err = String;

    /// Parse a display label or a compact CLI spelling (`dquag`,
    /// `deequ-auto`, `tfdv_expert`, `gate`, …), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalised: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        ValidatorKind::ALL
            .into_iter()
            .find(|kind| {
                kind.label()
                    .chars()
                    .filter(|c| c.is_ascii_alphanumeric())
                    .collect::<String>()
                    .to_ascii_lowercase()
                    == normalised
            })
            .ok_or_else(|| format!("unknown validator kind `{s}`"))
    }
}

/// Construct an unfitted validator of the given kind.
///
/// `config` parameterises the DQuaG backend (epochs, architecture, threshold
/// percentile, …); the baselines are self-configuring and ignore it. Every
/// backend comes back behind the same `Box<dyn Validator>`, so callers fit
/// and validate uniformly:
///
/// ```no_run
/// # use dquag_validate::{build_validator, ValidatorKind};
/// # use dquag_core::DquagConfig;
/// # let clean = unimplemented!();
/// for kind in ValidatorKind::ALL {
///     let mut validator = build_validator(kind, &DquagConfig::default());
///     validator.fit(&clean).unwrap();
/// }
/// ```
pub fn build_validator(kind: ValidatorKind, config: &DquagConfig) -> Box<dyn Validator> {
    match kind.baseline() {
        Some(baseline) => Box::new(BaselineBackend::new(baseline)),
        None => Box::new(DquagBackend::new(config.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_order() {
        let labels: Vec<&str> = ValidatorKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Deequ auto",
                "Deequ expert",
                "TFDV auto",
                "TFDV expert",
                "ADQV",
                "Gate",
                "DQuaG"
            ]
        );
    }

    #[test]
    fn every_kind_builds_its_backend() {
        for kind in ValidatorKind::ALL {
            let validator = build_validator(kind, &dquag_core::DquagConfig::fast());
            assert_eq!(validator.name(), kind.label());
            let caps = validator.capabilities();
            assert_eq!(caps.cell_flags, kind == ValidatorKind::Dquag);
            assert_eq!(caps.repair, kind == ValidatorKind::Dquag);
        }
    }

    #[test]
    fn kind_parsing_accepts_labels_and_cli_spellings() {
        assert_eq!(
            "DQuaG".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::Dquag
        );
        assert_eq!(
            "dquag".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::Dquag
        );
        assert_eq!(
            "deequ-auto".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::DeequAuto
        );
        assert_eq!(
            "tfdv_expert".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::TfdvExpert
        );
        assert_eq!(
            "GATE".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::Gate
        );
        assert!("nope".parse::<ValidatorKind>().is_err());
    }

    #[test]
    fn kind_serde_round_trips() {
        for kind in ValidatorKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            let back: ValidatorKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(ValidatorKind::Adqv.to_string(), "ADQV");
    }
}
