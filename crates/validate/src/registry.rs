//! The open backend registry: named builders, spec-tree construction, and
//! the legacy [`ValidatorKind`] shim.
//!
//! A [`ValidatorRegistry`] maps backend names to builder closures and turns
//! declarative [`ValidatorSpec`] trees into boxed [`Validator`]s:
//! `Backend` leaves resolve through the name table, `Ensemble`/`Gated`
//! nodes become [`crate::EnsembleValidator`]/[`crate::GatedValidator`]
//! compositions, and `Drift` nodes become [`crate::DriftValidator`]s. The
//! seven paper backends plus `drift` come pre-registered
//! ([`ValidatorRegistry::with_defaults`]); downstream code adds its own
//! backends with [`ValidatorRegistry::register`] — no enum to extend, no
//! fork of this crate.
//!
//! ```no_run
//! use dquag_validate::ValidatorRegistry;
//! use dquag_core::DquagConfig;
//!
//! let spec: dquag_core::ValidatorSpec = serde_json::from_str(
//!     r#"{"Ensemble": {"members": [
//!         {"Backend": {"name": "dquag", "params": {}}},
//!         {"Drift": {"tests": ["Ks", "Psi"],
//!                    "ks_threshold": 0.15, "psi_threshold": 0.25, "bins": 10}}
//!     ], "voting": "Any"}}"#,
//! ).unwrap();
//! let validator = ValidatorRegistry::with_defaults()
//!     .build(&spec, &DquagConfig::default())
//!     .unwrap();
//! ```

use crate::backends::{BaselineBackend, DquagBackend};
use crate::combinators::{EnsembleValidator, GatedValidator};
use crate::drift::DriftValidator;
use crate::{Result, ValidateError, Validator};
use dquag_baselines::BaselineKind;
use dquag_core::spec::{normalize_backend_name, BackendSpec, DriftSpec, ValidatorSpec};
use dquag_core::DquagConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

/// A builder closure turning a backend leaf plus the deployment
/// configuration into an unfitted validator.
pub type BackendBuilder =
    dyn Fn(&BackendSpec, &DquagConfig) -> Result<Box<dyn Validator>> + Send + Sync;

/// One registered backend: the display name plus its builder.
struct Entry {
    /// Canonical display name, as [`ValidatorRegistry::names`] reports it.
    name: String,
    build: Arc<BackendBuilder>,
}

/// An open mapping from backend names to builder closures.
///
/// Lookup is case-insensitive and punctuation-blind
/// ([`dquag_core::spec::normalize_backend_name`]), so `"Deequ auto"`,
/// `"deequ-auto"` and `"DEEQU_AUTO"` all resolve the same entry.
/// Re-registering a name replaces its builder, which is how downstream code
/// overrides a built-in.
pub struct ValidatorRegistry {
    entries: BTreeMap<String, Entry>,
}

impl ValidatorRegistry {
    /// An empty registry (no backends; combinator and drift nodes still
    /// build).
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// A registry with the seven paper backends (`dquag`, `deequ-auto`,
    /// `deequ-expert`, `tfdv-auto`, `tfdv-expert`, `adqv`, `gate`) plus the
    /// `drift` detector pre-registered.
    pub fn with_defaults() -> Self {
        let mut registry = Self::new();
        registry.register("dquag", build_dquag);
        for kind in BaselineKind::ALL {
            registry.register(baseline_key(kind), move |spec, _config| {
                reject_params(spec)?;
                Ok(Box::new(BaselineBackend::new(kind)))
            });
        }
        registry.register("drift", build_drift_leaf);
        registry
    }

    /// Register (or replace) a backend under `name`.
    ///
    /// The builder receives the backend leaf — name plus numeric params —
    /// and the deployment [`DquagConfig`]; it returns an *unfitted*
    /// validator. Builders should reject unknown params instead of ignoring
    /// them.
    pub fn register<F>(&mut self, name: impl Into<String>, build: F) -> &mut Self
    where
        F: Fn(&BackendSpec, &DquagConfig) -> Result<Box<dyn Validator>> + Send + Sync + 'static,
    {
        let name = name.into();
        self.entries.insert(
            normalize_backend_name(&name),
            Entry {
                name,
                build: Arc::new(build),
            },
        );
        self
    }

    /// Canonical names of every registered backend, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.values().map(|e| e.name.as_str()).collect()
    }

    /// True when `name` resolves to a registered backend.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&normalize_backend_name(name))
    }

    /// Build an unfitted validator from a spec tree.
    ///
    /// The tree is structurally validated first, then built bottom-up:
    /// unknown backend names fail with a [`ValidateError::InvalidConfig`]
    /// listing every registered name.
    pub fn build(&self, spec: &ValidatorSpec, config: &DquagConfig) -> Result<Box<dyn Validator>> {
        spec.validated()
            .map_err(|e| ValidateError::InvalidConfig(e.to_string()))?;
        self.build_node(spec, config)
    }

    fn build_node(&self, spec: &ValidatorSpec, config: &DquagConfig) -> Result<Box<dyn Validator>> {
        match spec {
            ValidatorSpec::Backend(backend) => {
                let entry = self
                    .entries
                    .get(&normalize_backend_name(&backend.name))
                    .ok_or_else(|| self.unknown_backend(&backend.name))?;
                (entry.build)(backend, config)
            }
            ValidatorSpec::Ensemble(ensemble) => {
                let members: Vec<Box<dyn Validator>> = ensemble
                    .members
                    .iter()
                    .map(|member| self.build_node(member, config))
                    .collect::<Result<_>>()?;
                Ok(Box::new(EnsembleValidator::new(
                    members,
                    ensemble.voting.clone(),
                )?))
            }
            ValidatorSpec::Drift(drift) => Ok(Box::new(DriftValidator::new(drift.clone()))),
            ValidatorSpec::Gated(gated) => Ok(Box::new(GatedValidator::new(
                self.build_node(&gated.cheap, config)?,
                self.build_node(&gated.expensive, config)?,
                gated.escalate_when.clone(),
            )?)),
        }
    }

    /// Build the validator a configuration declares (`config.validator`).
    pub fn build_from_config(&self, config: &DquagConfig) -> Result<Box<dyn Validator>> {
        self.build(&config.validator, config)
    }

    fn unknown_backend(&self, name: &str) -> ValidateError {
        ValidateError::InvalidConfig(format!(
            "unknown validator backend `{name}`; registered backends: {}",
            self.names().join(", ")
        ))
    }
}

impl Default for ValidatorRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl fmt::Debug for ValidatorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValidatorRegistry")
            .field("backends", &self.names())
            .finish()
    }
}

/// The process-wide default registry (the paper backends plus `drift`),
/// used by [`build_spec`] and the [`ValidatorKind`] shim.
///
/// The default registry is immutable by design — process-global mutable
/// state would make two deployments in one process fight over names. Code
/// that registers custom backends owns a [`ValidatorRegistry`] value
/// instead.
pub fn default_registry() -> &'static ValidatorRegistry {
    static DEFAULT: OnceLock<ValidatorRegistry> = OnceLock::new();
    DEFAULT.get_or_init(ValidatorRegistry::with_defaults)
}

/// Build an unfitted validator from a spec tree using the default registry.
pub fn build_spec(spec: &ValidatorSpec, config: &DquagConfig) -> Result<Box<dyn Validator>> {
    default_registry().build(spec, config)
}

/// The `dquag` backend builder: numeric params override the corresponding
/// configuration fields, and the amended configuration is range-checked.
///
/// A leaf with *no* params adopts the caller's configuration as-is, without
/// re-validating it — hand-assembled configurations behaved that way under
/// the PR 1 factory (problems surface at `fit`, not at construction), and
/// the infallible [`build_validator`] shim relies on it.
fn build_dquag(spec: &BackendSpec, config: &DquagConfig) -> Result<Box<dyn Validator>> {
    if spec.params.is_empty() {
        return Ok(Box::new(DquagBackend::new(config.clone())));
    }
    let mut config = config.clone();
    for (key, &value) in &spec.params {
        match key.as_str() {
            "epochs" => config.epochs = param_usize(key, value)?,
            "batch_size" => config.batch_size = param_usize(key, value)?,
            "hidden_dim" => config.model.hidden_dim = param_usize(key, value)?,
            "n_layers" => config.model.n_layers = param_usize(key, value)?,
            "learning_rate" => config.learning_rate = value as f32,
            "threshold_percentile" => config.threshold_percentile = value,
            "dataset_flag_factor" => config.dataset_flag_factor = value,
            "feature_sigma" => config.feature_sigma = value as f32,
            "validation_threads" => config.validation_threads = param_usize(key, value)?,
            "inference_batch_size" => config.inference_batch_size = param_usize(key, value)?,
            "seed" => config.seed = param_usize(key, value)? as u64,
            other => {
                return Err(ValidateError::InvalidConfig(format!(
                    "backend `dquag` does not understand param `{other}` (supported: \
                     epochs, batch_size, hidden_dim, n_layers, learning_rate, \
                     threshold_percentile, dataset_flag_factor, feature_sigma, \
                     validation_threads, inference_batch_size, seed)"
                )))
            }
        }
    }
    let config = config
        .validated()
        .map_err(|e| ValidateError::InvalidConfig(e.to_string()))?;
    Ok(Box::new(DquagBackend::new(config)))
}

/// The `drift` backend leaf: thresholds and binning as numeric params, both
/// tests enabled (use a `Drift` spec node to pick a single test).
fn build_drift_leaf(spec: &BackendSpec, _config: &DquagConfig) -> Result<Box<dyn Validator>> {
    let mut drift = DriftSpec::default();
    for (key, &value) in &spec.params {
        match key.as_str() {
            "ks_threshold" => drift.ks_threshold = value,
            "psi_threshold" => drift.psi_threshold = value,
            "bins" => drift.bins = param_usize(key, value)?,
            other => {
                return Err(ValidateError::InvalidConfig(format!(
                    "backend `drift` does not understand param `{other}` (supported: \
                     ks_threshold, psi_threshold, bins)"
                )))
            }
        }
    }
    ValidatorSpec::Drift(drift.clone())
        .validated()
        .map_err(|e| ValidateError::InvalidConfig(e.to_string()))?;
    Ok(Box::new(DriftValidator::new(drift)))
}

/// Baselines are self-configuring; a param is a typo, not a knob.
fn reject_params(spec: &BackendSpec) -> Result<()> {
    if let Some(key) = spec.params.keys().next() {
        return Err(ValidateError::InvalidConfig(format!(
            "backend `{}` accepts no params, got `{key}`",
            spec.name
        )));
    }
    Ok(())
}

/// A non-negative integer-valued param, rejected otherwise.
fn param_usize(key: &str, value: f64) -> Result<usize> {
    if value.fract() != 0.0 || value < 0.0 || value > usize::MAX as f64 {
        return Err(ValidateError::InvalidConfig(format!(
            "param `{key}` must be a non-negative integer, got {value}"
        )));
    }
    Ok(value as usize)
}

/// Registry key for a baseline configuration.
fn baseline_key(kind: BaselineKind) -> &'static str {
    match kind {
        BaselineKind::DeequAuto => "deequ-auto",
        BaselineKind::DeequExpert => "deequ-expert",
        BaselineKind::TfdvAuto => "tfdv-auto",
        BaselineKind::TfdvExpert => "tfdv-expert",
        BaselineKind::Adqv => "adqv",
        BaselineKind::Gate => "gate",
    }
}

/// Every validator configuration the paper evaluates.
///
/// **Deprecated shim**: the closed enum predates the open
/// [`ValidatorRegistry`]; new code should build a [`ValidatorSpec`] instead
/// (every variant lowers to a `Backend` leaf via
/// `ValidatorSpec::from(kind)`). It stays for the paper-table call sites —
/// iterating [`ValidatorKind::ALL`] in a fixed order is genuinely handy for
/// experiments — and keeps PR 1–4 code compiling unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValidatorKind {
    /// Deequ with automatically suggested constraints.
    DeequAuto,
    /// Deequ with expert-tuned constraints.
    DeequExpert,
    /// TFDV with the inferred schema as-is.
    TfdvAuto,
    /// TFDV with an expert-tuned schema.
    TfdvExpert,
    /// ADQV's kNN-over-batch-statistics approach.
    Adqv,
    /// Gate's learned statistical tests.
    Gate,
    /// The paper's contribution: the DQuaG GNN pipeline.
    Dquag,
}

impl ValidatorKind {
    /// All kinds in the order the paper's tables list them: baselines first,
    /// DQuaG last.
    pub const ALL: [ValidatorKind; 7] = [
        ValidatorKind::DeequAuto,
        ValidatorKind::DeequExpert,
        ValidatorKind::TfdvAuto,
        ValidatorKind::TfdvExpert,
        ValidatorKind::Adqv,
        ValidatorKind::Gate,
        ValidatorKind::Dquag,
    ];

    /// The display label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            ValidatorKind::Dquag => "DQuaG",
            ValidatorKind::DeequAuto => "Deequ auto",
            ValidatorKind::DeequExpert => "Deequ expert",
            ValidatorKind::TfdvAuto => "TFDV auto",
            ValidatorKind::TfdvExpert => "TFDV expert",
            ValidatorKind::Adqv => "ADQV",
            ValidatorKind::Gate => "Gate",
        }
    }

    /// The canonical registry key this kind lowers to.
    pub fn key(&self) -> &'static str {
        match self {
            ValidatorKind::Dquag => "dquag",
            ValidatorKind::DeequAuto => "deequ-auto",
            ValidatorKind::DeequExpert => "deequ-expert",
            ValidatorKind::TfdvAuto => "tfdv-auto",
            ValidatorKind::TfdvExpert => "tfdv-expert",
            ValidatorKind::Adqv => "adqv",
            ValidatorKind::Gate => "gate",
        }
    }

    /// The underlying baseline configuration, for every kind but DQuaG.
    pub fn baseline(&self) -> Option<BaselineKind> {
        match self {
            ValidatorKind::Dquag => None,
            ValidatorKind::DeequAuto => Some(BaselineKind::DeequAuto),
            ValidatorKind::DeequExpert => Some(BaselineKind::DeequExpert),
            ValidatorKind::TfdvAuto => Some(BaselineKind::TfdvAuto),
            ValidatorKind::TfdvExpert => Some(BaselineKind::TfdvExpert),
            ValidatorKind::Adqv => Some(BaselineKind::Adqv),
            ValidatorKind::Gate => Some(BaselineKind::Gate),
        }
    }
}

impl fmt::Display for ValidatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ValidatorKind {
    type Err = ValidateError;

    /// Parse a display label or a compact CLI spelling (`dquag`,
    /// `deequ-auto`, `tfdv_expert`, `gate`, …), case-insensitively. A miss
    /// is a [`ValidateError::InvalidConfig`] listing the parseable kinds
    /// and the registered backend names.
    fn from_str(s: &str) -> Result<Self> {
        let normalised = normalize_backend_name(s);
        ValidatorKind::ALL
            .into_iter()
            .find(|kind| {
                normalize_backend_name(kind.label()) == normalised
                    || normalize_backend_name(kind.key()) == normalised
            })
            .ok_or_else(|| {
                // Registry-only backends (`drift`, custom registrations) are
                // deliberately listed apart: they are real names, but this
                // legacy parser cannot produce them — they need a
                // `ValidatorSpec`.
                let kinds: Vec<&str> = ValidatorKind::ALL.iter().map(|k| k.key()).collect();
                ValidateError::InvalidConfig(format!(
                    "unknown validator kind `{s}`; known kinds: {}. Other registered \
                     backends ({}) are reachable through a ValidatorSpec, not a kind",
                    kinds.join(", "),
                    default_registry().names().join(", ")
                ))
            })
    }
}

/// Construct an unfitted validator of the given kind.
///
/// **Deprecated shim** over the open registry: lowers `kind` to its
/// [`ValidatorSpec::Backend`] leaf and builds it through
/// [`default_registry`]. New code should carry a [`ValidatorSpec`] and call
/// [`build_spec`] (or own a [`ValidatorRegistry`]) instead.
///
/// `config` parameterises the DQuaG backend (epochs, architecture, threshold
/// percentile, …); the baselines are self-configuring and ignore it. Every
/// backend comes back behind the same `Box<dyn Validator>`, so callers fit
/// and validate uniformly:
///
/// ```no_run
/// # use dquag_validate::{build_validator, ValidatorKind};
/// # use dquag_core::DquagConfig;
/// # let clean = unimplemented!();
/// for kind in ValidatorKind::ALL {
///     let mut validator = build_validator(kind, &DquagConfig::default());
///     validator.fit(&clean).unwrap();
/// }
/// ```
pub fn build_validator(kind: ValidatorKind, config: &DquagConfig) -> Box<dyn Validator> {
    default_registry()
        .build(&ValidatorSpec::from(kind), config)
        .expect("built-in kinds always resolve and carry no params")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_order() {
        let labels: Vec<&str> = ValidatorKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Deequ auto",
                "Deequ expert",
                "TFDV auto",
                "TFDV expert",
                "ADQV",
                "Gate",
                "DQuaG"
            ]
        );
    }

    #[test]
    fn every_kind_builds_its_backend() {
        for kind in ValidatorKind::ALL {
            let validator = build_validator(kind, &dquag_core::DquagConfig::fast());
            assert_eq!(validator.name(), kind.label());
            let caps = validator.capabilities();
            assert_eq!(caps.cell_flags, kind == ValidatorKind::Dquag);
            assert_eq!(caps.repair, kind == ValidatorKind::Dquag);
        }
    }

    #[test]
    fn kind_parsing_accepts_labels_and_cli_spellings() {
        assert_eq!(
            "DQuaG".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::Dquag
        );
        assert_eq!(
            "dquag".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::Dquag
        );
        assert_eq!(
            "deequ-auto".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::DeequAuto
        );
        assert_eq!(
            "tfdv_expert".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::TfdvExpert
        );
        assert_eq!(
            "GATE".parse::<ValidatorKind>().unwrap(),
            ValidatorKind::Gate
        );
    }

    #[test]
    fn kind_parse_miss_lists_registered_backends() {
        match "nope".parse::<ValidatorKind>() {
            Err(ValidateError::InvalidConfig(msg)) => {
                assert!(msg.contains("`nope`"), "got `{msg}`");
                for name in ["dquag", "deequ-auto", "gate", "drift"] {
                    assert!(msg.contains(name), "missing `{name}` in `{msg}`");
                }
            }
            other => panic!("parse miss must be InvalidConfig, got {other:?}"),
        }

        // A registry-only backend name is a miss for the legacy parser, and
        // the message must not present it as a retry candidate.
        match "drift".parse::<ValidatorKind>() {
            Err(ValidateError::InvalidConfig(msg)) => {
                assert!(msg.contains("ValidatorSpec"), "got `{msg}`");
                let kinds = msg
                    .split("known kinds:")
                    .nth(1)
                    .and_then(|rest| rest.split('.').next())
                    .expect("message names the known kinds");
                assert!(!kinds.contains("drift"), "got `{msg}`");
            }
            other => panic!("`drift` is not a kind, got {other:?}"),
        }
    }

    #[test]
    fn kind_serde_round_trips() {
        for kind in ValidatorKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            let back: ValidatorKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(ValidatorKind::Adqv.to_string(), "ADQV");
    }

    #[test]
    fn default_registry_knows_the_paper_backends_plus_drift() {
        let registry = default_registry();
        assert_eq!(
            registry.names(),
            vec![
                "adqv",
                "deequ-auto",
                "deequ-expert",
                "dquag",
                "drift",
                "gate",
                "tfdv-auto",
                "tfdv-expert"
            ]
        );
        // Lookup is case- and punctuation-insensitive.
        assert!(registry.contains("Deequ auto"));
        assert!(registry.contains("DEEQU_AUTO"));
        assert!(!registry.contains("nope"));
    }

    #[test]
    fn unknown_backends_fail_with_the_name_list() {
        let config = DquagConfig::fast();
        match default_registry()
            .build(&ValidatorSpec::backend("nope"), &config)
            .map(|_| ())
        {
            Err(ValidateError::InvalidConfig(msg)) => {
                assert!(msg.contains("`nope`"), "got `{msg}`");
                assert!(msg.contains("dquag"), "got `{msg}`");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn custom_backends_register_and_build() {
        struct Custom;
        impl Validator for Custom {
            fn name(&self) -> &str {
                "Custom"
            }
            fn capabilities(&self) -> crate::Capabilities {
                crate::Capabilities::dataset_level()
            }
            fn fit(&mut self, _clean: &dquag_tabular::DataFrame) -> Result<crate::FitReport> {
                unimplemented!("registration test never fits")
            }
            fn validate(&self, _batch: &dquag_tabular::DataFrame) -> Result<crate::Verdict> {
                unimplemented!("registration test never validates")
            }
        }

        let mut registry = ValidatorRegistry::with_defaults();
        registry.register("custom", |_spec, _config| Ok(Box::new(Custom)));
        let config = DquagConfig::fast();
        let built = registry
            .build(&ValidatorSpec::backend("CUSTOM"), &config)
            .expect("custom backend resolves case-insensitively");
        assert_eq!(built.name(), "Custom");

        // Composition reaches custom backends too.
        let spec = ValidatorSpec::ensemble(
            vec![ValidatorSpec::backend("custom"), ValidatorSpec::drift()],
            dquag_core::spec::Voting::Any,
        );
        let ensemble = registry.build(&spec, &config).expect("ensemble builds");
        assert_eq!(ensemble.name(), "any(Custom, KS/PSI drift)");
    }

    #[test]
    fn dquag_params_override_the_config() {
        let config = DquagConfig::fast();
        let spec = ValidatorSpec::backend_with(
            "dquag",
            [("epochs".to_string(), 3.0), ("hidden_dim".to_string(), 8.0)],
        );
        // Builds fine; the override is visible through the backend's config.
        let built = default_registry().build(&spec, &config).unwrap();
        assert_eq!(built.name(), "DQuaG");

        // Out-of-range and unknown params are rejected, not ignored.
        let bad = ValidatorSpec::backend_with("dquag", [("epochs".to_string(), 0.0)]);
        assert!(default_registry().build(&bad, &config).is_err());
        let unknown = ValidatorSpec::backend_with("dquag", [("epoches".to_string(), 3.0)]);
        match default_registry().build(&unknown, &config).map(|_| ()) {
            Err(ValidateError::InvalidConfig(msg)) => {
                assert!(msg.contains("epoches"), "got `{msg}`")
            }
            other => panic!("unknown param must fail, got {other:?}"),
        }

        // Baselines accept no params at all.
        let baseline = ValidatorSpec::backend_with("gate", [("level".to_string(), 2.0)]);
        assert!(default_registry().build(&baseline, &config).is_err());
    }

    #[test]
    fn build_validator_stays_infallible_on_hand_assembled_configs() {
        // Regression: the PR 1 factory never failed at construction — bad
        // configurations surfaced at `fit`. A param-free `dquag` leaf must
        // keep that contract (the shim `expect`s on it), even when the
        // caller hand-assembled an out-of-range configuration.
        let mut config = DquagConfig::fast();
        config.epochs = 0;
        let validator = build_validator(ValidatorKind::Dquag, &config);
        assert_eq!(validator.name(), "DQuaG");
    }

    #[test]
    fn drift_leaf_params_configure_the_detector() {
        let config = DquagConfig::fast();
        let spec = ValidatorSpec::backend_with(
            "drift",
            [("ks_threshold".to_string(), 0.3), ("bins".to_string(), 6.0)],
        );
        let built = default_registry().build(&spec, &config).unwrap();
        assert_eq!(built.name(), "KS/PSI drift");

        let bad = ValidatorSpec::backend_with("drift", [("bins".to_string(), 1.0)]);
        assert!(default_registry().build(&bad, &config).is_err());
    }

    #[test]
    fn build_from_config_uses_the_declared_spec() {
        let config = DquagConfig::builder()
            .validator_spec(ValidatorSpec::drift())
            .build()
            .unwrap();
        let built = default_registry().build_from_config(&config).unwrap();
        assert_eq!(built.name(), "KS/PSI drift");
    }
}
